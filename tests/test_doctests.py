"""Run the docstring examples of the modules that carry them."""

import doctest

import pytest

import repro.core.synergy
import repro.util.bitfield

MODULES = [repro.util.bitfield, repro.core.synergy]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module)
    assert results.attempted > 0, "expected docstring examples"
    assert results.failed == 0
