"""Unit + property tests for the cache-tree (Section III-E)."""

from hypothesis import given, settings, strategies as st

from repro.core.cachetree import CacheTree

KEY = b"cache-tree-key"


def make_tree(num_sets: int = 16) -> CacheTree:
    return CacheTree(KEY, num_sets)


class TestSetMac:
    def test_empty_set_is_zero(self):
        assert make_tree().set_mac(0, []) == 0

    def test_entries_sorted_internally(self):
        tree = make_tree()
        forward = tree.set_mac(0, [(16, 1), (32, 2)])
        backward = tree.set_mac(0, [(32, 2), (16, 1)])
        assert forward == backward

    def test_set_index_is_part_of_mac(self):
        tree = make_tree()
        assert tree.set_mac(0, [(16, 1)]) != tree.set_mac(1, [(16, 1)])

    def test_mac_value_matters(self):
        tree = make_tree()
        assert tree.set_mac(0, [(16, 1)]) != tree.set_mac(0, [(16, 2)])

    def test_address_matters(self):
        tree = make_tree()
        assert tree.set_mac(0, [(16, 1)]) != tree.set_mac(0, [(32, 1)])


class TestRoot:
    def test_empty_cache_root_is_stable(self):
        tree = make_tree()
        assert tree.root({}) == tree.root({})

    def test_root_differs_with_any_set(self):
        tree = make_tree()
        assert tree.root({}) != tree.root({3: 12345})

    def test_root_from_entries_groups_by_set(self):
        tree = make_tree(num_sets=4)
        entries = [(0, 10), (4, 11), (1, 12)]  # sets 0, 0, 1
        by_hand = tree.root({
            0: tree.set_mac(0, [(0, 10), (4, 11)]),
            1: tree.set_mac(1, [(1, 12)]),
        })
        assert tree.root_from_entries(entries) == by_hand

    def test_eviction_order_independence(self):
        """The same dirty population gives the same root regardless of
        the order in which lines became dirty — challenge (1) of
        Section III-E."""
        tree = make_tree(num_sets=4)
        entries = [(0, 10), (4, 11), (9, 12), (2, 13)]
        import itertools
        roots = {
            tree.root_from_entries(list(perm))
            for perm in itertools.permutations(entries)
        }
        assert len(roots) == 1


@given(st.dictionaries(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=2 ** 54 - 1),
    min_size=1, max_size=30,
), st.data())
@settings(max_examples=60, deadline=None)
def test_any_difference_changes_root(entries, data):
    """Adding, dropping or altering any dirty line changes the root."""
    tree = make_tree(num_sets=16)
    base = sorted(entries.items())
    root = tree.root_from_entries(base)

    # alter one MAC
    addr = data.draw(st.sampled_from(sorted(entries)))
    altered = dict(entries)
    altered[addr] ^= 1
    assert tree.root_from_entries(sorted(altered.items())) != root

    # drop one line
    dropped = dict(entries)
    del dropped[addr]
    assert tree.root_from_entries(sorted(dropped.items())) != root

    # add one line
    extra_addr = data.draw(st.integers(min_value=256, max_value=512))
    added = dict(entries)
    added[extra_addr] = 7
    assert tree.root_from_entries(sorted(added.items())) != root
