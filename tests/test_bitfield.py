"""Unit + property tests for repro.util.bitfield."""

import pytest
from hypothesis import given, strategies as st

from repro.util import bitfield


class TestMask:
    def test_zero_width(self):
        assert bitfield.mask(0) == 0

    def test_small_widths(self):
        assert bitfield.mask(1) == 1
        assert bitfield.mask(8) == 0xFF
        assert bitfield.mask(10) == 0x3FF
        assert bitfield.mask(54) == (1 << 54) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bitfield.mask(-1)


class TestTruncateAndCheck:
    def test_truncate_keeps_low_bits(self):
        assert bitfield.truncate(0x1234, 8) == 0x34

    def test_check_width_accepts_fit(self):
        assert bitfield.check_width(255, 8) == 255

    def test_check_width_rejects_overflow(self):
        with pytest.raises(ValueError):
            bitfield.check_width(256, 8)

    def test_check_width_rejects_negative(self):
        with pytest.raises(ValueError):
            bitfield.check_width(-1, 8)

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1),
           st.integers(min_value=0, max_value=64))
    def test_truncate_idempotent(self, value, width):
        once = bitfield.truncate(value, width)
        assert bitfield.truncate(once, width) == once


class TestPackUnpack:
    def test_known_packing(self):
        assert bitfield.pack_fields([(0xA, 4), (0xB, 4)]) == 0xAB

    def test_unpack_inverse(self):
        packed = bitfield.pack_fields([(3, 2), (0x1F, 5), (0, 1)])
        assert bitfield.unpack_fields(packed, [2, 5, 1]) == [3, 0x1F, 0]

    def test_pack_rejects_overflow(self):
        with pytest.raises(ValueError):
            bitfield.pack_fields([(4, 2)])

    def test_unpack_rejects_excess(self):
        with pytest.raises(ValueError):
            bitfield.unpack_fields(1 << 10, [4, 4])

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=16)),
                    min_size=1, max_size=6).flatmap(
        lambda widths: st.tuples(
            st.just([w[0] for w in widths]),
            st.tuples(*[
                st.integers(min_value=0, max_value=(1 << w[0]) - 1)
                for w in widths
            ]),
        )
    ))
    def test_roundtrip_property(self, widths_values):
        widths, values = widths_values
        packed = bitfield.pack_fields(list(zip(values, widths)))
        assert bitfield.unpack_fields(packed, widths) == list(values)


class TestBitOps:
    def test_set_clear_test(self):
        word = 0
        word = bitfield.set_bit(word, 5)
        assert bitfield.test_bit(word, 5)
        assert not bitfield.test_bit(word, 4)
        word = bitfield.clear_bit(word, 5)
        assert word == 0

    def test_clear_unset_bit_is_noop(self):
        assert bitfield.clear_bit(0b101, 1) == 0b101

    def test_iter_set_bits_ascending(self):
        assert list(bitfield.iter_set_bits(0b101001)) == [0, 3, 5]

    def test_iter_set_bits_empty(self):
        assert list(bitfield.iter_set_bits(0)) == []

    def test_popcount(self):
        assert bitfield.popcount(0) == 0
        assert bitfield.popcount(0b1011) == 3

    def test_popcount_rejects_negative(self):
        """bin(-5).count("1") == 2 was silently wrong; now it raises."""
        with pytest.raises(ValueError):
            bitfield.popcount(-5)

    def test_iter_set_bits_rejects_negative(self):
        """-1 >> 1 == -1: the unguarded loop never terminated."""
        with pytest.raises(ValueError):
            list(bitfield.iter_set_bits(-1))

    @given(st.integers(min_value=0, max_value=2 ** 128 - 1))
    def test_popcount_matches_iter(self, word):
        assert bitfield.popcount(word) == len(
            list(bitfield.iter_set_bits(word))
        )

    @given(st.integers(min_value=0, max_value=2 ** 600 - 1))
    def test_popcount_matches_naive_reference(self, word):
        """The naive per-bit count is the semantic spec for popcount."""
        naive = sum(1 for bit in range(word.bit_length())
                    if (word >> bit) & 1)
        assert bitfield.popcount(word) == naive

    @given(st.integers(min_value=0, max_value=2 ** 600 - 1))
    def test_iter_set_bits_matches_naive_reference(self, word):
        naive = [bit for bit in range(word.bit_length())
                 if (word >> bit) & 1]
        assert list(bitfield.iter_set_bits(word)) == naive

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1),
           st.integers(min_value=0, max_value=63))
    def test_set_then_test(self, word, bit):
        assert bitfield.test_bit(bitfield.set_bit(word, bit), bit)

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1),
           st.integers(min_value=0, max_value=63))
    def test_clear_then_test(self, word, bit):
        assert not bitfield.test_bit(bitfield.clear_bit(word, bit), bit)


class TestByteConversions:
    def test_roundtrip(self):
        assert bitfield.bytes_to_int(
            bitfield.int_to_bytes(0xDEADBEEF, 8)
        ) == 0xDEADBEEF

    def test_big_endian(self):
        assert bitfield.int_to_bytes(1, 2) == b"\x00\x01"
