"""Unit + property tests for repro.util.lru."""

from collections import OrderedDict

import pytest
from hypothesis import given, strategies as st

from repro.util.lru import LRUCache


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_len_and_contains(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        assert len(cache) == 1
        assert "a" in cache
        assert "b" not in cache

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            LRUCache(2).get("missing")


class TestEviction:
    def test_lru_entry_evicted(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)
        assert cache.get("a") == 10

    def test_update_never_evicts(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        assert cache.put("a", 2) is None

    def test_peek_does_not_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        assert cache.put("c", 3) == ("a", 1)

    def test_pop_lru(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.pop_lru() == ("a", 1)

    def test_items_lru_first(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert list(cache.items()) == [("b", 2), ("a", 1)]

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


@given(st.lists(
    st.tuples(st.sampled_from("abcdefgh"), st.integers()),
    max_size=200,
))
def test_matches_reference_model(operations):
    """The cache behaves exactly like an OrderedDict-based reference."""
    capacity = 3
    cache = LRUCache(capacity)
    model: "OrderedDict[str, int]" = OrderedDict()
    for key, value in operations:
        cache.put(key, value)
        if key in model:
            model.move_to_end(key)
        model[key] = value
        if len(model) > capacity:
            model.popitem(last=False)
        assert len(cache) == len(model)
        assert set(cache) == set(model)
        assert list(cache.items()) == list(model.items())
