"""Tests for the runtime write sanitizers (repro.sim.sanitize).

Covers the off-by-default contract (no wrapping, no overhead), clean
runs under every scheme with sanitizers on, and one injected violation
per check class: non-atomic data payloads, counter regression, bitmap
words past the fanout, out-of-range bitmap stores and a broken
counter-MAC synergization minting — each must raise SanitizeError.
"""

import pytest

from repro.config import small_config
from repro.fuzz.executor import run_case
from repro.fuzz.sampling import FuzzCase
from repro.sim.machine import Machine
from repro.sim.sanitize import SanitizeError
from repro.tree.node import DataLineImage, NodeImage
from repro.tree.sit import SITAuthenticator
from repro.workloads.registry import make_workload


def sanitized_machine(scheme="star"):
    return Machine(small_config(), scheme=scheme, telemetry=False,
                   sanitize=True)


def run_some_ops(machine, operations=200, seed=9):
    workload = make_workload(
        "hash", machine.controller.layout.num_data_lines,
        operations=operations, seed=seed,
    )
    machine.run(list(workload.ops()))


class TestOffByDefault:
    def test_no_wrapping_without_flag(self):
        machine = Machine(small_config(), telemetry=False)
        assert machine.sanitizer is None
        # instance dict stays empty: write paths are the class methods
        assert "write_meta" not in machine.nvm.__dict__
        assert "write_data" not in machine.nvm.__dict__

    def test_sanitized_machine_is_wrapped_and_counts(self):
        machine = sanitized_machine()
        assert machine.sanitizer is not None
        run_some_ops(machine)
        assert machine.stats.get("sanitize.checks") > 0


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", ["star", "anubis", "phoenix",
                                        "strict"])
    def test_run_crash_recover_clean(self, scheme):
        machine = sanitized_machine(scheme)
        run_some_ops(machine)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)
        # sanitizers stay wired after the post-recovery re-attach
        run_some_ops(machine, operations=80, seed=11)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)


class TestInjectedViolations:
    def test_non_atomic_data_write(self):
        machine = sanitized_machine()
        short = DataLineImage(ciphertext=b"\x00" * 32, mac=1, lsbs=0)
        with pytest.raises(SanitizeError, match="64B-atomic"):
            machine.nvm.write_data(0, short)

    def test_wrong_payload_type(self):
        machine = sanitized_machine()
        with pytest.raises(SanitizeError, match="not a NodeImage"):
            machine.nvm.write_meta(0, object())

    def test_counter_regression(self):
        machine = sanitized_machine()
        high = NodeImage(counters=(5,) + (0,) * 7, mac=0, lsbs=0)
        low = NodeImage(counters=(4,) + (0,) * 7, mac=0, lsbs=0)
        machine.nvm.write_meta(3, high)
        with pytest.raises(SanitizeError, match="monotonic"):
            machine.nvm.write_meta(3, low)

    def test_battery_flush_is_checked_too(self):
        machine = sanitized_machine()
        high = NodeImage(counters=(5,) + (0,) * 7, mac=0, lsbs=0)
        low = NodeImage(counters=(4,) + (0,) * 7, mac=0, lsbs=0)
        machine.nvm.write_meta(3, high)
        with pytest.raises(SanitizeError, match="monotonic"):
            machine.nvm.flush_meta(3, low)

    def test_recovery_area_word_past_fanout(self):
        machine = sanitized_machine()
        fanout = machine.scheme.bitmap.index.fanout
        with pytest.raises(SanitizeError, match="fanout"):
            machine.nvm.write_ra((1, 0), 1 << fanout)

    def test_bitmap_store_out_of_range(self):
        machine = sanitized_machine()
        bitmap = machine.scheme.bitmap
        with pytest.raises(SanitizeError, match="nonexistent layer"):
            bitmap._store(0, 0, 1)
        with pytest.raises(SanitizeError, match="outside layer"):
            bitmap._store(1, 10 ** 9, 1)

    def test_broken_synergization_minting(self, monkeypatch):
        machine = sanitized_machine()
        real = SITAuthenticator.make_node_image

        def corrupted(self, node_id, counters, parent_counter):
            image = real(self, node_id, counters, parent_counter)
            return image.with_lsbs(image.lsbs ^ 1)

        monkeypatch.setattr(
            SITAuthenticator, "make_node_image", corrupted
        )
        with pytest.raises(SanitizeError, match="synergization"):
            run_some_ops(machine)


class TestFuzzIntegration:
    def case(self):
        return FuzzCase(
            index=0, scheme="star", workload="hash", seed=21,
            operations=60, crash_frac=0.8, prepare_frac=0.4,
            attack=None, attack_seed=0,
        )

    def test_clean_case_passes_sanitized(self):
        result = run_case(self.case(), sanitize=True)
        assert not result.failed, result.violations

    def test_sanitizer_trip_surfaces_as_violation(self, monkeypatch):
        real = SITAuthenticator.make_node_image

        def corrupted(self, node_id, counters, parent_counter):
            image = real(self, node_id, counters, parent_counter)
            return image.with_lsbs(image.lsbs ^ 1)

        monkeypatch.setattr(
            SITAuthenticator, "make_node_image", corrupted
        )
        result = run_case(self.case(), sanitize=True)
        assert result.failed
        assert any("SanitizeError" in v["detail"]
                   for v in result.violations)
