"""Tests for the phase profiler and the failure flight recorder.

The profiler's acceptance bar is determinism: its primary clock is the
NVM op counter, so two same-seed runs must export bit-identical Chrome
traces, recovery's registry swap must not freeze or rewind the clock,
and wall-clock readings (opt-in, via the Clock seam) may only ever ride
in ``args``. The flight recorder's bar is that failing fuzz cases ship
a deterministic event tail end-to-end: case result -> corpus record ->
minimized artifact.
"""

import json

from repro.config import small_config
from repro.fuzz.executor import run_case
from repro.fuzz.minimize import minimize_failure, write_artifacts
from repro.fuzz.sampling import CampaignSpec, sample_cases
from repro.lab.clock import FakeClock
from repro.obs.flight import (
    arm_flight_recorder,
    flight_tail,
    strip_wall_clock,
)
from repro.obs.profile import install_profiler, render_phase_table
from repro.sim.machine import Machine
from repro.util.stats import Stats
from repro.workloads.registry import make_workload

EXPECTED_PHASES = {"ctrl.write_data", "tree.verify", "tree.update",
                   "wpq.drain", "recovery"}


def profiled_run(operations=60, seed=5, clock=None, crash=True):
    config = small_config()
    machine = Machine(config, scheme="star", profile=clock is None)
    if clock is not None:
        machine.profiler = install_profiler(machine, clock=clock)
    workload = make_workload("hash", config.num_data_lines,
                             operations=operations, seed=seed)
    machine.run(workload.ops())
    if crash:
        machine.crash()
        machine.recover()
    return machine


# ----------------------------------------------------------------------
# phase profiler
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_records_the_instrumented_phases(self):
        machine = profiled_run()
        names = {span["name"] for span in machine.profiler.spans}
        assert EXPECTED_PHASES <= names

    def test_trace_is_bit_identical_across_same_seed_runs(self):
        first = profiled_run().profiler.to_chrome_trace()
        second = profiled_run().profiler.to_chrome_trace()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_chrome_trace_schema(self):
        trace = profiled_run().profiler.to_chrome_trace()
        assert trace["otherData"]["clock"] == "nvm-op-counter"
        assert trace["otherData"]["dropped"] == 0
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert event["cat"] == "sim"
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
            assert event["args"]["ops"] == event["dur"]
            assert "wall_ms" not in event["args"]

    def test_trace_events_sorted_by_start(self):
        trace = profiled_run().profiler.to_chrome_trace()
        starts = [event["ts"] for event in trace["traceEvents"]]
        assert starts == sorted(starts)

    def test_op_clock_survives_recovery_registry_swap(self):
        machine = profiled_run()
        recovery = [span for span in machine.profiler.spans
                    if span["name"] == "recovery"]
        assert len(recovery) == 1
        assert recovery[0]["dur"] > 0
        # the machine keeps running after recovery: the clock must not
        # rewind below the recovery span's end
        end = recovery[0]["ts"] + recovery[0]["dur"]
        config = machine.config
        machine.run(make_workload("hash", config.num_data_lines,
                                  operations=10, seed=1).ops())
        later = [span for span in machine.profiler.spans
                 if span["ts"] >= end and span["name"] != "recovery"]
        assert later, "no spans recorded after recovery"
        assert all(span["ts"] >= end for span in
                   machine.profiler.spans[-len(later):])

    def test_wall_clock_rides_in_args_only(self):
        clock = FakeClock()
        deterministic = profiled_run().profiler.to_chrome_trace()
        clocked = profiled_run(clock=clock).profiler.to_chrome_trace()
        skeleton = [
            {key: event[key] for key in ("name", "ts", "dur")}
            for event in clocked["traceEvents"]
        ]
        reference = [
            {key: event[key] for key in ("name", "ts", "dur")}
            for event in deterministic["traceEvents"]
        ]
        assert skeleton == reference
        assert all("wall_ms" in event["args"]
                   for event in clocked["traceEvents"])

    def test_capacity_drops_are_counted(self):
        config = small_config()
        machine = Machine(config, scheme="star")
        machine.profiler = install_profiler(machine, capacity=10)
        machine.run(make_workload("hash", config.num_data_lines,
                                  operations=40, seed=2).ops())
        profiler = machine.profiler
        assert len(profiler.spans) == 10
        assert profiler.dropped > 0
        assert profiler.to_chrome_trace()["otherData"]["dropped"] > 0
        assert (machine.stats.get("profile.spans")
                == len(profiler.spans) + profiler.dropped)

    def test_write_chrome_trace_is_loadable(self, tmp_path):
        machine = profiled_run()
        path = tmp_path / "trace.json"
        machine.profiler.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(
            json.dumps(machine.profiler.to_chrome_trace())
        )

    def test_write_chrome_trace_publishes_atomically(self, tmp_path):
        """The trace lands via tmp-write + os.replace: no .tmp file
        survives, and an existing trace is replaced wholesale (a
        concurrent reader sees the old file or the new one, never a
        torn prefix — the PR 7 heartbeat-salvage bug class)."""
        machine = profiled_run()
        path = tmp_path / "trace.json"
        path.write_text("stale")
        machine.profiler.write_chrome_trace(path)
        assert not (tmp_path / "trace.json.tmp").exists()
        assert json.loads(path.read_text())["traceEvents"]
        assert list(tmp_path.iterdir()) == [path]

    def test_aggregate_and_table(self):
        machine = profiled_run()
        aggregate = machine.profiler.aggregate()
        assert EXPECTED_PHASES <= set(aggregate)
        for row in aggregate.values():
            assert row["count"] > 0 and row["ops"] >= 0
        table = render_phase_table(aggregate)
        for name in EXPECTED_PHASES:
            assert name in table
        assert render_phase_table({}) == "(no phases recorded)"

    def test_default_machine_has_no_profiler(self):
        machine = Machine(small_config(), scheme="star")
        assert machine.profiler is None


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_arming_enables_only_the_event_log(self):
        stats = Stats(enabled=False)
        arm_flight_recorder(stats)
        stats.event("force_flush", line=3)
        stats.observe("wpq.occupancy", 5)
        events = stats.registry.events.events()
        assert [event["kind"] for event in events] == ["force_flush"]
        assert dict(stats.registry.histograms()) == {}

    def test_strip_wall_clock_drops_t(self):
        events = [{"seq": 0, "kind": "crash", "t": 1.25}]
        assert strip_wall_clock(events) == [{"seq": 0, "kind": "crash"}]

    def test_flight_tail_tags_and_limits(self):
        config = small_config()
        machine = Machine(config, scheme="star", telemetry=False)
        arm_flight_recorder(machine.stats)
        machine.run(make_workload("hash", config.num_data_lines,
                                  operations=40, seed=4).ops())
        machine.crash()
        machine.recover()
        tail = flight_tail(machine)
        assert tail
        assert all("t" not in event for event in tail)
        phases = {event["phase"] for event in tail}
        assert "recovery" in phases
        assert len(flight_tail(machine, limit=2)) == 2

    def test_failing_case_ships_events_tail_end_to_end(self, tmp_path):
        spec = CampaignSpec(cases=8, seed=1, schemes=["star"],
                            workloads=["hash"], min_operations=20,
                            max_operations=40, attack_rate=1.0,
                            defect="skip-root-verify")
        spec.validate()
        failing = next(
            result
            for result in (run_case(case, defect=spec.defect)
                           for case in sample_cases(spec))
            if result.failed
        )
        assert failing.events_tail
        assert all("t" not in event for event in failing.events_tail)
        # survives the corpus dict round-trip
        clone = type(failing).from_dict(failing.to_dict())
        assert clone.events_tail == failing.events_tail
        # and lands in the minimized artifact metadata
        minimized = minimize_failure(failing.case, defect=spec.defect,
                                     max_runs=30)
        assert minimized is not None and minimized.events_tail
        _trace, meta_path = write_artifacts(minimized, tmp_path)
        meta = json.loads(meta_path.read_text())
        assert meta["events_tail"] == minimized.events_tail

    def test_passing_case_has_empty_tail(self):
        spec = CampaignSpec(cases=4, seed=2, schemes=["star"],
                            workloads=["hash"], min_operations=10,
                            max_operations=20, attack_rate=0.0)
        spec.validate()
        for case in sample_cases(spec):
            result = run_case(case)
            assert not result.failed
            assert result.events_tail == []

    def test_sanitizer_trip_is_the_last_event(self):
        import pytest

        from repro.sim.sanitize import SanitizeError

        config = small_config()
        machine = Machine(config, scheme="star", telemetry=False,
                          sanitize=True)
        arm_flight_recorder(machine.stats)
        with pytest.raises(SanitizeError):
            machine.nvm.write_data(0, object())
        tail = flight_tail(machine)
        assert tail[-1]["kind"] == "sanitize_trip"
        assert "DataLineImage" in tail[-1]["detail"]
