"""Unit tests for repro.config."""

import pytest

from repro.config import (
    BITMAP_FANOUT,
    CacheConfig,
    LINE_SIZE,
    LSB_BITS,
    MAC_BITS,
    NVMTimings,
    StarConfig,
    SystemConfig,
    paper_config,
    sim_config,
    small_config,
)
from repro.errors import ConfigError


class TestConstants:
    def test_mac_split_covers_field(self):
        assert MAC_BITS + LSB_BITS == 64

    def test_bitmap_fanout_is_bits_per_line(self):
        assert BITMAP_FANOUT == LINE_SIZE * 8


class TestCacheConfig:
    def test_derived_geometry(self):
        cache = CacheConfig(size_bytes=512 * 1024, ways=8)
        assert cache.num_lines == 8192
        assert cache.num_sets == 1024

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=8)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, ways=0)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=3 * 64 * 4, ways=4)


class TestNVMTimings:
    def test_paper_latencies(self):
        timings = NVMTimings()
        assert timings.read_latency_ns == 48.0 + 15.0
        assert timings.write_latency_ns == 300.0

    def test_energy_is_write_asymmetric(self):
        timings = NVMTimings()
        assert timings.write_energy_nj > timings.read_energy_nj


class TestStarConfig:
    def test_defaults(self):
        star = StarConfig()
        assert star.adr_bitmap_lines == 16
        assert star.counter_flush_threshold == 1023

    def test_rejects_zero_adr_lines(self):
        with pytest.raises(ConfigError):
            StarConfig(adr_bitmap_lines=0)

    def test_rejects_threshold_at_wraparound(self):
        with pytest.raises(ConfigError):
            StarConfig(counter_flush_threshold=1 << LSB_BITS)


class TestSystemConfig:
    def test_paper_config_matches_table1(self):
        config = paper_config()
        assert config.memory_bytes == 16 * 1024 ** 3
        assert config.metadata_cache.size_bytes == 512 * 1024
        assert config.metadata_cache.ways == 8
        assert config.llc.size_bytes == 4 * 1024 ** 2
        assert config.l2.size_bytes == 512 * 1024
        assert config.l1.size_bytes == 64 * 1024
        assert config.star.adr_bitmap_lines == 16

    def test_num_data_lines(self):
        assert small_config(memory_bytes=1024 * 1024).num_data_lines == \
            16384

    def test_rejects_tiny_memory(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                memory_bytes=64,
                metadata_cache=CacheConfig(size_bytes=1024, ways=4),
                llc=CacheConfig(size_bytes=1024, ways=4),
            )

    def test_rejects_unaligned_memory(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                memory_bytes=1024 * 1024 + 1,
                metadata_cache=CacheConfig(size_bytes=1024, ways=4),
                llc=CacheConfig(size_bytes=1024, ways=4),
            )

    def test_with_metadata_cache_bytes(self):
        config = small_config().with_metadata_cache_bytes(8 * 1024)
        assert config.metadata_cache.size_bytes == 8 * 1024
        assert config.metadata_cache.ways == \
            small_config().metadata_cache.ways

    def test_with_adr_lines(self):
        assert small_config().with_adr_lines(7).star.adr_bitmap_lines == 7

    def test_sim_config_scaled_fanout(self):
        assert sim_config(bitmap_fanout=64).star.bitmap_fanout == 64
