"""Unit + property tests for the SIT geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.tree.geometry import TreeGeometry


class TestShape:
    def test_paper_scale_has_nine_levels(self):
        """16 GB = 2^28 data lines -> 9 in-NVM levels (Table I)."""
        geometry = TreeGeometry(2 ** 28)
        assert geometry.num_levels == 9
        assert geometry.level_counts[0] == 2 ** 25
        assert geometry.level_counts[-1] <= 8

    def test_minimal_memory(self):
        geometry = TreeGeometry(8)
        assert geometry.num_levels == 1
        assert geometry.level_counts == (1,)

    def test_non_multiple_data_lines(self):
        geometry = TreeGeometry(9)
        assert geometry.level_counts[0] == 2

    def test_top_level_at_most_arity_nodes(self):
        for lines in (8, 64, 100, 4096, 10 ** 6):
            geometry = TreeGeometry(lines)
            assert geometry.level_counts[-1] <= geometry.arity

    def test_rejects_empty_memory(self):
        with pytest.raises(ConfigError):
            TreeGeometry(0)

    def test_rejects_tiny_arity(self):
        with pytest.raises(ConfigError):
            TreeGeometry(64, arity=1)

    def test_total_nodes(self):
        geometry = TreeGeometry(64)
        assert geometry.total_nodes == sum(geometry.level_counts)


class TestRelations:
    def setup_method(self):
        self.geometry = TreeGeometry(4096)

    def test_counter_block_for(self):
        assert self.geometry.counter_block_for(0) == (0, 0)
        assert self.geometry.counter_block_for(17) == (0, 2)

    def test_data_slot(self):
        assert self.geometry.data_slot(17) == 1

    def test_parent_of(self):
        assert self.geometry.parent_of((0, 9)) == (1, 1)

    def test_parent_of_top_level_raises(self):
        top = (self.geometry.top_level, 0)
        with pytest.raises(ValueError):
            self.geometry.parent_of(top)

    def test_slot_in_parent(self):
        assert self.geometry.slot_in_parent((0, 9)) == 1

    def test_children_of_level0_are_data_lines(self):
        assert self.geometry.children_of((0, 2)) == list(range(16, 24))

    def test_children_of_upper_levels_are_node_indices(self):
        assert self.geometry.children_of((1, 1)) == list(range(8, 16))

    def test_edge_node_has_fewer_children(self):
        geometry = TreeGeometry(12)  # 2 counter blocks, second covers 4
        assert geometry.children_of((0, 1)) == [8, 9, 10, 11]

    def test_ancestors_bottom_up(self):
        ancestors = list(self.geometry.ancestors_of((0, 9)))
        assert ancestors[0] == (1, 1)
        assert ancestors[-1][0] == self.geometry.top_level

    def test_out_of_range_checks(self):
        with pytest.raises(ValueError):
            self.geometry.counter_block_for(4096)
        with pytest.raises(ValueError):
            self.geometry.check_node((0, 10 ** 9))
        with pytest.raises(ValueError):
            self.geometry.check_node((99, 0))


class TestMetaIndex:
    def test_level_major_order(self):
        geometry = TreeGeometry(4096)
        assert geometry.meta_index((0, 0)) == 0
        assert geometry.meta_index((1, 0)) == geometry.level_counts[0]

    @given(st.integers(min_value=8, max_value=100000), st.data())
    @settings(max_examples=60, deadline=None)
    def test_meta_index_bijective(self, lines, data):
        geometry = TreeGeometry(lines)
        index = data.draw(st.integers(
            min_value=0, max_value=geometry.total_nodes - 1))
        node = geometry.node_at(index)
        assert geometry.meta_index(node) == index

    @given(st.integers(min_value=8, max_value=100000), st.data())
    @settings(max_examples=60, deadline=None)
    def test_parent_child_inverse(self, lines, data):
        geometry = TreeGeometry(lines)
        level = data.draw(st.integers(
            min_value=0, max_value=geometry.top_level - 1))\
            if geometry.num_levels > 1 else 0
        if geometry.num_levels == 1:
            return
        index = data.draw(st.integers(
            min_value=0, max_value=geometry.level_counts[level] - 1))
        parent = geometry.parent_of((level, index))
        children = geometry.children_of(parent)
        assert index in children
        slot = geometry.slot_in_parent((level, index))
        assert children[slot] == index

    @given(st.integers(min_value=8, max_value=100000), st.data())
    @settings(max_examples=60, deadline=None)
    def test_data_line_covered_by_its_counter_block(self, lines, data):
        geometry = TreeGeometry(lines)
        line = data.draw(st.integers(min_value=0, max_value=lines - 1))
        block = geometry.counter_block_for(line)
        children = geometry.children_of(block)
        assert line in children
        assert children[geometry.data_slot(line)] == line
