"""Unit + property tests for the crypto substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LINE_SIZE, MAC_BITS
from repro.crypto.hashing import (
    KeyedBlake2b,
    _serialize,
    encode_bytes_part,
    encode_int_part,
    encode_str_part,
    hash_bytes,
    keyed_hash,
    mac54,
    mac_n,
)
from repro.crypto.otp import CounterModeEngine

KEY = b"test-key"
OTHER_KEY = b"other-key"


class TestKeyedHash:
    def test_deterministic(self):
        assert keyed_hash(KEY, 1, "a") == keyed_hash(KEY, 1, "a")

    def test_key_separates(self):
        assert keyed_hash(KEY, 1) != keyed_hash(OTHER_KEY, 1)

    def test_order_matters(self):
        assert keyed_hash(KEY, 1, 2) != keyed_hash(KEY, 2, 1)

    def test_structural_separation(self):
        """Concatenation ambiguity: ("ab","c") must not equal ("a","bc")."""
        assert keyed_hash(KEY, "ab", "c") != keyed_hash(KEY, "a", "bc")

    def test_bytes_vs_str_distinct(self):
        assert keyed_hash(KEY, b"x") != keyed_hash(KEY, "x")

    def test_int_vs_str_distinct(self):
        assert keyed_hash(KEY, 49) != keyed_hash(KEY, "1")

    def test_rejects_negative_int(self):
        with pytest.raises(ValueError):
            keyed_hash(KEY, -1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            keyed_hash(KEY, True)

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            keyed_hash(KEY, 1.5)

    def test_64_bit_range(self):
        value = keyed_hash(KEY, "probe")
        assert 0 <= value < 1 << 64


class TestMacTruncation:
    def test_mac54_width(self):
        for probe in range(32):
            assert mac54(KEY, probe) < 1 << MAC_BITS

    def test_mac_n_width(self):
        assert mac_n(KEY, 10, "x") < 1 << 10

    def test_hash_bytes_length(self):
        assert len(hash_bytes(KEY, 32, "x")) == 32

    def test_hash_bytes_rejects_oversize(self):
        with pytest.raises(ValueError):
            hash_bytes(KEY, 65, "x")

    @given(st.integers(min_value=0, max_value=2 ** 32),
           st.integers(min_value=0, max_value=2 ** 32))
    @settings(max_examples=50)
    def test_distinct_inputs_rarely_collide(self, a, b):
        if a != b:
            assert keyed_hash(KEY, a) != keyed_hash(KEY, b)


class TestFastPathEquivalence:
    """The hot-path helpers must be byte-identical to the generic path.

    ``SITAuthenticator`` and ``CounterModeEngine`` assemble their hash
    messages from these piecewise encoders and a prototype-copied keyed
    BLAKE2b; every MAC and pad in the repo depends on these producing
    exactly the bytes ``_serialize``/``mac54``/``hash_bytes`` would.
    """

    @given(st.integers(min_value=0, max_value=2 ** 80))
    @settings(max_examples=200)
    def test_int_part_matches_serialize(self, value):
        assert encode_int_part(value) == _serialize((value,))

    def test_int_part_boundaries(self):
        for value in (0, 1, 255, 256, 65535, 65536, 2 ** 54 - 1, 2 ** 64):
            assert encode_int_part(value) == _serialize((value,))

    def test_int_part_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_int_part(-1)

    @given(st.text(max_size=32))
    @settings(max_examples=50)
    def test_str_part_matches_serialize(self, value):
        assert encode_str_part(value) == _serialize((value,))

    @given(st.binary(max_size=80))
    @settings(max_examples=50)
    def test_bytes_part_matches_serialize(self, value):
        assert encode_bytes_part(value) == _serialize((value,))

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=50)
    def test_keyed_blake2b_matches_fresh_instance(self, message):
        import hashlib

        prf = KeyedBlake2b(KEY, digest_size=8)
        fresh = hashlib.blake2b(message, key=KEY, digest_size=8)
        assert prf.digest(message) == fresh.digest()
        # the prototype is not consumed: a second digest still matches
        assert prf.digest(message) == fresh.digest()

    @given(st.integers(min_value=0, max_value=4),
           st.integers(min_value=0, max_value=2 ** 20),
           st.lists(st.integers(min_value=0, max_value=2 ** 30),
                    min_size=8, max_size=8),
           st.integers(min_value=0, max_value=2 ** 30),
           st.integers(min_value=0, max_value=1023))
    @settings(max_examples=50)
    def test_node_mac_matches_mac54(self, level, index, counters,
                                    parent_counter, lsbs):
        from repro.tree.sit import SITAuthenticator

        auth = SITAuthenticator(KEY)
        assert auth.node_mac((level, index), counters,
                             parent_counter, lsbs) == \
            mac54(KEY, "sit-node", level, index, *counters,
                  parent_counter, lsbs)

    @given(st.integers(min_value=0, max_value=2 ** 20),
           st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE),
           st.integers(min_value=0, max_value=2 ** 40),
           st.integers(min_value=0, max_value=1023))
    @settings(max_examples=50)
    def test_data_mac_matches_mac54(self, address, ciphertext,
                                    counter, lsbs):
        from repro.tree.sit import SITAuthenticator

        auth = SITAuthenticator(KEY)
        assert auth.data_mac(address, ciphertext, counter, lsbs) == \
            mac54(KEY, "sit-data", address, ciphertext, counter, lsbs)

    @given(st.integers(min_value=0, max_value=2 ** 30),
           st.integers(min_value=0, max_value=2 ** 40))
    @settings(max_examples=50)
    def test_line_pad_matches_hash_bytes(self, address, counter):
        engine = CounterModeEngine(KEY)
        assert engine.one_time_pad(address, counter) == \
            hash_bytes(KEY, 64, "otp", address, counter, 0)

    def test_oversize_line_pad_unchanged(self):
        engine = CounterModeEngine(KEY, line_size=100)
        pad = engine.one_time_pad(3, 5)
        expected = (hash_bytes(KEY, 64, "otp", 3, 5, 0)
                    + hash_bytes(KEY, 64, "otp", 3, 5, 1))[:100]
        assert pad == expected


class TestCounterModeEngine:
    def setup_method(self):
        self.engine = CounterModeEngine(KEY)

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            CounterModeEngine(b"")

    def test_pad_length(self):
        assert len(self.engine.one_time_pad(0, 0)) == LINE_SIZE

    def test_roundtrip(self):
        plaintext = bytes(range(64))
        ciphertext = self.engine.encrypt(plaintext, 7, 3)
        assert self.engine.decrypt(ciphertext, 7, 3) == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        plaintext = bytes(64)
        assert self.engine.encrypt(plaintext, 7, 3) != plaintext

    def test_counter_changes_ciphertext(self):
        plaintext = bytes(64)
        assert self.engine.encrypt(plaintext, 7, 3) != \
            self.engine.encrypt(plaintext, 7, 4)

    def test_address_changes_ciphertext(self):
        plaintext = bytes(64)
        assert self.engine.encrypt(plaintext, 7, 3) != \
            self.engine.encrypt(plaintext, 8, 3)

    def test_wrong_counter_garbles(self):
        plaintext = bytes(range(64))
        ciphertext = self.engine.encrypt(plaintext, 7, 3)
        assert self.engine.decrypt(ciphertext, 7, 4) != plaintext

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            self.engine.encrypt(b"short", 0, 0)

    @given(st.binary(min_size=LINE_SIZE, max_size=LINE_SIZE),
           st.integers(min_value=0, max_value=2 ** 30),
           st.integers(min_value=0, max_value=2 ** 40))
    @settings(max_examples=40)
    def test_roundtrip_property(self, plaintext, address, counter):
        ciphertext = self.engine.encrypt(plaintext, address, counter)
        assert self.engine.decrypt(ciphertext, address, counter) == \
            plaintext

    def test_pads_unique_across_addr_counter(self):
        pads = {
            self.engine.one_time_pad(addr, counter)
            for addr in range(8) for counter in range(8)
        }
        assert len(pads) == 64
