"""Whole-program lint v2: project pass, STAR006/007/008, SARIF,
baseline.

Covers the call-graph effect propagation behind the STAR001 rewrite
(helper indirection is the acceptance pin), the batch/scalar parity
cross-reference, the lease-fencing and atomic-publish rules, the
SARIF reporter (structural validation against the SARIF 2.1.0
required subset + property round-trips), the baseline waiver
mechanism with its unused-waiver direction, pragma suppression edge
cases, and the checked-in fixture tree under ``tests/lint_fixtures``.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.lint.baseline import Baseline, Waiver
from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    FileContext,
    Finding,
    LintEngine,
    findings_from_json,
    findings_to_json,
)
from repro.lint.project import ProjectContext
from repro.lint.report import (
    findings_from_sarif,
    findings_to_sarif,
    sarif_report,
)
from repro.lint.rules import default_rules
from repro.lint.rules.atomic_publish import AtomicPublishRule
from repro.lint.rules.fencing import LeaseFencingRule
from repro.lint.rules.nvm_access import UncountedNvmAccessRule
from repro.lint.rules.parity import BatchParityRule

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def stage(tmp_path, files):
    """Write {relpath: source} under tmp_path; returns the root."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path, rules, files):
    stage(tmp_path, files)
    return LintEngine(rules).run([str(tmp_path)])


def codes(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# the project pass
# ----------------------------------------------------------------------
class TestProjectContext:
    def build(self, tmp_path, files):
        stage(tmp_path, files)
        engine = LintEngine([])
        engine.run([str(tmp_path)])
        # rebuild directly for inspection
        project = ProjectContext()
        import ast
        for path in sorted(tmp_path.rglob("*.py")):
            ctx = FileContext(str(path), path.read_text())
            project.add_module(ctx.path, ctx.module_path, ctx.tree)
        return project

    def test_symbol_table_indexes_defs(self, tmp_path):
        project = self.build(tmp_path, {
            "repro/mem/dev.py":
                "class Device:\n"
                "    def read(self):\n"
                "        return 1\n"
                "def helper(x):\n"
                "    return x\n",
        })
        info = project.module("repro/mem/dev.py")
        assert set(info.functions) == {"helper"}
        assert set(info.classes) == {"Device"}
        assert set(info.classes["Device"].methods) == {"read"}
        fn = project.function("repro/mem/dev.py::Device.read")
        assert fn is not None and fn.is_method

    def test_cross_module_subclass_resolution(self, tmp_path):
        project = self.build(tmp_path, {
            "repro/mem/nvm.py": "class NVM:\n    pass\n",
            "repro/mem/wear.py":
                "from repro.mem.nvm import NVM\n"
                "class Leveled(NVM):\n    pass\n"
                "class Deeper(Leveled):\n    pass\n",
        })
        subs = {cls.name for cls
                in project.subclasses_of("repro/mem/nvm.py", "NVM")}
        assert subs == {"Leveled", "Deeper"}

    def test_call_resolution_through_imports_and_self(self, tmp_path):
        project = self.build(tmp_path, {
            "repro/util/helpers.py": "def probe(x):\n    return x\n",
            "repro/sim/run.py":
                "from repro.util.helpers import probe\n"
                "class Driver:\n"
                "    def step(self):\n"
                "        return self.spin()\n"
                "    def spin(self):\n"
                "        return probe(1)\n",
        })
        import ast
        info = project.module("repro/sim/run.py")
        step = info.classes["Driver"].methods["step"]
        call = next(n for n in ast.walk(step.node)
                    if isinstance(n, ast.Call))
        resolved = project.resolve_call("repro/sim/run.py", call,
                                        "Driver")
        assert resolved is not None and resolved.qualname == \
            "Driver.spin"
        spin = info.classes["Driver"].methods["spin"]
        call = next(n for n in ast.walk(spin.node)
                    if isinstance(n, ast.Call))
        resolved = project.resolve_call("repro/sim/run.py", call,
                                        "Driver")
        assert resolved is not None and \
            resolved.module_path == "repro/util/helpers.py"


# ----------------------------------------------------------------------
# STAR001 v2: effect propagation
# ----------------------------------------------------------------------
class TestNvmEffectPropagation:
    def test_detects_access_through_helper(self, tmp_path):
        """The acceptance pin: an uncounted access reached only
        through a helper whose parameter is not nvm-shaped."""
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/scan.py":
                "def census(store):\n"
                "    return len(store._data)\n"
                "def audit(machine):\n"
                "    return census(machine.nvm)\n",
        })
        assert codes(findings) == ["STAR001"]
        assert findings[0].line == 4
        assert "census" in findings[0].message
        assert "store" in findings[0].message

    def test_transitive_and_cross_module_effects(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/util/deep.py":
                "def inner(dev):\n"
                "    return dev._meta\n"
                "def outer(thing):\n"
                "    return inner(thing)\n",
            "repro/sim/use.py":
                "from repro.util.deep import outer\n"
                "def probe(machine):\n"
                "    return outer(machine.nvm)\n",
        })
        assert codes(findings) == ["STAR001"]
        assert findings[0].path.endswith("use.py")

    def test_keyword_argument_binding(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/kw.py":
                "def census(limit, store=None):\n"
                "    return len(store._data) if limit else 0\n"
                "def audit(machine):\n"
                "    return census(3, store=machine.nvm)\n",
        })
        assert codes(findings) == ["STAR001"]

    def test_nvm_subclass_self_access_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/mem/nvm.py": "class NVM:\n    pass\n",
            "repro/mem/wear.py":
                "from repro.mem.nvm import NVM\n"
                "class Leveled(NVM):\n"
                "    def shuffle(self):\n"
                "        self._data[0] = self._data.pop(1)\n",
        })
        assert codes(findings) == ["STAR001", "STAR001"]
        assert all("Leveled" in f.message for f in findings)

    def test_non_nvm_class_self_access_passes(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/other.py":
                "class Journal:\n"
                "    def __init__(self):\n"
                "        self._data = {}\n"
                "    def flush(self):\n"
                "        self._data.clear()\n",
        })
        assert findings == []

    def test_helper_taking_plain_dict_passes(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/ok.py":
                "def census(store):\n"
                "    return len(store._data)\n"
                "def audit(journal):\n"
                "    return census(journal.pages)\n",
        })
        assert findings == []

    def test_exempt_module_callee_not_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/batch.py":
                "def drain(dev):\n"
                "    return len(dev._meta)\n",
            "repro/sim/use.py":
                "from repro.sim.batch import drain\n"
                "def go(machine):\n"
                "    return drain(machine.nvm)\n",
        })
        assert findings == []


# ----------------------------------------------------------------------
# STAR006: batch/scalar parity drift
# ----------------------------------------------------------------------
SCALAR_SRC = (
    "class SecureMemoryController:\n"
    "    def __init__(self, config, geometry):\n"
    "        self.config = config\n"
    "        self.geometry = geometry\n"
    "        self._hist = {}\n"
    "    def write_data(self, address):\n"
    "        self._hist[address] = 1\n"
    "        return self.geometry\n"
)


class TestBatchParity:
    def test_unmirrored_field_is_flagged(self, tmp_path):
        """The acceptance pin: a synthetic scalar-side field absent
        from the fixture batch engine and the roster."""
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py": SCALAR_SRC,
            "repro/sim/batch.py":
                "SCALAR_PARITY_EXEMPT = frozenset({'config'})\n"
                "class EpochEngine:\n"
                "    __slots__ = ('geometry',)\n"
                "    def __init__(self, ctrl):\n"
                "        self.geometry = ctrl.geometry\n",
        })
        assert codes(findings) == ["STAR006"]
        assert "_hist" in findings[0].message
        assert findings[0].path.endswith("controller.py")
        assert findings[0].line == 5  # first self._hist use

    def test_mirrored_and_exempt_fields_pass(self, tmp_path):
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py": SCALAR_SRC,
            "repro/sim/batch.py":
                "SCALAR_PARITY_EXEMPT = frozenset({'config'})\n"
                "class EpochEngine:\n"
                "    __slots__ = ('geometry', '_hist')\n"
                "    def __init__(self, ctrl):\n"
                "        self.geometry = ctrl.geometry\n"
                "        self._hist = dict(ctrl._hist)\n",
        })
        assert findings == []

    def test_unused_exemption_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py": SCALAR_SRC,
            "repro/sim/batch.py":
                "SCALAR_PARITY_EXEMPT = frozenset("
                "{'config', 'geometry'})\n"
                "class EpochEngine:\n"
                "    __slots__ = ('geometry', '_hist')\n"
                "    def __init__(self, ctrl):\n"
                "        self.geometry = ctrl.geometry\n"
                "        self._hist = dict(ctrl._hist)\n",
        })
        assert codes(findings) == ["STAR006"]
        assert "unused" in findings[0].message
        assert findings[0].path.endswith("batch.py")

    def test_stale_exemption_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py": SCALAR_SRC,
            "repro/sim/batch.py":
                "SCALAR_PARITY_EXEMPT = frozenset("
                "{'config', 'vanished'})\n"
                "class EpochEngine:\n"
                "    __slots__ = ('geometry', '_hist')\n"
                "    def __init__(self, ctrl):\n"
                "        self.geometry = ctrl.geometry\n"
                "        self._hist = dict(ctrl._hist)\n",
        })
        assert codes(findings) == ["STAR006"]
        assert "stale" in findings[0].message

    def test_half_pair_in_scope_is_silent(self, tmp_path):
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py": SCALAR_SRC,
        })
        assert findings == []

    def test_missing_controller_class_reported(self, tmp_path):
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py": "class Renamed:\n    pass\n",
            "repro/sim/batch.py": "class EpochEngine:\n    pass\n",
        })
        assert codes(findings) == ["STAR006"]
        assert "not found" in findings[0].message


# ----------------------------------------------------------------------
# STAR007: lease fencing
# ----------------------------------------------------------------------
class TestLeaseFencing:
    def test_unfenced_mutation_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [LeaseFencingRule()], {
            "repro/lab/lease.py":
                "class Board:\n"
                "    def zap(self, h):\n"
                "        self._conn.execute(\n"
                "            \"DELETE FROM leases WHERE spec_hash"
                " = ?\", (h,))\n",
        })
        assert codes(findings) == ["STAR007"]

    def test_transactional_and_helper_mutations_pass(self, tmp_path):
        findings = lint_tree(tmp_path, [LeaseFencingRule()], {
            "repro/lab/lease.py":
                "class Board:\n"
                "    def _begin(self):\n"
                "        self._conn.execute('BEGIN IMMEDIATE')\n"
                "    def _fenced_update(self, set_sql, params):\n"
                "        self._conn.execute(\n"
                "            'UPDATE leases SET %s WHERE fence = ?'\n"
                "            % set_sql, params)\n"
                "    def requeue(self, h):\n"
                "        self._begin()\n"
                "        self._conn.execute(\n"
                "            \"UPDATE leases SET state = 'pending'\""
                ")\n"
                "        self._conn.execute('COMMIT')\n",
        })
        assert findings == []

    def test_reads_and_other_tables_pass(self, tmp_path):
        findings = lint_tree(tmp_path, [LeaseFencingRule()], {
            "repro/lab/lease.py":
                "class Board:\n"
                "    def peek(self):\n"
                "        return self._conn.execute(\n"
                "            'SELECT * FROM leases').fetchall()\n"
                "    def note(self):\n"
                "        self._conn.execute(\n"
                "            'INSERT INTO audit VALUES (1)')\n",
        })
        assert findings == []

    def test_out_of_scope_module_passes(self, tmp_path):
        findings = lint_tree(tmp_path, [LeaseFencingRule()], {
            "repro/obs/top.py":
                "def zap(conn):\n"
                "    conn.execute('DELETE FROM leases')\n",
        })
        assert findings == []

    def test_net_package_is_in_scope(self, tmp_path):
        """The ``repro/lab/net/`` prefix covers the whole HTTP
        transport package: a server verb reaching for raw lease SQL
        (instead of the board's fenced methods) is a finding."""
        findings = lint_tree(tmp_path, [LeaseFencingRule()], {
            "repro/lab/net/server.py":
                "class Server:\n"
                "    def _verb_complete(self, payload):\n"
                "        self.board._conn.execute(\n"
                "            \"UPDATE leases SET state = 'done'"
                " WHERE spec_hash = ?\",\n"
                "            (payload['spec_hash'],))\n",
        })
        assert codes(findings) == ["STAR007"]

    def test_net_verbs_through_board_methods_pass(self, tmp_path):
        findings = lint_tree(tmp_path, [LeaseFencingRule()], {
            "repro/lab/net/server.py":
                "class Server:\n"
                "    def _verb_complete(self, payload):\n"
                "        ok = self.board.complete(\n"
                "            payload['owner'], payload['spec_hash'],\n"
                "            payload['fence'])\n"
                "        return {'ok': ok}\n",
        })
        assert findings == []


# ----------------------------------------------------------------------
# STAR008: atomic publish
# ----------------------------------------------------------------------
class TestAtomicPublish:
    def test_plain_write_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [AtomicPublishRule()], {
            "repro/obs/out.py":
                "import json\n"
                "def publish(path, payload):\n"
                "    with open(path, 'w') as handle:\n"
                "        json.dump(payload, handle)\n",
        })
        assert codes(findings) == ["STAR008"]

    def test_write_text_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, [AtomicPublishRule()], {
            "repro/lab/out.py":
                "def publish(path, text):\n"
                "    path.write_text(text)\n",
        })
        assert codes(findings) == ["STAR008"]

    def test_tmp_replace_idiom_passes(self, tmp_path):
        findings = lint_tree(tmp_path, [AtomicPublishRule()], {
            "repro/obs/out.py":
                "import json, os\n"
                "def publish(path, payload):\n"
                "    tmp = '%s.tmp' % path\n"
                "    with open(tmp, 'w') as handle:\n"
                "        json.dump(payload, handle)\n"
                "    os.replace(tmp, path)\n",
        })
        assert findings == []

    def test_user_chosen_args_path_exempt(self, tmp_path):
        findings = lint_tree(tmp_path, [AtomicPublishRule()], {
            "repro/lab/cli2.py":
                "import json\n"
                "def export(args, payload):\n"
                "    with open(args.output, 'w') as handle:\n"
                "        json.dump(payload, handle)\n",
        })
        assert findings == []

    def test_reads_and_out_of_scope_pass(self, tmp_path):
        findings = lint_tree(tmp_path, [AtomicPublishRule()], {
            "repro/obs/in.py":
                "def load(path):\n"
                "    with open(path) as handle:\n"
                "        return handle.read()\n",
            "repro/tools/free.py":
                "def publish(path, text):\n"
                "    with open(path, 'w') as handle:\n"
                "        handle.write(text)\n",
        })
        assert findings == []


# ----------------------------------------------------------------------
# pragma suppression edge cases
# ----------------------------------------------------------------------
class TestPragmaEdgeCases:
    def test_pragma_on_decorated_def(self, tmp_path):
        """The pragma goes on the def/class line the finding points
        at, not the decorator line above it."""
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/dec.py":
                "def wrap(f):\n"
                "    return f\n"
                "@wrap\n"
                "def scan(nvm):\n"
                "    return nvm._meta  # lint: disable=STAR001\n",
        })
        assert findings == []

    def test_multi_rule_comma_list(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            [UncountedNvmAccessRule()] + [
                r for r in default_rules() if r.code == "STAR002"
            ],
            {
                "repro/sim/multi.py":
                    "lsbs = nvm._meta = 5000"
                    "  # lint: disable=STAR001, STAR002\n",
            },
        )
        assert findings == []

    def test_file_pragma_after_imports(self, tmp_path):
        findings = lint_tree(tmp_path, [UncountedNvmAccessRule()], {
            "repro/sim/late.py":
                "import json\n"
                "\n"
                "# lint: disable-file=STAR001\n"
                "def a(nvm):\n"
                "    return json.dumps(sorted(nvm._meta))\n"
                "def b(nvm):\n"
                "    return nvm._data\n",
        })
        assert findings == []

    def test_pragma_suppresses_finish_findings(self, tmp_path):
        """finish()-emitted findings (STAR006 runs entirely in the
        project phase) honour the same pragmas as per-file ones."""
        findings = lint_tree(tmp_path, [BatchParityRule()], {
            "repro/sim/controller.py":
                "class SecureMemoryController:\n"
                "    def __init__(self, geometry):\n"
                "        self.geometry = geometry\n"
                "        self._hist = {}"
                "  # lint: disable=STAR006\n",
            "repro/sim/batch.py":
                "class EpochEngine:\n"
                "    __slots__ = ('geometry',)\n"
                "    def __init__(self, ctrl):\n"
                "        self.geometry = ctrl.geometry\n",
        })
        assert findings == []


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------
def validate_sarif_2_1_0(payload):
    """Structural validation of the SARIF 2.1.0 required subset.

    Mirrors the required-property constraints of the official schema
    (sarif-schema-2.1.0.json): version string, runs array, per-run
    tool.driver.name, per-result message; locations, when present,
    carry physicalLocation.artifactLocation.uri and a 1-based region.
    """
    assert isinstance(payload, dict)
    assert payload["version"] == "2.1.0"
    assert isinstance(payload["runs"], list)
    for run in payload["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        for rule in driver.get("rules", []):
            assert isinstance(rule["id"], str) and rule["id"]
        assert isinstance(run["results"], list)
        for result in run["results"]:
            assert isinstance(result["message"]["text"], str)
            assert isinstance(result.get("ruleId", ""), str)
            for location in result.get("locations", []):
                physical = location["physicalLocation"]
                uri = physical["artifactLocation"]["uri"]
                assert isinstance(uri, str) and uri
                region = physical["region"]
                assert isinstance(region["startLine"], int)
                assert region["startLine"] >= 1
                if "startColumn" in region:
                    assert region["startColumn"] >= 1


class TestSarif:
    FINDINGS = [
        Finding("STAR001", "src/repro/sim/x.py", 3, 7, "uncounted"),
        Finding("STAR008", "src/repro/obs/y.py", 1, 0, "torn write"),
    ]

    def test_report_validates_against_schema_subset(self):
        payload = sarif_report(self.FINDINGS, default_rules())
        validate_sarif_2_1_0(payload)
        json.loads(json.dumps(payload))  # serializable

    def test_all_eight_rules_in_driver(self):
        payload = sarif_report([], default_rules())
        ids = [r["id"] for r
               in payload["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == ["STAR00%d" % i for i in range(1, 9)]

    def test_round_trip(self):
        text = findings_to_sarif(self.FINDINGS, default_rules())
        assert findings_from_sarif(text) == self.FINDINGS

    def test_cli_sarif_output_validates(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(nvm):\n    return nvm._meta\n")
        out = tmp_path / "out.sarif"
        assert lint_main([str(bad), "--sarif", str(out)]) == 0
        payload = json.loads(out.read_text())
        validate_sarif_2_1_0(payload)
        assert payload["runs"][0]["results"][0]["ruleId"] == "STAR001"
        capsys.readouterr()


FINDING_ST = st.builds(
    Finding,
    rule=st.sampled_from(["STAR00%d" % i for i in range(1, 9)]),
    path=st.text(
        alphabet=st.characters(
            codec="ascii", categories=("L", "N"),
            include_characters="/._-",
        ),
        min_size=1, max_size=40,
    ).filter(lambda p: not p.startswith("./")),
    line=st.integers(min_value=1, max_value=10 ** 6),
    col=st.integers(min_value=0, max_value=500),
    message=st.text(min_size=0, max_size=200),
)


class TestReporterProperties:
    @given(st.lists(FINDING_ST, max_size=8))
    def test_json_round_trip(self, findings):
        assert findings_from_json(findings_to_json(findings)) == \
            findings

    @given(st.lists(FINDING_ST, max_size=8))
    def test_sarif_round_trip_and_validity(self, findings):
        text = findings_to_sarif(findings)
        validate_sarif_2_1_0(json.loads(text))
        assert findings_from_sarif(text) == findings


# ----------------------------------------------------------------------
# baseline waivers
# ----------------------------------------------------------------------
class TestBaseline:
    def test_waiver_absorbs_matching_finding(self):
        baseline = Baseline([
            Waiver(rule="STAR008", path="repro/obs/events.py",
                   reason="streaming sink"),
        ])
        findings = [
            Finding("STAR008", "src/repro/obs/events.py", 65, 21,
                    "non-atomic publish"),
            Finding("STAR001", "src/repro/sim/x.py", 3, 0, "boom"),
        ]
        kept, unused = baseline.apply(findings)
        assert codes(kept) == ["STAR001"]
        assert unused == []

    def test_contains_narrows_the_match(self):
        baseline = Baseline([
            Waiver(rule="STAR008", path="repro/obs/events.py",
                   contains="streaming", reason="sink"),
        ])
        kept, unused = baseline.apply([
            Finding("STAR008", "src/repro/obs/events.py", 65, 21,
                    "non-atomic publish"),
        ])
        assert len(kept) == 1 and len(unused) == 1

    def test_unused_waiver_becomes_finding(self):
        baseline = Baseline(
            [Waiver(rule="STAR007", path="repro/lab/gone.py",
                    reason="ancient")],
            origin="lint-baseline.json",
        )
        kept, unused = baseline.apply([])
        assert kept == []
        assert codes(unused) == ["STARBASE"]
        assert unused[0].path == "lint-baseline.json"
        assert "repro/lab/gone.py" in unused[0].message

    def test_load_rejects_missing_reason(self, tmp_path):
        target = tmp_path / "base.json"
        target.write_text(json.dumps({
            "waivers": [{"rule": "STAR001", "path": "x.py"}],
        }))
        with pytest.raises(ValueError):
            Baseline.load(str(target))

    def test_cli_baseline_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(nvm):\n    return nvm._meta\n")
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"waivers": [{
            "rule": "STAR001", "path": "repro/sim/bad.py",
            "reason": "known debt",
        }]}))
        assert lint_main([str(bad), "--check",
                          "--baseline", str(base)]) == 0
        # an unused waiver on a clean tree fails --check
        good = tmp_path / "repro" / "sim" / "good.py"
        good.write_text("x = 1\n")
        assert lint_main([str(good), "--check",
                          "--baseline", str(base)]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# the fixture tree: one intentionally-bad file per rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", ["STAR00%d" % i for i in range(1, 9)])
def test_fixture_tree_pins_each_rule(code):
    root = FIXTURES / code.lower()
    assert root.is_dir(), "missing fixture dir for %s" % code
    engine = LintEngine(default_rules())
    findings = engine.run([str(root)])
    assert engine.errors == []
    assert codes(findings).count(code) >= 1, \
        "%s fixture no longer triggers its rule" % code
    # fixtures stay surgical: nothing else may fire
    assert set(codes(findings)) == {code}


def test_fixture_star001_findings_are_call_sites():
    """The helper-indirection fixture flags both call sites (direct
    and transitive), not the helper bodies."""
    engine = LintEngine(default_rules())
    findings = engine.run([str(FIXTURES / "star001")])
    assert [f.line for f in findings] == [22, 23]
    assert all("census" in f.message or "relay" in f.message
               for f in findings)


def test_fixture_star006_flags_the_synthetic_field():
    engine = LintEngine(default_rules())
    findings = engine.run([str(FIXTURES / "star006")])
    assert len(findings) == 1
    assert "_synthetic_hist" in findings[0].message
    assert findings[0].path.endswith("controller.py")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliV2:
    def test_list_rules_registers_all_eight(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 9):
            assert "STAR00%d" % i in out

    def test_paths_required_without_list_rules(self, capsys):
        with pytest.raises(SystemExit):
            lint_main([])
        capsys.readouterr()
