"""RunSpec identity: canonical hashing and config round-trips.

The whole lab rests on one invariant: equal computations hash equal,
different computations hash different. These tests pin both directions
plus the ``SystemConfig`` <-> canonical-JSON round-trip that lets a
journal rebuild its machines.
"""

import dataclasses

import pytest

from repro.bench.runner import config_for_scale
from repro.errors import ConfigError
from repro.fuzz.sampling import CampaignSpec, sample_cases
from repro.lab.spec import (
    RunSpec,
    bench_spec,
    canonical_config,
    canonical_json,
    config_digest,
    config_from_canonical,
    fuzz_spec,
)


def _spec(**overrides):
    config = overrides.pop("config", config_for_scale("smoke"))
    base = dict(scheme="star", workload="hash", operations=64, seed=7)
    base.update(overrides)
    return bench_spec(config, **base)


class TestSpecHash:
    def test_identical_specs_hash_identically(self):
        assert _spec().spec_hash == _spec().spec_hash

    def test_hash_survives_dict_round_trip(self):
        spec = _spec(crash_and_recover=True, metrics=("nvm.",))
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    @pytest.mark.parametrize("overrides", [
        {"scheme": "anubis"},
        {"workload": "array"},
        {"operations": 65},
        {"seed": 8},
        {"crash_and_recover": True},
        {"metrics": ("nvm.",)},
        {"config": config_for_scale("smoke", adr_bitmap_lines=8)},
        {"config": config_for_scale("smoke", bitmap_fanout=64)},
    ])
    def test_any_semantic_change_changes_the_hash(self, overrides):
        assert _spec(**overrides).spec_hash != _spec().spec_hash

    def test_schema_version_is_part_of_the_identity(self):
        assert _spec().canonical()["schema"] == 1

    def test_canonical_json_is_stable_under_key_order(self):
        assert (canonical_json({"b": 1, "a": 2})
                == canonical_json({"a": 2, "b": 1}))

    def test_rejects_unknown_kind_and_empty_runs(self):
        payload = _spec().to_dict()
        payload["kind"] = "mystery"
        with pytest.raises(ConfigError):
            RunSpec.from_dict(payload)
        with pytest.raises(ConfigError):
            _spec(operations=0)


class TestConfigRoundTrip:
    def test_round_trip_reproduces_the_exact_config(self):
        config = config_for_scale(
            "smoke", adr_bitmap_lines=8, bitmap_fanout=64
        ).with_metadata_cache_bytes(8192)
        rebuilt = config_from_canonical(canonical_config(config))
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(config)
        assert rebuilt.crypto_key == config.crypto_key
        assert config_digest(rebuilt) == config_digest(config)

    def test_system_config_accessor_matches_factory_input(self):
        config = config_for_scale("smoke")
        spec = _spec(config=config)
        assert (dataclasses.asdict(spec.system_config())
                == dataclasses.asdict(config))

    def test_malformed_canonical_config_raises_config_error(self):
        payload = canonical_config(config_for_scale("smoke"))
        del payload["nvm"]
        with pytest.raises(ConfigError):
            config_from_canonical(payload)


class TestFuzzSpecs:
    def test_fuzz_cases_map_to_stable_distinct_specs(self):
        cases = sample_cases(CampaignSpec(cases=6, seed=3))
        hashes = [fuzz_spec(case).spec_hash for case in cases]
        assert hashes == [fuzz_spec(case).spec_hash for case in cases]
        assert len(set(hashes)) == len(hashes)

    def test_fuzz_params_carry_the_sampled_fractions(self):
        case = sample_cases(CampaignSpec(cases=1, seed=3))[0]
        spec = fuzz_spec(case)
        assert spec.kind == "fuzz"
        assert spec.params["crash_frac"] == case.crash_frac
        assert spec.params["prepare_frac"] == case.prepare_frac
