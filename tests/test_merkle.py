"""Unit + property tests for the keyed Merkle folding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tree.merkle import fold_level, merkle_levels, merkle_root

KEY = b"merkle-key"


class TestFoldLevel:
    def test_groups_of_arity(self):
        parents = fold_level(KEY, list(range(16)), 8, "t", 0)
        assert len(parents) == 2

    def test_partial_group_zero_padded(self):
        explicit = fold_level(KEY, [1, 2, 3] + [0] * 5, 8, "t", 0)
        padded = fold_level(KEY, [1, 2, 3], 8, "t", 0)
        assert explicit == padded

    def test_rejects_tiny_arity(self):
        with pytest.raises(ValueError):
            fold_level(KEY, [1], 1, "t", 0)


class TestMerkleRoot:
    def test_empty_root_is_zero(self):
        assert merkle_root(KEY, []) == 0

    def test_single_leaf_still_folded(self):
        assert merkle_root(KEY, [123]) != 123

    def test_deterministic(self):
        leaves = list(range(20))
        assert merkle_root(KEY, leaves) == merkle_root(KEY, leaves)

    def test_key_separates(self):
        assert merkle_root(KEY, [1, 2]) != merkle_root(b"other", [1, 2])

    def test_domain_separates(self):
        assert merkle_root(KEY, [1, 2], domain="a") != \
            merkle_root(KEY, [1, 2], domain="b")

    def test_leaf_count_matters(self):
        """[x] and [x, 0] must not collide (length extension guard)."""
        assert merkle_root(KEY, [5]) == merkle_root(KEY, [5, 0])
        # same group is expected to collide with explicit zero padding;
        # an extra group changes the shape
        assert merkle_root(KEY, [5] + [0] * 8) != merkle_root(KEY, [5])

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 64 - 1),
                    min_size=1, max_size=40),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_leaf_change_changes_root(self, leaves, data):
        index = data.draw(st.integers(min_value=0,
                                      max_value=len(leaves) - 1))
        mutated = list(leaves)
        mutated[index] ^= 1
        assert merkle_root(KEY, leaves) != merkle_root(KEY, mutated)

    @given(st.lists(st.integers(min_value=1, max_value=2 ** 32),
                    min_size=2, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_order_matters(self, leaves):
        reordered = list(reversed(leaves))
        assert merkle_root(KEY, leaves) != merkle_root(KEY, reordered)


class TestMerkleLevels:
    def test_levels_shrink_to_root(self):
        levels = merkle_levels(KEY, list(range(64)), arity=8)
        assert [len(level) for level in levels] == [64, 8, 1]

    def test_root_matches(self):
        leaves = list(range(30))
        levels = merkle_levels(KEY, leaves)
        assert levels[-1][0] == merkle_root(KEY, leaves)

    def test_empty(self):
        assert merkle_levels(KEY, []) == [[]]
