"""Stateful property test for the BMT substrate under Osiris and
Triad-NVM: encrypted reads always match a plain model, and every
crash-recovery cycle restores the exact counter state."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.bmt import BMTController, OsirisScheme, TriadNvmScheme
from repro.mem.nvm import NVM

KEY = b"bmt-stateful-key"
LINES = 64 * 12  # 12 counter blocks


def _plaintext(token: int) -> bytes:
    return token.to_bytes(8, "big") * 8


class BmtMachineModel(RuleBasedStateMachine):
    @initialize(scheme=st.sampled_from(["osiris", "triad"]),
                stride=st.integers(min_value=1, max_value=8))
    def boot(self, scheme, stride):
        if scheme == "osiris":
            self.scheme_factory = lambda: OsirisScheme(
                persist_stride=stride
            )
        else:
            self.scheme_factory = lambda: TriadNvmScheme()
        self.controller = BMTController(
            KEY, LINES, NVM(), self.scheme_factory()
        )
        self.model = {}

    @rule(line=st.integers(min_value=0, max_value=LINES - 1),
          token=st.integers(min_value=0, max_value=2 ** 32 - 1))
    def write(self, line, token):
        self.controller.write_data(line, _plaintext(token))
        self.model[line] = _plaintext(token)

    @rule(line=st.integers(min_value=0, max_value=LINES - 1))
    def read(self, line):
        expected = self.model.get(line, bytes(64))
        assert self.controller.read_data(line) == expected

    @rule()
    def crash_and_recover(self):
        controller = self.controller
        controller.crash()
        report = controller.recover()
        assert report.verified
        for index, image in controller.pre_crash_blocks.items():
            assert report.restored[index] == \
                (image.major,) + image.minors
        # reboot on the surviving NVM; the data must still read back
        self.controller = BMTController(
            KEY, LINES, controller.nvm, self.scheme_factory()
        )
        self.controller.persistent_root = controller.persistent_root

    @invariant()
    def cached_counters_cover_model(self):
        controller = getattr(self, "controller", None)
        if controller is None or controller.crashed:
            return
        # every written line's counter is live (non-zero)
        for line in self.model:
            block = controller._get_block(
                controller.geometry.counter_block_for(line)
            )
            major, minor = block.counter_for(
                controller.geometry.minor_slot(line)
            )
            assert (major, minor) != (0, 0)


TestBmtStateful = BmtMachineModel.TestCase
TestBmtStateful.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None,
)
