"""Unit + property tests for counter-MAC synergization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LSB_BITS
from repro.core.synergy import (
    LSB_MASK,
    LSB_SPAN,
    counter_lsbs,
    reconstruct_counter,
)


class TestCounterLsbs:
    def test_masks_low_bits(self):
        assert counter_lsbs(0x12345) == 0x345
        assert counter_lsbs(0) == 0

    def test_span_constants(self):
        assert LSB_SPAN == 1 << LSB_BITS
        assert LSB_MASK == LSB_SPAN - 1


class TestReconstruct:
    def test_no_drift(self):
        assert reconstruct_counter(100, counter_lsbs(100)) == 100

    def test_small_drift(self):
        assert reconstruct_counter(100, counter_lsbs(105)) == 105

    def test_wraparound_drift(self):
        """The paper's hard case: live counter crossed a 2^10 boundary."""
        stale = 0x3FF  # 1023
        live = 0x401   # 1025, LSBs 0x001 < stale LSBs
        assert reconstruct_counter(stale, counter_lsbs(live)) == live

    def test_exact_boundary(self):
        assert reconstruct_counter(0x7FF, 0x000) == 0x800

    def test_maximum_recoverable_drift(self):
        stale = 5000
        live = stale + LSB_SPAN - 1
        assert reconstruct_counter(stale, counter_lsbs(live)) == live

    def test_drift_beyond_span_is_ambiguous(self):
        """2^10 increments alias — exactly why STAR force-flushes."""
        stale = 5000
        live = stale + LSB_SPAN
        assert reconstruct_counter(stale, counter_lsbs(live)) == stale

    def test_rejects_negative_counter(self):
        with pytest.raises(ValueError):
            reconstruct_counter(-1, 0)

    def test_rejects_wide_lsbs(self):
        with pytest.raises(ValueError):
            reconstruct_counter(0, LSB_SPAN)

    @given(st.integers(min_value=0, max_value=2 ** 56 - LSB_SPAN),
           st.integers(min_value=0, max_value=LSB_SPAN - 1))
    @settings(max_examples=300)
    def test_exact_for_any_drift_below_span(self, stale, drift):
        """The central recovery invariant of Section III-B."""
        live = stale + drift
        assert reconstruct_counter(stale, counter_lsbs(live)) == live

    @given(st.integers(min_value=0, max_value=2 ** 56 - 1),
           st.integers(min_value=0, max_value=LSB_SPAN - 1))
    @settings(max_examples=200)
    def test_result_is_nearest_match_at_or_above_stale(self, stale, lsbs):
        result = reconstruct_counter(stale, lsbs)
        assert result >= stale
        assert counter_lsbs(result) == lsbs
        assert result - stale < LSB_SPAN
