"""Reproducibility guarantees.

A reproduction package must produce identical inputs and results on any
machine and Python build: the workload generators seed their RNGs with
SHA-512-based string seeding (never hash randomization), the crypto is
keyed BLAKE2b, and the simulator contains no wall-clock or iteration-
order dependence. These tests pin golden digests so an accidental
change to any of that surfaces as a loud, explicit failure.

If one of these fails after an *intentional* workload or crypto change,
update the digest and say so in the changelog — the numbers in
EXPERIMENTS.md implicitly changed with it.
"""

import hashlib

import pytest

from repro.config import small_config
from repro.crypto.hashing import keyed_hash
from repro.sim.machine import Machine
from repro.workloads.capture import format_op
from repro.workloads.registry import make_workload

GOLDEN_TRACE_DIGESTS = {
    "array": "5d56e8ae7456c667",
    "btree": "311d322033693c6e",
    "hash": "c8519b7c584b0784",
    "queue": "49ea36dc367ba3b6",
    "rbtree": "a0dcb62ed644f6a2",
    "tpcc": "687c5d879eadeeb4",
    "ycsb": "af42876aac3418a5",
}


def trace_digest(name: str) -> str:
    workload = make_workload(name, 64 * 1024, operations=120, seed=42)
    hasher = hashlib.blake2b(digest_size=8)
    for op in workload.ops():
        hasher.update(format_op(op).encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDEN_TRACE_DIGESTS))
def test_workload_traces_are_frozen(name):
    assert trace_digest(name) == GOLDEN_TRACE_DIGESTS[name], (
        "the %r trace changed; if intentional, update the golden "
        "digest and re-record EXPERIMENTS.md" % name
    )


def test_crypto_is_frozen():
    """The MAC construction itself is part of the reproducibility
    contract (it determines every image and root in the system)."""
    assert keyed_hash(b"key", "probe", 7) == 0x0181D94D323B57AE


def test_simulation_is_deterministic_end_to_end():
    """Two fresh machines on the same trace agree on *everything*."""
    def run():
        machine = Machine(small_config(), scheme="star")
        workload = make_workload(
            "hash", machine.config.num_data_lines,
            operations=150, seed=9,
        )
        machine.run(workload.ops())
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        return (machine.stats.snapshot(), machine.timing.now_ns,
                machine.registers.cache_tree_root,
                sorted(report.restored.items()))

    assert run() == run()
