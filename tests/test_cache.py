"""Unit + property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.errors import ReproError
from repro.mem.cache import EvictionDeadlock, SetAssociativeCache


def make_cache(sets: int = 4, ways: int = 2) -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheConfig(size_bytes=sets * ways * 64, ways=ways)
    )


class TestBasics:
    def test_set_mapping(self):
        cache = make_cache(sets=4)
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1

    def test_insert_lookup(self):
        cache = make_cache()
        cache.insert(8, payload="p")
        line = cache.lookup(8)
        assert line is not None
        assert line.payload == "p"
        assert not line.dirty

    def test_lookup_miss(self):
        assert make_cache().lookup(8) is None

    def test_contains(self):
        cache = make_cache()
        cache.insert(8)
        assert 8 in cache
        assert 4 not in cache

    def test_double_insert_rejected(self):
        cache = make_cache()
        cache.insert(8)
        with pytest.raises(ReproError):
            cache.insert(8)

    def test_insert_into_full_set_rejected(self):
        cache = make_cache(sets=4, ways=1)
        cache.insert(0)
        with pytest.raises(ReproError):
            cache.insert(4)

    def test_remove(self):
        cache = make_cache()
        cache.insert(8)
        cache.remove(8)
        assert 8 not in cache

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            make_cache().remove(1)


class TestVictimSelection:
    def test_no_victim_when_room(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0)
        assert cache.victim_for(100) is None

    def test_lru_victim(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0)
        cache.insert(1)
        cache.lookup(0)  # refresh 0; 1 becomes LRU
        victim = cache.victim_for(2)
        assert victim is not None and victim.addr == 1

    def test_pinned_lines_skipped(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0)
        cache.insert(1)
        cache.pin(0)
        victim = cache.victim_for(2)
        assert victim is not None and victim.addr == 1

    def test_all_pinned_deadlocks(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0)
        cache.insert(1)
        cache.pin(0)
        cache.pin(1)
        with pytest.raises(EvictionDeadlock):
            cache.victim_for(2)

    def test_unpin_restores_eviction(self):
        cache = make_cache(sets=1, ways=1)
        cache.insert(0)
        cache.pin(0)
        cache.unpin(0)
        victim = cache.victim_for(1)
        assert victim is not None and victim.addr == 0


class TestDirtyState:
    def test_mark_dirty_reports_transition(self):
        cache = make_cache()
        cache.insert(8)
        assert cache.mark_dirty(8) is True
        assert cache.mark_dirty(8) is False

    def test_mark_clean_reports_transition(self):
        cache = make_cache()
        cache.insert(8, dirty=True)
        assert cache.mark_clean(8) is True
        assert cache.mark_clean(8) is False

    def test_mark_missing_raises(self):
        with pytest.raises(KeyError):
            make_cache().mark_dirty(1)

    def test_dirty_inventory(self):
        cache = make_cache()
        cache.insert(0, dirty=True)
        cache.insert(1)
        cache.insert(2, dirty=True)
        assert cache.dirty_count() == 2
        assert sorted(line.addr for line in cache.dirty_lines()) == [0, 2]


class TestInspection:
    def test_occupancy(self):
        cache = make_cache(sets=4, ways=2)
        cache.insert(0)
        assert cache.occupancy() == (1, 8)

    def test_lines_by_set(self):
        cache = make_cache(sets=4, ways=2)
        cache.insert(0)
        cache.insert(4)
        cache.insert(1)
        grouped = cache.lines_by_set()
        assert sorted(grouped) == [0, 1]
        assert [line.addr for line in grouped[0]] == [0, 4]

    def test_clear(self):
        cache = make_cache()
        cache.insert(0)
        cache.pin(0)
        cache.clear()
        assert len(cache) == 0
        assert cache.pinned() == set()


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                          st.booleans()), max_size=150))
@settings(max_examples=60, deadline=None)
def test_matches_reference_lru_model(accesses):
    """Insert-with-LRU-eviction tracks a per-set reference model."""
    sets, ways = 4, 2
    cache = make_cache(sets=sets, ways=ways)
    model = {index: [] for index in range(sets)}  # MRU at end
    for addr, dirty in accesses:
        set_index = addr % sets
        if cache.lookup(addr) is None:
            victim = cache.victim_for(addr)
            if victim is not None:
                cache.remove(victim.addr)
                model[set_index].remove(victim.addr)
            cache.insert(addr, dirty=dirty)
            model[set_index].append(addr)
        else:
            model[set_index].remove(addr)
            model[set_index].append(addr)
        assert len(model[set_index]) <= ways
    for set_index, addrs in model.items():
        resident = [line.addr for line in cache.lines_by_set()
                    .get(set_index, [])]
        assert resident == addrs
