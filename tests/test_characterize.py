"""Tests for the workload characterization experiment."""

from repro.bench.characterize import (
    characterize_workload,
    experiment_characterization,
)

LINES = 64 * 1024


class TestCharacterizeWorkload:
    def test_counts_are_consistent(self):
        stats = characterize_workload("array", LINES, operations=100)
        assert stats["reads"] == 100       # one read per update
        assert stats["writes"] == 100
        assert stats["persists"] == 100
        assert stats["write_share"] == 0.5

    def test_footprint_bounded_by_structure(self):
        stats = characterize_workload("queue", LINES, operations=200)
        # header + ring slots only
        assert stats["footprint_kb"] <= (1 + 4096) * 64 / 1024

    def test_queue_more_local_than_hash(self):
        """The paper's qualitative locality ordering, quantified."""
        queue = characterize_workload("queue", LINES, operations=400)
        hash_ = characterize_workload("hash", LINES, operations=400)
        assert queue["page_locality"] > hash_["page_locality"]

    def test_hash_is_write_heavier_than_btree(self):
        hash_ = characterize_workload("hash", LINES, operations=400)
        btree = characterize_workload("btree", LINES, operations=400)
        assert hash_["write_share"] > btree["write_share"]


class TestExperimentTable:
    def test_covers_all_workloads(self):
        table = experiment_characterization("smoke")
        assert len(table.rows) == 7
        for row in table.rows:
            assert 0.0 <= row["write_share"] <= 1.0
            assert 0.0 <= row["page_locality"] <= 1.0
            assert row["instr_per_access"] > 0

    def test_cli_entry(self, capsys):
        from repro.bench.cli import main as cli_main
        assert cli_main(["--experiment", "characterize",
                         "--scale", "smoke"]) == 0
        assert "characterization" in capsys.readouterr().out
