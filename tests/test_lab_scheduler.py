"""Campaign scheduler: resume equivalence, retry/timeout/backoff,
graceful draining, sharded == serial.

Failure-path tests script outcomes through a fake runner driven by
``FakeClock``, so no real processes hang and no real time passes.
The equivalence tests execute real (tiny) cells.
"""

import json

import pytest

from repro.bench.runner import config_for_scale
from repro.errors import ConfigError
from repro.lab.clock import BackoffPolicy, FakeClock
from repro.lab.scheduler import Scheduler, find_journal, read_journals
from repro.lab.spec import bench_spec
from repro.lab.store import ResultStore
from repro.util.stats import Stats

CONFIG = config_for_scale("smoke")


def real_specs(count=4, operations=40):
    cells = [("wb", "array"), ("star", "array"),
             ("wb", "hash"), ("star", "hash")]
    return [
        bench_spec(CONFIG, scheme, workload, operations, seed=7)
        for scheme, workload in cells[:count]
    ]


def export_text(store):
    return json.dumps(store.export(), sort_keys=True)


# ----------------------------------------------------------------------
# scripted runner (no processes, no wall time)
# ----------------------------------------------------------------------
class FakeHandle:
    def __init__(self, outcome, started):
        self.outcome = outcome  # ("ok", payload)/("error", msg)/None
        self.started = started
        self.stopped = False

    def poll(self):
        return self.outcome

    def stop(self):
        self.stopped = True


class FakeRunner:
    """Pops one scripted outcome per (spec, attempt); None = hang."""

    def __init__(self, script):
        self.script = {key: list(value)
                       for key, value in script.items()}
        self.handles = []

    def start(self, spec, clock):
        outcome = self.script[spec.spec_hash].pop(0)
        handle = FakeHandle(outcome, clock.now())
        self.handles.append(handle)
        return handle


class TestBackoffPolicy:
    def test_linear_delays_grow_by_base(self):
        policy = BackoffPolicy("linear", base_s=2.0)
        assert [policy.delay(n) for n in (0, 1, 2, 3)] == \
            [0.0, 2.0, 4.0, 6.0]

    def test_exponential_delays_double_and_cap(self):
        policy = BackoffPolicy("exponential", base_s=1.0, cap_s=5.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4, 10)] == \
            [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_linear_delays_cap_too(self):
        policy = BackoffPolicy("linear", base_s=10.0, cap_s=15.0)
        assert policy.delay(2) == 15.0

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ConfigError):
            BackoffPolicy("fibonacci")
        with pytest.raises(ConfigError):
            BackoffPolicy("linear", base_s=-1.0)


class TestFailurePaths:
    def _run(self, script, specs, **kwargs):
        stats = Stats(enabled=True)
        store = ResultStore(kwargs.pop("root"), stats=stats)
        clock = FakeClock()
        scheduler = Scheduler(
            store, clock=clock, stats=stats,
            runner=FakeRunner(script), **kwargs
        )
        report = scheduler.run(specs)
        return report, stats, clock, scheduler

    def test_error_then_success_retries_with_backoff(self, tmp_path):
        spec = real_specs(count=1)[0]
        payload = {"version": 1}
        report, stats, clock, scheduler = self._run(
            {spec.spec_hash: [("error", "boom"), ("ok", payload)]},
            [spec], root=tmp_path / "lab", retries=2, backoff_s=5.0,
        )
        assert report.completed == 1 and report.failed == 0
        assert stats.get("lab.jobs.retried") == 1
        # the retry waited out the linear backoff on the fake clock
        runner = scheduler.runner
        assert (runner.handles[1].started
                - runner.handles[0].started) >= 5.0
        assert scheduler.store.get(spec).payload == payload

    def test_exponential_backoff_doubles_the_retry_gaps(self, tmp_path):
        spec = real_specs(count=1)[0]
        report, _stats, _clock, scheduler = self._run(
            {spec.spec_hash: [("error", "a"), ("error", "b"),
                              ("ok", {"version": 1})]},
            [spec], root=tmp_path / "lab", retries=2,
            backoff=BackoffPolicy("exponential", base_s=4.0),
        )
        assert report.completed == 1
        starts = [handle.started for handle in scheduler.runner.handles]
        assert starts[1] - starts[0] >= 4.0
        assert starts[2] - starts[1] >= 8.0  # second retry doubled

    def test_hung_worker_times_out_and_is_retried(self, tmp_path):
        spec = real_specs(count=1)[0]
        report, stats, _clock, scheduler = self._run(
            {spec.spec_hash: [None, ("ok", {"version": 1})]},
            [spec], root=tmp_path / "lab",
            timeout_s=1.0, retries=1, backoff_s=0.0,
        )
        assert report.completed == 1
        assert stats.get("lab.jobs.timeouts") == 1
        assert scheduler.runner.handles[0].stopped

    def test_exhausted_retries_report_a_permanent_failure(
            self, tmp_path):
        spec = real_specs(count=1)[0]
        report, stats, _clock, scheduler = self._run(
            {spec.spec_hash: [("error", "a\nboom")] * 3},
            [spec], root=tmp_path / "lab", retries=2, backoff_s=0.0,
        )
        assert report.failed == 1 and not report.ok
        assert report.failures[0]["attempts"] == 3
        assert report.failures[0]["error"] == "boom"
        assert stats.get("lab.jobs.failed") == 1
        journal = read_journals(scheduler.store)[0]
        assert journal["status"] == "failed"

    def test_stop_request_drains_inflight_and_checkpoints(
            self, tmp_path):
        specs = real_specs(count=3)
        script = {
            spec.spec_hash: [("ok", {"version": 1})] for spec in specs
        }
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "lab", stats=stats)
        scheduler = Scheduler(store, clock=FakeClock(), stats=stats,
                              runner=FakeRunner(script))

        class StopAfterFirst(FakeRunner):
            def start(inner, spec, clock):
                scheduler.request_stop()
                return FakeRunner.start(inner, spec, clock)

        scheduler.runner = StopAfterFirst(script)
        report = scheduler.run(specs, name="drained")
        # the in-flight cell committed; the rest were never launched
        assert report.completed == 1
        assert report.interrupted and report.remaining == 2
        journal = read_journals(store)[0]
        assert journal["status"] == "interrupted"
        assert find_journal(store, journal["campaign_id"][:6])


class TestResumeEquivalence:
    def test_kill_and_resume_is_bit_identical_to_serial(self, tmp_path):
        specs = real_specs()
        serial = ResultStore(tmp_path / "serial")
        Scheduler(serial).run(specs)

        stats = Stats(enabled=True)
        resumed = ResultStore(tmp_path / "resumed", stats=stats)
        first = Scheduler(resumed, stats=stats).run(specs, max_cells=2)
        assert first.interrupted and first.completed == 2
        second = Scheduler(resumed, stats=stats).run(specs)
        assert not second.interrupted

        # the resume executed only the remaining cells...
        assert second.resumed == 2 and second.completed == 2
        assert stats.get("lab.store.hits") == 2
        assert stats.get("lab.store.puts") == 4
        # ...and the merged store is indistinguishable from serial
        assert export_text(resumed) == export_text(serial)

    def test_rerunning_a_complete_campaign_computes_nothing(
            self, tmp_path):
        specs = real_specs(count=2)
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "lab", stats=stats)
        Scheduler(store, stats=stats).run(specs)
        report = Scheduler(store, stats=stats).run(specs)
        assert report.resumed == 2 and report.completed == 0
        assert stats.get("lab.store.puts") == 2

    def test_sharded_run_is_bit_identical_to_serial(self, tmp_path):
        specs = real_specs()
        serial = ResultStore(tmp_path / "serial")
        Scheduler(serial).run(specs)
        sharded = ResultStore(tmp_path / "sharded")
        report = Scheduler(sharded, jobs=2, timeout_s=120).run(specs)
        assert report.completed == len(specs) and report.ok
        assert export_text(sharded) == export_text(serial)
