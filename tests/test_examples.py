"""Smoke tests: every example script runs end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "examples must narrate what they do"


def test_example_inventory():
    """The README promises at least these examples."""
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "crash_recovery_demo", "attack_detection",
            "write_traffic_comparison", "bmt_baselines"} <= names
