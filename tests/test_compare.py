"""Tests for the star-compare result-diff tool."""

import json

from repro.tools.compare import compare_results, main


def dump(path, rows_value):
    payload = [{
        "experiment": "Fig. 11",
        "title": "t",
        "columns": ["workload", "star"],
        "rows": [{"workload": "hash", "star": rows_value}],
        "notes": [],
    }]
    path.write_text(json.dumps(payload))


class TestCompare:
    def test_identical_results_agree(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.05)
        dump(b, 1.05)
        assert main([str(a), str(b)]) == 0
        assert "agree" in capsys.readouterr().out

    def test_within_tolerance(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.000)
        dump(b, 1.005)
        assert main([str(a), str(b), "--tolerance", "0.02"]) == 0

    def test_drift_detected(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.00)
        dump(b, 1.50)
        assert main([str(a), str(b)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_structural_notes(self):
        before = {"X": {"columns": ["w"], "rows": []}}
        after = {}
        drifts, notes = compare_results(before, after, 0.02)
        assert not drifts
        assert any("disappeared" in note for note in notes)

    def test_strict_mode_fails_on_structure(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.0)
        b.write_text("[]")
        assert main([str(a), str(b)]) == 0
        assert main([str(a), str(b), "--strict"]) == 1

    def test_non_numeric_cells_ignored(self):
        row = {"workload": "hash", "star": "n/a"}
        table = {"columns": ["workload", "star"], "rows": [row]}
        drifts, _notes = compare_results({"X": table}, {"X": table},
                                         0.02)
        assert drifts == []

    def test_end_to_end_with_star_bench(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            bench_main(["--experiment", "fig14a", "--scale", "smoke",
                        "--json", str(path)])
        capsys.readouterr()
        assert main([str(a), str(b)]) == 0


class TestCompareLabStores:
    """Directory arguments are opened as star-lab result stores."""

    @staticmethod
    def _store(root, value):
        from repro.bench.runner import config_for_scale
        from repro.lab.spec import bench_spec
        from repro.lab.store import ResultStore

        store = ResultStore(root)
        config = config_for_scale("smoke")
        for index, workload in enumerate(("array", "hash")):
            spec = bench_spec(config, "star", workload, 40, seed=7)
            store.put(spec, {
                "version": 1,
                "ipc": value + index,
                "stats": {"nvm.data_writes": 100},
            })
        store.close()
        return store

    def test_identical_stores_agree(self, tmp_path, capsys):
        self._store(tmp_path / "a", 1.0)
        self._store(tmp_path / "b", 1.0)
        assert main([str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        assert "agree" in capsys.readouterr().out

    def test_drifted_payload_is_flagged_per_metric(
            self, tmp_path, capsys):
        self._store(tmp_path / "a", 1.0)
        self._store(tmp_path / "b", 2.0)
        assert main([str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "ipc" in out

    def test_hash_prefix_narrows_the_comparison(self, tmp_path):
        from repro.lab.store import ResultStore
        from repro.tools.compare import load_results

        self._store(tmp_path / "a", 1.0)
        self._store(tmp_path / "b", 2.0)
        first = ResultStore(tmp_path / "a").hashes()[0][:12]
        ref = "%s@%s" % (tmp_path / "a", first)
        other = "%s@%s" % (tmp_path / "b", first)
        assert len(load_results(ref)) == 1
        assert len(load_results(str(tmp_path / "a"))) == 2
        assert main([ref, other]) == 1
