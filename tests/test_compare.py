"""Tests for the star-compare result-diff tool."""

import json

from repro.tools.compare import compare_results, main


def dump(path, rows_value):
    payload = [{
        "experiment": "Fig. 11",
        "title": "t",
        "columns": ["workload", "star"],
        "rows": [{"workload": "hash", "star": rows_value}],
        "notes": [],
    }]
    path.write_text(json.dumps(payload))


class TestCompare:
    def test_identical_results_agree(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.05)
        dump(b, 1.05)
        assert main([str(a), str(b)]) == 0
        assert "agree" in capsys.readouterr().out

    def test_within_tolerance(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.000)
        dump(b, 1.005)
        assert main([str(a), str(b), "--tolerance", "0.02"]) == 0

    def test_drift_detected(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.00)
        dump(b, 1.50)
        assert main([str(a), str(b)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_structural_notes(self):
        before = {"X": {"columns": ["w"], "rows": []}}
        after = {}
        drifts, notes = compare_results(before, after, 0.02)
        assert not drifts
        assert any("disappeared" in note for note in notes)

    def test_strict_mode_fails_on_structure(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump(a, 1.0)
        b.write_text("[]")
        assert main([str(a), str(b)]) == 0
        assert main([str(a), str(b), "--strict"]) == 1

    def test_non_numeric_cells_ignored(self):
        row = {"workload": "hash", "star": "n/a"}
        table = {"columns": ["workload", "star"], "rows": [row]}
        drifts, _notes = compare_results({"X": table}, {"X": table},
                                         0.02)
        assert drifts == []

    def test_end_to_end_with_star_bench(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            bench_main(["--experiment", "fig14a", "--scale", "smoke",
                        "--json", str(path)])
        capsys.readouterr()
        assert main([str(a), str(b)]) == 0
