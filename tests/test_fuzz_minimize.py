"""End-to-end defect-injection test for the fuzzing oracle + minimizer.

The campaign engine's reason to exist is catching *detection* bugs —
recoveries that report success while the restored state is wrong. We
prove it end-to-end with the ``skip-root-verify`` defect: a test-only
fault injection that makes STAR recovery "forget" the cache-tree root
comparison (the paper's §III-E recovery check). Under that defect a
tampered recovery reports ``verified=True`` and only the differential
oracle (golden shadow copy of the NVM) can catch it.
"""

import pytest

from repro.fuzz import (
    CampaignSpec,
    load_artifact,
    minimize_failure,
    replay_artifact,
    run_campaign,
    run_case,
    write_artifacts,
)
from repro.fuzz.cli import main as fuzz_main

DEFECT_SPEC = CampaignSpec(
    cases=40, seed=11, schemes=["star"], attack_rate=1.0,
    defect="skip-root-verify",
)


@pytest.fixture(scope="module")
def defect_failure():
    campaign = run_campaign(DEFECT_SPEC)
    failures = [f for f in campaign.failures
                if f.signature == ("undetected-tamper",)]
    assert failures, "defect campaign produced no undetected tamper"
    return failures[0]


class TestDefectCaught:
    def test_honest_campaign_is_clean(self):
        honest = run_campaign(CampaignSpec(
            cases=12, seed=11, schemes=["star"], attack_rate=1.0,
        ))
        assert honest.ok, [f.violations for f in honest.failures]

    def test_defect_detected_as_undetected_tamper(self, defect_failure):
        assert defect_failure.tampered
        assert defect_failure.verified is True  # the lie the defect tells
        assert defect_failure.detected_by is None
        kinds = {v["kind"] for v in defect_failure.violations}
        assert kinds == {"undetected-tamper"}

    def test_failure_replays_single_process(self, defect_failure):
        rerun = run_case(defect_failure.case, defect=DEFECT_SPEC.defect)
        assert rerun.signature == defect_failure.signature


class TestMinimization:
    def test_minimize_and_replay(self, defect_failure, tmp_path):
        minimized = minimize_failure(
            defect_failure.case, defect=DEFECT_SPEC.defect,
            max_runs=150,
        )
        assert minimized is not None
        assert minimized.signature == ("undetected-tamper",)
        assert minimized.minimized_ops <= minimized.original_ops
        assert minimized.minimized_ops < 40  # actually shrank

        trace_path, meta_path = write_artifacts(minimized, tmp_path)
        assert trace_path.name.endswith(".trace.gz")
        case, ops, defect, signature = load_artifact(meta_path)
        assert case == defect_failure.case
        assert len(ops) == minimized.minimized_ops
        assert defect == DEFECT_SPEC.defect

        reproduced, observed = replay_artifact(meta_path)
        assert reproduced, observed

    def test_minimize_healthy_case_returns_none(self):
        healthy = run_campaign(CampaignSpec(cases=2, seed=1)).results[0]
        assert minimize_failure(healthy.case) is None


class TestCliDefectFlow:
    def test_run_minimize_replay_via_cli(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        artifacts = tmp_path / "artifacts"
        code = fuzz_main([
            "run", "--cases", "40", "--seed", "11",
            "--schemes", "star", "--attack-rate", "1.0",
            "--inject-defect", "skip-root-verify",
            "--corpus", str(corpus), "--artifacts", str(artifacts),
            "--quiet",
        ])
        assert code == 1  # failures found
        metas = sorted(artifacts.glob("*.json"))
        traces = sorted(artifacts.glob("*.trace.gz"))
        assert metas and traces

        # the corpus replays (defect re-applied from the header)
        assert fuzz_main(["replay", str(corpus)]) == 0
        # and so does each minimized artifact
        for meta in metas:
            assert fuzz_main(["replay", str(meta)]) == 0
