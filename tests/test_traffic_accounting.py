"""Exact NVM traffic accounting for crash -> recover.

These tests pin the read/write deltas of recovery, region by region,
against the scheme reports. Each pin corresponds to an accounting bug
this suite must keep fixed:

* STAR's recovery-area clearing used to go through the uncounted
  battery-flush path — ``nvm.ra_writes`` stayed 0 during recovery and
  ``report.nvm_writes`` omitted the clearing traffic entirely;
* Phoenix's report conflated Osiris-probed counter blocks with
  ST-reinstated tree nodes, so its stale count tracked restored-line
  volume instead of lines that actually went stale;
* recovery traffic must scale with the stale-line count (Section
  III-F / Fig. 14(b)), not with the size of the bitmap index.
"""

import pytest

from repro.config import small_config
from repro.fuzz.executor import run_case
from repro.fuzz.sampling import FuzzCase
from repro.sim.machine import Machine

from conftest import run_small_workload

REGIONS = ("data", "meta", "ra", "st")


def crash_and_recover(scheme, config=None, operations=200, seed=7):
    machine = Machine(config or small_config(), scheme=scheme)
    run_small_workload(machine, operations=operations, seed=seed)
    machine.crash()
    report = machine.recover(raise_on_failure=True)
    return machine, report


def recovery_traffic(machine):
    """Per-region (reads, writes) counted during the recovery pass."""
    stats = machine.recovery_stats
    reads = {r: stats["nvm.%s_reads" % r] for r in REGIONS}
    writes = {r: stats["nvm.%s_writes" % r] for r in REGIONS}
    return reads, writes


class TestStarDelta:
    def test_report_totals_equal_counted_traffic(self):
        machine, report = crash_and_recover("star")
        reads, writes = recovery_traffic(machine)
        assert sum(reads.values()) == report.nvm_reads
        assert sum(writes.values()) == report.nvm_writes

    def test_write_breakdown_exact(self):
        """Recovery writes: one per restored node, one per cleared
        index line — nothing else, in any region."""
        machine, report = crash_and_recover("star")
        _reads, writes = recovery_traffic(machine)
        assert report.ra_lines_cleared > 0
        assert writes == {
            "data": 0,
            "meta": report.restored_lines,
            "ra": report.ra_lines_cleared,
            "st": 0,
        }
        assert report.restored_lines == report.stale_lines

    def test_read_breakdown(self):
        machine, report = crash_and_recover("star")
        reads, _writes = recovery_traffic(machine)
        # the locate walk reads at least every line it later clears
        assert reads["ra"] >= report.ra_lines_cleared
        # reconstruction reads children (data LSBs) and node images
        assert reads["data"] > 0
        assert reads["meta"] > 0
        assert reads["st"] == 0  # STAR has no shadow table


class TestAnubisDelta:
    def test_report_totals_equal_counted_traffic(self):
        machine, report = crash_and_recover("anubis")
        reads, writes = recovery_traffic(machine)
        assert sum(reads.values()) == report.nvm_reads
        assert sum(writes.values()) == report.nvm_writes

    def test_scan_reads_the_whole_shadow_table(self):
        """Anubis scans every ST slot: read traffic pinned to the
        cache capacity regardless of how many lines went stale."""
        machine, report = crash_and_recover("anubis")
        reads, writes = recovery_traffic(machine)
        assert reads["st"] == machine.config.metadata_cache.num_lines
        assert reads["st"] > report.stale_lines
        assert reads["ra"] == 0 and reads["data"] == 0
        assert writes == {
            "data": 0,
            "meta": report.restored_lines,
            "ra": 0,
            "st": 0,
        }
        assert report.st_restored_lines == report.restored_lines


class TestPhoenixDelta:
    def test_report_totals_equal_counted_traffic(self):
        machine, report = crash_and_recover("phoenix")
        reads, writes = recovery_traffic(machine)
        assert sum(reads.values()) == report.nvm_reads
        assert sum(writes.values()) == report.nvm_writes

    def test_probe_and_st_traffic_separated(self):
        machine, report = crash_and_recover("phoenix")
        reads, writes = recovery_traffic(machine)
        # the Anubis half still scans the full ST region
        assert reads["st"] == machine.config.metadata_cache.num_lines
        # the Osiris half reads every counter block and probes its
        # children through data reads
        assert reads["meta"] >= report.probed_blocks
        assert reads["data"] > 0
        # writes: one per ST-reinstated node plus one per counter block
        # the probe found stale; fresh blocks are not rewritten
        assert writes == {
            "data": 0,
            "meta": (report.st_restored_lines
                     + report.probed_stale_lines),
            "ra": 0,
            "st": 0,
        }
        assert report.stale_lines == (
            report.st_restored_lines + report.probed_stale_lines
        )


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["star", "anubis", "phoenix"])
    def test_recovery_delta_is_reproducible(self, scheme):
        """Same config + seed -> byte-identical recovery traffic.

        This is what makes the exact pins above meaningful: any change
        to the accounting shows up as a deterministic delta, never as
        noise."""
        first_m, first_r = crash_and_recover(scheme, seed=13)
        second_m, second_r = crash_and_recover(scheme, seed=13)
        assert recovery_traffic(first_m) == recovery_traffic(second_m)
        assert first_r.nvm_reads == second_r.nvm_reads
        assert first_r.nvm_writes == second_r.nvm_writes
        assert first_r.stale_lines == second_r.stale_lines


class TestScaling:
    """Section III-F: STAR's recovery cost follows the stale count."""

    @staticmethod
    def _fixed_writes(scheme, memory_bytes):
        """The same 64-counter-block write set on a given machine size."""
        machine = Machine(small_config(memory_bytes=memory_bytes),
                          scheme=scheme)
        for line in range(0, 512, 8):
            machine.controller.write_data(line)
        machine.crash()
        return machine.recover(raise_on_failure=True)

    def test_star_traffic_independent_of_index_size(self):
        """Quadrupling memory (and the bitmap index with it) leaves
        STAR's recovery traffic at the stale-set cost: the clearing
        pass touches visited index lines, never the whole index."""
        small = self._fixed_writes("star", 1024 * 1024)
        big = self._fixed_writes("star", 4 * 1024 * 1024)
        # the deeper tree adds a handful of ancestor nodes, nothing more
        assert big.nvm_reads <= small.nvm_reads * 1.5
        assert big.nvm_writes <= small.nvm_writes * 1.5

    def test_phoenix_traffic_grows_with_memory(self):
        """The contrast: Phoenix probes every counter block, so the
        same write set costs 4x the probe reads on 4x the memory."""
        small = self._fixed_writes("phoenix", 1024 * 1024)
        big = self._fixed_writes("phoenix", 4 * 1024 * 1024)
        assert big.probed_blocks == 4 * small.probed_blocks
        assert big.nvm_reads >= 2 * small.nvm_reads

    def test_star_traffic_tracks_stale_count(self):
        """More stale lines -> proportionally more recovery traffic
        (the ~10 reads + 1 write per node of Fig. 14(b))."""
        _machine, light = crash_and_recover("star", operations=80)
        _machine, heavy = crash_and_recover("star", operations=320)
        assert heavy.stale_lines > light.stale_lines
        ratio = heavy.nvm_reads / light.nvm_reads
        stale_ratio = heavy.stale_lines / light.stale_lines
        assert ratio == pytest.approx(stale_ratio, rel=0.35)


class TestFuzzRaClearing:
    def test_star_fuzz_case_exercises_ra_clearing(self):
        """A full fuzz case (executor + oracle stack) over a trace that
        spills bitmap lines: the judged recovery must stay clean."""
        case = FuzzCase(index=0, workload="hash", scheme="star",
                        seed=7, operations=200, crash_frac=1.0,
                        prepare_frac=0.5)
        result = run_case(case)
        assert not result.failed, result.violations
        assert result.verified
        assert result.stale_lines > 0

    def test_tiny_adr_budget_forces_counted_clearing(self):
        """One ADR line: the LRU spills on nearly every bitmap-line
        access, so recovery must find (and clear) spilled lines in the
        recovery area through the counted path."""
        config = small_config(adr_bitmap_lines=1)
        machine = Machine(config, scheme="star")
        run_small_workload(machine, operations=200, seed=7)
        assert machine.stats["adr.spills"] > 0
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)
        assert report.ra_lines_cleared > 0
        assert machine.recovery_stats["nvm.ra_writes"] == \
            report.ra_lines_cleared
        index = machine.scheme.bitmap.index
        for key in index.all_lines():
            if not index.is_on_chip(key[0]):
                assert machine.nvm.peek_ra(key) == 0
