"""Tests for the SVG chart renderer."""

import xml.dom.minidom

from repro.bench.svgchart import numeric_columns, render_svg, save_svg
from repro.bench.tables import ExperimentTable


def sample_table() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="Fig. T", title="demo & <chart>",
        columns=["workload", "wb", "star", "note"],
    )
    table.add_row(workload="array", wb=1.0, star=1.1, note="x")
    table.add_row(workload="hash", wb=1.0, star=1.4, note="y")
    table.add_row(workload="gmean", wb="", star="", note="")
    return table


class TestRenderSvg:
    def test_valid_xml(self):
        document = xml.dom.minidom.parseString(
            render_svg(sample_table())
        )
        assert document.documentElement.tagName == "svg"

    def test_escapes_title(self):
        svg = render_svg(sample_table())
        assert "&amp;" in svg and "&lt;chart&gt;" in svg

    def test_one_bar_per_numeric_cell(self):
        svg = render_svg(sample_table())
        # 2 numeric rows x 2 numeric columns + 2 legend swatches
        assert svg.count("<rect") == 2 * 2 + 2

    def test_numeric_columns_detected(self):
        assert numeric_columns(sample_table()) == ["wb", "star"]

    def test_non_numeric_rows_skipped(self):
        svg = render_svg(sample_table())
        assert "gmean" not in svg

    def test_empty_table_placeholder(self):
        table = ExperimentTable("F", "t", ["a", "b"])
        assert "no numeric data" in render_svg(table)

    def test_save_svg(self, tmp_path):
        path = tmp_path / "chart.svg"
        save_svg(sample_table(), str(path))
        xml.dom.minidom.parse(str(path))

    def test_cli_svg_flag(self, tmp_path, capsys):
        from repro.bench.cli import main as cli_main
        out_dir = tmp_path / "charts"
        assert cli_main([
            "--experiment", "fig14a", "--scale", "smoke",
            "--svg", str(out_dir),
        ]) == 0
        files = list(out_dir.glob("*.svg"))
        assert len(files) == 1
        xml.dom.minidom.parse(str(files[0]))
