"""Unit + property tests for node/data line images and cached nodes."""

import pytest
from hypothesis import given, strategies as st

from repro.config import COUNTER_BITS, LSB_BITS, MAC_BITS, TREE_ARITY
from repro.tree.node import (
    CachedNode,
    DataLineImage,
    NodeImage,
    pack_mac_field,
    unpack_mac_field,
)


class TestMacField:
    @given(st.integers(min_value=0, max_value=(1 << MAC_BITS) - 1),
           st.integers(min_value=0, max_value=(1 << LSB_BITS) - 1))
    def test_pack_unpack_roundtrip(self, mac, lsbs):
        assert unpack_mac_field(pack_mac_field(mac, lsbs)) == (mac, lsbs)

    def test_field_is_64_bits(self):
        field = pack_mac_field((1 << MAC_BITS) - 1, (1 << LSB_BITS) - 1)
        assert field == (1 << 64) - 1

    def test_pack_rejects_wide_mac(self):
        with pytest.raises(ValueError):
            pack_mac_field(1 << MAC_BITS, 0)

    def test_unpack_rejects_wide_field(self):
        with pytest.raises(ValueError):
            unpack_mac_field(1 << 64)


class TestNodeImage:
    def test_zero(self):
        image = NodeImage.zero()
        assert image.counters == (0,) * TREE_ARITY
        assert image.mac == 0
        assert image.lsbs == 0

    def test_rejects_wrong_counter_count(self):
        with pytest.raises(ValueError):
            NodeImage(counters=(0,) * 7, mac=0, lsbs=0)

    def test_rejects_wide_counter(self):
        with pytest.raises(ValueError):
            NodeImage(counters=(1 << COUNTER_BITS,) + (0,) * 7,
                      mac=0, lsbs=0)

    def test_rejects_wide_mac(self):
        with pytest.raises(ValueError):
            NodeImage(counters=(0,) * 8, mac=1 << MAC_BITS, lsbs=0)

    def test_with_lsbs(self):
        image = NodeImage.zero().with_lsbs(5)
        assert image.lsbs == 5

    def test_mac_field_combines(self):
        image = NodeImage(counters=(0,) * 8, mac=3, lsbs=1)
        assert image.mac_field == (3 << LSB_BITS) | 1


class TestDataLineImage:
    def test_accepts_valid(self):
        image = DataLineImage(ciphertext=b"x" * 64, mac=1, lsbs=2)
        assert image.mac_field == (1 << LSB_BITS) | 2

    def test_rejects_wide_lsbs(self):
        with pytest.raises(ValueError):
            DataLineImage(ciphertext=b"", mac=0, lsbs=1 << LSB_BITS)


class TestCachedNode:
    def test_from_image_copies_counters(self):
        image = NodeImage(counters=tuple(range(8)), mac=0, lsbs=0)
        node = CachedNode.from_image(image)
        assert node.counters == list(range(8))
        assert node.persisted_counters == list(range(8))

    def test_increment(self):
        node = CachedNode.zero()
        assert node.increment(3) == 1
        assert node.counters[3] == 1
        assert node.persisted_counters[3] == 0

    def test_increment_bad_slot(self):
        with pytest.raises(ValueError):
            CachedNode.zero().increment(8)

    def test_drift_tracks_unpersisted_increments(self):
        node = CachedNode.zero()
        node.increment(0)
        node.increment(0)
        node.increment(5)
        assert node.drift(0) == 2
        assert node.drift(5) == 1
        assert node.max_drift() == 2

    def test_mark_persisted_resets_drift(self):
        node = CachedNode.zero()
        node.increment(2)
        node.mark_persisted()
        assert node.drift(2) == 0
        assert node.max_drift() == 0

    def test_snapshot_is_immutable_copy(self):
        node = CachedNode.zero()
        snap = node.snapshot()
        node.increment(0)
        assert snap == (0,) * 8

    def test_equality_by_counters(self):
        a, b = CachedNode.zero(), CachedNode.zero()
        assert a == b
        a.increment(1)
        assert a != b
