"""Feature-combination integration matrix.

The optional layers (bank-level device timing, start-gap wear leveling,
threaded traces) must compose with every scheme without perturbing
correctness: traffic identical where expected, invariants intact,
crash-recovery exact.
"""

from dataclasses import replace

import pytest

from repro.config import small_config
from repro.mem.wearlevel import WearLevelingNVM
from repro.sim.machine import Machine
from repro.sim.validate import audit_machine
from repro.workloads.registry import make_threaded_trace, make_workload

SCHEMES = ["wb", "strict", "anubis", "star", "phoenix"]


def build_machine(scheme, device=False, wear_level=0):
    config = small_config()
    if device:
        config = replace(config, device_timing=True)
    nvm = None
    if wear_level:
        nvm = WearLevelingNVM(config.num_data_lines, wear_level)
    return Machine(config, scheme=scheme, nvm=nvm)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("device", [False, True])
def test_every_scheme_runs_under_every_timing_model(scheme, device):
    machine = build_machine(scheme, device=device)
    workload = make_workload("ycsb", machine.config.num_data_lines,
                             operations=100, seed=3)
    machine.run(workload.ops())
    assert machine.timing.ipc > 0
    assert audit_machine(machine) == []


@pytest.mark.parametrize("scheme", ["star", "anubis", "phoenix"])
def test_recovery_composes_with_device_and_wear_leveling(scheme):
    machine = build_machine(scheme, device=True, wear_level=64)
    trace = make_threaded_trace(
        "hash", machine.config.num_data_lines, threads=2,
        operations=60, seed=5,
    )
    machine.run(trace)
    machine.crash()
    report = machine.recover()
    assert machine.oracle_check(report), (
        "%s recovery broke under device timing + wear leveling" % scheme
    )


def test_wear_leveling_does_not_change_logical_traffic_counts():
    plain = build_machine("star")
    leveled = build_machine("star", wear_level=32)
    for machine in (plain, leveled):
        workload = make_workload("array", machine.config.num_data_lines,
                                 operations=120, seed=1)
        machine.run(workload.ops())
    # gap-move migrations add device traffic, but the controller-level
    # counts (data writes issued) are identical
    assert plain.stats["ctrl.data_writes"] == \
        leveled.stats["ctrl.data_writes"]
    assert leveled.stats["wearlevel.gap_moves"] > 0
