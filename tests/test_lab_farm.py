"""Farm coordinator + workers: churned N-worker == serial.

The acceptance property is byte-equivalence: however many workers, how
ever they die, the merged authoritative store exports exactly what a
serial ``Scheduler`` run over the same specs exports. Churn is driven
on a shared ``FakeClock`` (worker idle sleeps advance the same clock
lease deadlines are checked against), so steal scenarios run
deterministically in microseconds.
"""

import json

from repro.bench.runner import config_for_scale
from repro.lab.clock import FakeClock
from repro.lab.farm import (
    Coordinator,
    Worker,
    board_path,
    telemetry_dir,
    worker_store_path,
)
from repro.lab.lease import LeaseBoard
from repro.lab.scheduler import Scheduler, read_journals
from repro.lab.spec import bench_spec
from repro.lab.store import ResultStore
from repro.obs import catalog
from repro.obs.live import aggregate_heartbeats
from repro.util.stats import Stats

CONFIG = config_for_scale("smoke")


def make_specs(count=4, operations=40):
    cells = [("wb", "array"), ("star", "array"),
             ("wb", "hash"), ("star", "hash")]
    return [
        bench_spec(CONFIG, scheme, workload, operations, seed=7)
        for scheme, workload in cells[:count]
    ]


def export_text(store):
    return json.dumps(store.export(), sort_keys=True)


def serial_export(tmp_path, specs):
    store = ResultStore(tmp_path / "serial")
    Scheduler(store).run(specs)
    return export_text(store)


def make_farm(tmp_path, clock=None, **kwargs):
    stats = Stats(enabled=True)
    store = ResultStore(tmp_path / "auth", stats=stats)
    coordinator = Coordinator(store, tmp_path / "farm",
                              clock=clock or FakeClock(),
                              stats=stats, **kwargs)
    return coordinator, store, stats


class TestFarmEquivalence:
    def test_single_worker_farm_matches_serial(self, tmp_path):
        specs = make_specs()
        reference = serial_export(tmp_path, specs)
        coordinator, store, _stats = make_farm(tmp_path)
        coordinator.prepare(specs, name="farm")
        Worker(tmp_path / "farm", "w1", clock=FakeClock()).run()
        report = coordinator.run(specs, name="farm", max_wall_s=60)
        assert report.ok and report.completed == len(specs)
        assert export_text(store) == reference
        coordinator.close()

    def test_two_worker_split_matches_serial(self, tmp_path):
        specs = make_specs()
        reference = serial_export(tmp_path, specs)
        coordinator, store, _stats = make_farm(tmp_path)
        coordinator.prepare(specs, name="farm")
        # each pool takes half the board, one batch at a time
        first = Worker(tmp_path / "farm", "w1", clock=FakeClock(),
                       batch=2, max_batches=1).run()
        second = Worker(tmp_path / "farm", "w2", clock=FakeClock(),
                        batch=2, max_batches=1).run()
        assert first["done"] == 2 and second["done"] == 2
        coordinator.run(specs, name="farm", max_wall_s=60)
        assert export_text(store) == reference
        # both pools shipped into their own stores
        assert len(ResultStore(
            worker_store_path(tmp_path / "farm", "w1"))) == 2
        assert len(ResultStore(
            worker_store_path(tmp_path / "farm", "w2"))) == 2
        coordinator.close()

    def test_stored_cells_are_settled_not_recomputed(self, tmp_path):
        specs = make_specs()
        coordinator, store, _stats = make_farm(tmp_path)
        Scheduler(store).run(specs[:2])  # pre-store half
        report = coordinator.prepare(specs, name="farm")
        assert report.resumed == 2
        summary = Worker(tmp_path / "farm", "w1",
                         clock=FakeClock()).run()
        assert summary["done"] == 2  # only the missing half executed
        coordinator.close()


class TestChurn:
    def test_dead_worker_cells_are_stolen_and_export_matches(
            self, tmp_path):
        """A worker claims cells then vanishes (kill -9); a survivor
        sharing the clock steals them once the deadlines pass."""
        specs = make_specs()
        reference = serial_export(tmp_path, specs)
        clock = FakeClock()
        coordinator, store, _stats = make_farm(tmp_path, clock=clock)
        coordinator.prepare(specs, name="churn")

        board = LeaseBoard(board_path(tmp_path / "farm"), clock=clock)
        victim = board.claim("victim", lease_s=5.0, limit=2)
        assert len(victim) == 2  # ...and the victim never returns

        survivor_stats = Stats(enabled=True)
        summary = Worker(tmp_path / "farm", "survivor", clock=clock,
                         stats=survivor_stats, lease_s=5.0).run()
        assert summary["done"] == len(specs)
        assert summary["stolen"] == 2
        assert survivor_stats.get("lab.farm.leases_stolen") == 2

        coordinator.run(specs, name="churn", max_wall_s=60)
        assert export_text(store) == reference
        board.close()
        coordinator.close()

    def test_zombie_completion_is_fenced_and_merge_dedups(
            self, tmp_path):
        """The zombie computed its cell but lost the lease: its
        completion is rejected, yet its store merges harmlessly
        because the thief's payload is byte-identical."""
        specs = make_specs(1)
        reference = serial_export(tmp_path, specs)
        clock = FakeClock()
        coordinator, store, _stats = make_farm(tmp_path, clock=clock)
        coordinator.prepare(specs, name="fence")

        board = LeaseBoard(board_path(tmp_path / "farm"), clock=clock)
        (lease,) = board.claim("zombie", lease_s=5.0)
        zombie_store = ResultStore(
            worker_store_path(tmp_path / "farm", "zombie"))
        Scheduler(zombie_store, clock=clock).run(specs)  # slow compute
        clock.advance(6.0)  # ...past the deadline

        Worker(tmp_path / "farm", "thief", clock=clock,
               lease_s=5.0).run()
        assert not board.complete("zombie", lease.spec_hash,
                                  lease.fence)
        report = coordinator.run(specs, name="fence", max_wall_s=60)
        assert report.ok
        assert export_text(store) == reference
        board.close()
        coordinator.close()


class TestFailurePaths:
    def test_persistent_failure_is_terminal_across_workers(
            self, tmp_path):
        """A cell that errors on every attempt exhausts the
        cross-worker budget and the campaign reports it failed."""
        from test_lab_scheduler import FakeRunner

        specs = make_specs(1)
        clock = FakeClock()
        coordinator, _store, _stats = make_farm(tmp_path, clock=clock)
        coordinator.prepare(specs, name="failing")

        script = {specs[0].spec_hash: [("error", "boom")] * 2}
        summary = Worker(
            tmp_path / "farm", "w1", clock=clock,
            retries=0, max_attempts=2, runner=FakeRunner(script),
        ).run()
        assert summary["failed"] == 1 and summary["done"] == 0

        report = coordinator.run(specs, name="failing", max_wall_s=60)
        assert report.failed == 1 and not report.ok
        assert report.failures[0]["error"] == "boom"
        journal = read_journals(coordinator.store)[0]
        assert journal["status"] == "failed"
        coordinator.close()


class TestObservability:
    def test_heartbeats_cover_coordinator_and_workers(self, tmp_path):
        specs = make_specs(2)
        clock = FakeClock()
        coordinator, _store, stats = make_farm(tmp_path, clock=clock)
        coordinator.prepare(specs, name="obs")
        Worker(tmp_path / "farm", "w1", clock=FakeClock()).run()
        coordinator.run(specs, name="obs", max_wall_s=60)

        aggregate = aggregate_heartbeats(
            telemetry_dir(tmp_path / "farm"),
            now_wall=clock.wall(), stale_after_s=1e9,
        )
        names = sorted(view.worker for view in aggregate.workers)
        assert names == ["coordinator", "w1"]
        assert aggregate.corrupt == 0
        # the merged registry carries the farm's claim counters
        merged = dict(aggregate.registry.counters())
        assert merged.get("lab.farm.leases_claimed") == 2
        coordinator.close()

    def test_every_emitted_farm_metric_is_catalogued(self, tmp_path):
        specs = make_specs(2)
        coordinator, _store, stats = make_farm(tmp_path)
        coordinator.prepare(specs, name="cat")
        worker_stats = Stats(enabled=True)
        Worker(tmp_path / "farm", "w1", clock=FakeClock(),
               stats=worker_stats).run()
        coordinator.run(specs, name="cat", max_wall_s=60)
        emitted = (
            [name for name, _ in stats.registry.counters()]
            + [name for name, _ in stats.registry.gauges()]
            + [name for name, _ in worker_stats.registry.counters()]
            + [name for name, _ in worker_stats.registry.gauges()]
        )
        farm_names = sorted(
            name for name in emitted if name.startswith("lab.farm.")
        )
        assert farm_names  # the farm plane actually emitted
        for name in farm_names:
            assert catalog.lookup(name) is not None, name
        coordinator.close()
