"""Cross-process determinism of workload generation.

The fuzzer's replay contract rests on every workload producing a
byte-identical trace for a fixed seed regardless of which process
generates it. A spawn-started child has fresh interpreter state (no
inherited hash seed effects, no module-level RNG reuse), so comparing
its trace bytes against the parent's catches any hidden process-local
nondeterminism.
"""

import multiprocessing

from repro.fuzz import CampaignSpec, materialize_trace, sample_cases
from repro.workloads.capture import format_op
from repro.workloads.registry import ALL_WORKLOADS, make_workload

NUM_LINES = 1 << 13
OPERATIONS = 120
SEED = 97


def _render(name):
    workload = make_workload(name, NUM_LINES, operations=OPERATIONS,
                             seed=SEED)
    return "\n".join(format_op(op) for op in workload.ops())


def _render_case(case_dict):
    from repro.fuzz.sampling import FuzzCase

    ops = materialize_trace(FuzzCase.from_dict(case_dict))
    return "\n".join(format_op(op) for op in ops)


class TestCrossProcessDeterminism:
    def test_every_workload_identical_in_spawned_child(self):
        parent = {name: _render(name) for name in ALL_WORKLOADS}
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=2) as pool:
            child = dict(zip(ALL_WORKLOADS,
                             pool.map(_render, ALL_WORKLOADS)))
        assert child == parent

    def test_fuzz_case_traces_identical_in_spawned_child(self):
        cases = sample_cases(CampaignSpec(cases=6, seed=13))
        payloads = [case.to_dict() for case in cases]
        parent = [_render_case(payload) for payload in payloads]
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=2) as pool:
            child = pool.map(_render_case, payloads)
        assert child == parent
