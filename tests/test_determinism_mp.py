"""Cross-process determinism of workload generation.

The fuzzer's replay contract rests on every workload producing a
byte-identical trace for a fixed seed regardless of which process
generates it. A spawn-started child has fresh interpreter state (no
inherited hash seed effects, no module-level RNG reuse), so comparing
its trace bytes against the parent's catches any hidden process-local
nondeterminism.
"""

import multiprocessing

from repro.fuzz import CampaignSpec, materialize_trace, sample_cases
from repro.workloads.capture import format_op
from repro.workloads.registry import ALL_WORKLOADS, make_workload

NUM_LINES = 1 << 13
OPERATIONS = 120
SEED = 97


def _render(name):
    workload = make_workload(name, NUM_LINES, operations=OPERATIONS,
                             seed=SEED)
    return "\n".join(format_op(op) for op in workload.ops())


def _render_case(case_dict):
    from repro.fuzz.sampling import FuzzCase

    ops = materialize_trace(FuzzCase.from_dict(case_dict))
    return "\n".join(format_op(op) for op in ops)


def _lab_spec_hashes(_index=0):
    from repro.bench.runner import config_for_scale
    from repro.lab.spec import bench_spec

    config = config_for_scale("smoke")
    return [
        bench_spec(config, scheme, workload, OPERATIONS,
                   seed=SEED).spec_hash
        for scheme in ("wb", "anubis", "star")
        for workload in ("array", "hash")
    ]


class TestCrossProcessDeterminism:
    def test_every_workload_identical_in_spawned_child(self):
        parent = {name: _render(name) for name in ALL_WORKLOADS}
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=2) as pool:
            child = dict(zip(ALL_WORKLOADS,
                             pool.map(_render, ALL_WORKLOADS)))
        assert child == parent

    def test_fuzz_case_traces_identical_in_spawned_child(self):
        cases = sample_cases(CampaignSpec(cases=6, seed=13))
        payloads = [case.to_dict() for case in cases]
        parent = [_render_case(payload) for payload in payloads]
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=2) as pool:
            child = pool.map(_render_case, payloads)
        assert child == parent

    def test_lab_spec_hashes_identical_in_spawned_child(self):
        # the lab store is content-addressed by these hashes, so two
        # shards (or two sittings of a resumed campaign) must agree on
        # every cell key
        parent = _lab_spec_hashes()
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=2) as pool:
            children = pool.map(_lab_spec_hashes, range(2))
        assert all(child == parent for child in children)
