"""Lease board: claim/steal/fence lifecycle under a FakeClock.

Every scenario here is a distilled farm failure mode: expiry exactly
at the deadline, a zombie worker coming back after its cell was
stolen, a coordinator restarting over a half-finished board, a worker
SIGKILLed mid-cell (modelled as a claim that is simply never renewed
or settled).
"""

import pytest

from repro.bench.runner import config_for_scale
from repro.errors import ConfigError
from repro.lab.clock import BackoffPolicy, FakeClock
from repro.lab.lease import LeaseBoard
from repro.lab.spec import bench_spec

CONFIG = config_for_scale("smoke")


def make_specs(count=4, operations=40):
    cells = [("wb", "array"), ("star", "array"),
             ("wb", "hash"), ("star", "hash")]
    return [
        bench_spec(CONFIG, scheme, workload, operations, seed=7)
        for scheme, workload in cells[:count]
    ]


def make_board(tmp_path, clock=None):
    return LeaseBoard(tmp_path / "leases.sqlite",
                      clock=clock or FakeClock())


class TestSeeding:
    def test_seed_is_idempotent(self, tmp_path):
        specs = make_specs(3)
        board = make_board(tmp_path)
        assert board.seed(specs) == 3
        assert board.seed(specs) == 0
        assert board.counts()["pending"] == 3

    def test_reseed_does_not_reset_inflight_leases(self, tmp_path):
        specs = make_specs(2)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        (lease,) = board.claim("w1", lease_s=60.0)
        board.seed(specs)  # a restarted coordinator re-adopts
        rows = {row["spec_hash"]: row for row in board.rows()}
        row = rows[lease.spec_hash]
        assert row["state"] == "leased"
        assert row["owner"] == "w1"
        assert row["fence"] == lease.fence

    def test_settle_finishes_a_cell_without_execution(self, tmp_path):
        specs = make_specs(1)
        board = make_board(tmp_path)
        board.seed(specs)
        assert board.settle(specs[0].spec_hash)
        assert not board.settle(specs[0].spec_hash)  # already done
        assert board.finished()

    def test_settle_is_transactional(self, tmp_path):
        """settle participates in the board's BEGIN IMMEDIATE
        discipline: it waits for a concurrent writer's transaction
        (instead of interleaving mid-transaction), commits its own
        (a peer connection sees the row), and leaves no transaction
        open behind it (the next board method can BEGIN again)."""
        import sqlite3

        specs = make_specs(2)
        board = make_board(tmp_path)
        board.seed(specs)

        # a peer process holding the write lock blocks settle
        peer = LeaseBoard(tmp_path / "leases.sqlite",
                          clock=FakeClock(), busy_timeout_s=0.05)
        board._begin()
        try:
            import pytest
            with pytest.raises(sqlite3.OperationalError):
                peer.settle(specs[0].spec_hash)
        finally:
            board._conn.execute("ROLLBACK")

        # settle commits durably: the peer connection sees it...
        assert board.settle(specs[0].spec_hash)
        assert peer.counts()["done"] == 1
        # ...and leaves no transaction open on its own connection
        (lease,) = board.claim("w1", lease_s=60.0)
        assert lease.spec_hash == specs[1].spec_hash
        peer.close()


class TestClaiming:
    def test_claims_come_in_spec_hash_order(self, tmp_path):
        specs = make_specs(4)
        board = make_board(tmp_path)
        board.seed(specs)
        leases = board.claim("w1", lease_s=60.0, limit=4)
        hashes = [lease.spec_hash for lease in leases]
        assert hashes == sorted(spec.spec_hash for spec in specs)

    def test_claimed_cells_are_invisible_to_peers(self, tmp_path):
        specs = make_specs(2)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        assert len(board.claim("w1", lease_s=60.0, limit=2)) == 2
        assert board.claim("w2", lease_s=60.0, limit=2) == []

    def test_expiry_exactly_at_the_deadline_is_claimable(
            self, tmp_path):
        specs = make_specs(1)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        board.claim("w1", lease_s=10.0)
        clock.advance(10.0 - 1e-9)
        assert board.claim("w2", lease_s=10.0) == []
        clock.advance(1e-9)  # now == deadline: inclusive expiry
        (stolen,) = board.claim("w2", lease_s=10.0)
        assert stolen.stolen

    def test_steal_bumps_the_fence_and_flags_the_lease(self, tmp_path):
        specs = make_specs(1)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        (original,) = board.claim("w1", lease_s=5.0)
        clock.advance(6.0)
        (stolen,) = board.claim("w2", lease_s=5.0)
        assert stolen.stolen and not original.stolen
        assert stolen.fence == original.fence + 1

    def test_reclaim_by_the_same_owner_is_not_a_steal(self, tmp_path):
        specs = make_specs(1)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        board.claim("w1", lease_s=5.0)
        clock.advance(6.0)
        (again,) = board.claim("w1", lease_s=5.0)
        assert not again.stolen  # own expired lease, not theft


class TestClaimHardening:
    """Bad claim inputs fail loudly instead of seeding bad deadlines."""

    @pytest.mark.parametrize("lease_s", [0.0, -1.0, -0.001])
    def test_non_positive_lease_is_rejected(self, tmp_path, lease_s):
        board = make_board(tmp_path)
        board.seed(make_specs(1))
        with pytest.raises(ConfigError, match="lease_s"):
            board.claim("w1", lease_s=lease_s)
        # nothing was claimed, nothing was fenced
        assert board.counts()["pending"] == 1

    @pytest.mark.parametrize("limit", [0, -1, -7])
    def test_non_positive_batch_is_rejected(self, tmp_path, limit):
        board = make_board(tmp_path)
        board.seed(make_specs(1))
        with pytest.raises(ConfigError, match="batch"):
            board.claim("w1", lease_s=60.0, limit=limit)
        assert board.counts()["pending"] == 1

    def test_lease_row_reads_back_one_cell(self, tmp_path):
        board = make_board(tmp_path)
        specs = make_specs(1)
        board.seed(specs)
        (lease,) = board.claim("w1", lease_s=60.0)
        row = board.lease_row(lease.spec_hash)
        assert row is not None
        assert row["state"] == "leased" and row["owner"] == "w1"
        assert row["fence"] == lease.fence
        assert board.lease_row("no-such-hash") is None


class TestFencing:
    def test_stale_fence_cannot_complete_a_stolen_cell(self, tmp_path):
        specs = make_specs(1)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        (original,) = board.claim("w1", lease_s=5.0)
        clock.advance(6.0)
        (stolen,) = board.claim("w2", lease_s=5.0)
        # the zombie comes back with its dead token
        assert not board.complete("w1", original.spec_hash,
                                  original.fence)
        assert not board.renew("w1", original.spec_hash,
                               original.fence, 5.0)
        assert board.fail("w1", original.spec_hash, original.fence,
                          "late") == "stale"
        # the thief's token still works
        assert board.complete("w2", stolen.spec_hash, stolen.fence)
        assert board.finished()

    def test_renew_extends_the_deadline(self, tmp_path):
        specs = make_specs(1)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        (lease,) = board.claim("w1", lease_s=10.0)
        clock.advance(8.0)
        assert board.renew("w1", lease.spec_hash, lease.fence, 10.0)
        clock.advance(8.0)  # past the original deadline, not the renewed
        assert board.claim("w2", lease_s=10.0) == []

    def test_complete_after_settle_is_rejected(self, tmp_path):
        specs = make_specs(1)
        board = make_board(tmp_path)
        board.seed(specs)
        (lease,) = board.claim("w1", lease_s=60.0)
        board.settle(lease.spec_hash)  # coordinator found it stored
        assert not board.complete("w1", lease.spec_hash, lease.fence)


class TestFailures:
    def test_fail_requeues_with_backoff_until_exhausted(self, tmp_path):
        specs = make_specs(1)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        policy = BackoffPolicy("exponential", base_s=4.0)

        (lease,) = board.claim("w1", lease_s=60.0)
        assert board.fail("w1", lease.spec_hash, lease.fence, "boom",
                          max_attempts=3, backoff=policy) == "requeued"
        # not claimable until the backoff delay passes
        assert board.claim("w1", lease_s=60.0) == []
        clock.advance(4.0)
        (lease,) = board.claim("w1", lease_s=60.0)
        assert lease.attempts == 1
        assert board.fail("w1", lease.spec_hash, lease.fence, "boom",
                          max_attempts=3, backoff=policy) == "requeued"
        clock.advance(8.0)  # exponential: second delay doubles
        (lease,) = board.claim("w2", lease_s=60.0)
        assert board.fail("w2", lease.spec_hash, lease.fence, "boom",
                          max_attempts=3, backoff=policy) == "failed"
        assert board.finished()
        (failure,) = board.failures()
        assert failure["attempts"] == 3
        assert failure["error"] == "boom"

    def test_requeue_forces_done_cells_back_and_fences_out_owners(
            self, tmp_path):
        specs = make_specs(1)
        board = make_board(tmp_path)
        board.seed(specs)
        (lease,) = board.claim("w1", lease_s=60.0)
        board.complete("w1", lease.spec_hash, lease.fence)
        assert board.requeue([lease.spec_hash]) == 1
        assert board.counts()["pending"] == 1
        # the old completion token is dead after the forced requeue
        assert not board.complete("w1", lease.spec_hash, lease.fence)


class TestKillNine:
    def test_sigkilled_worker_cells_are_stolen_and_finished(
            self, tmp_path):
        """kill -9 mid-cell == a lease that is never renewed/settled."""
        specs = make_specs(3)
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.seed(specs)
        victim = board.claim("victim", lease_s=5.0, limit=2)
        assert len(victim) == 2  # ...and then the process vanishes

        (first,) = board.claim("survivor", lease_s=5.0)
        board.complete("survivor", first.spec_hash, first.fence)
        clock.advance(5.0)  # victim's deadlines pass
        stolen = board.claim("survivor", lease_s=5.0, limit=4)
        assert [lease.stolen for lease in stolen] == [True, True]
        for lease in stolen:
            assert board.complete("survivor", lease.spec_hash,
                                  lease.fence)
        assert board.finished()
        assert board.counts()["done"] == 3
