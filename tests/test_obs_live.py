"""Tests for the live observability plane (repro.obs.live, star-top).

Covers the ISSUE acceptance points: atomic heartbeat publication and
throttling, corrupt-snapshot tolerance, registry snapshot round-trips,
parent-side aggregation (including equivalence with a serial run's
registry), scheduler journal checkpoints and the throughput/ETA
derivation behind ``star-lab status``, the ``star-top`` status
assembly and its read-only HTTP endpoint, and the label-value
escape/unescape round-trip pin.
"""

import json
import urllib.request

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.runner import config_for_scale
from repro.fuzz.executor import run_campaign
from repro.fuzz.sampling import CampaignSpec
from repro.lab.cli import main as lab_main
from repro.lab.clock import FakeClock
from repro.lab.scheduler import Scheduler, checkpoint_rates
from repro.lab.spec import bench_spec
from repro.lab.store import ResultStore
from repro.obs.catalog import lookup
from repro.obs.export import (
    _unescape_label_value,
    escape_label_value,
    parse_prometheus_text,
)
from repro.obs.live import (
    HeartbeatWriter,
    aggregate_heartbeats,
    read_heartbeats,
    registry_from_snapshot,
    registry_snapshot,
    scan_heartbeats,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.top import build_status, render_dashboard, serve
from repro.util.stats import Stats


def sample_registry():
    registry = MetricRegistry(enabled=True)
    registry.counter("fuzz.cases").value = 7
    registry.counter("fuzz.failures").value = 2
    registry.gauge("nvm.data_lines_touched").set(5.0)
    registry.gauge("nvm.data_lines_touched").set(3.0)
    registry.histogram("wpq.occupancy").observe(4)
    registry.histogram("wpq.occupancy").observe(900)
    return registry


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestRegistrySnapshot:
    def test_round_trip_preserves_instruments(self):
        registry = sample_registry()
        clone = registry_from_snapshot(registry_snapshot(registry))
        assert dict(clone.counters()) == dict(registry.counters())
        assert {n: (g.value, g.high) for n, g in clone.gauges()} == {
            n: (g.value, g.high) for n, g in registry.gauges()
        }
        assert {n: h.to_dict() for n, h in clone.histograms()} == {
            n: h.to_dict() for n, h in registry.histograms()
        }

    def test_round_trip_survives_json(self):
        registry = sample_registry()
        payload = json.loads(json.dumps(registry_snapshot(registry)))
        clone = registry_from_snapshot(payload)
        assert dict(clone.counters()) == dict(registry.counters())


# ----------------------------------------------------------------------
# heartbeat writing / reading
# ----------------------------------------------------------------------
class TestHeartbeatWriter:
    def test_writes_heartbeat_and_metrics(self, tmp_path):
        clock = FakeClock(start=100.0)
        writer = HeartbeatWriter(tmp_path, "w0", clock=clock,
                                 interval_s=0.0)
        assert writer.write(registry=sample_registry(),
                            progress={"cases": 3})
        snapshots = read_heartbeats(tmp_path)
        assert len(snapshots) == 1
        beat = snapshots[0]
        assert beat["worker"] == "w0"
        assert beat["seq"] == 0
        assert beat["wall_s"] == 100.0
        assert beat["progress"] == {"cases": 3}
        assert beat["metrics"]["counters"]["fuzz.cases"] == 7

    def test_latest_snapshot_replaces_previous(self, tmp_path):
        clock = FakeClock()
        writer = HeartbeatWriter(tmp_path, "w0", clock=clock,
                                 interval_s=0.0)
        writer.write(progress={"cases": 1})
        writer.write(progress={"cases": 2})
        snapshots = read_heartbeats(tmp_path)
        assert len(snapshots) == 1
        assert snapshots[0]["seq"] == 1
        assert snapshots[0]["progress"] == {"cases": 2}

    def test_throttles_within_interval(self, tmp_path):
        clock = FakeClock()
        writer = HeartbeatWriter(tmp_path, "w0", clock=clock,
                                 interval_s=1.0)
        assert writer.write()
        assert not writer.write()          # same instant: throttled
        clock.advance(0.5)
        assert not writer.write()          # still inside the interval
        assert writer.write(force=True)    # force bypasses
        clock.advance(1.5)
        assert writer.write()

    def test_counts_heartbeats_when_stats_supplied(self, tmp_path):
        stats = Stats()
        writer = HeartbeatWriter(tmp_path, "w0", clock=FakeClock(),
                                 interval_s=0.0, stats=stats)
        writer.write()
        writer.write()
        assert stats.get("live.heartbeats_written") == 2

    def test_corrupt_files_are_skipped(self, tmp_path):
        HeartbeatWriter(tmp_path, "good", clock=FakeClock(),
                        interval_s=0.0).write()
        (tmp_path / "bad.jsonl").write_text("{not json\n")
        (tmp_path / "empty.jsonl").write_text("")
        snapshots = read_heartbeats(tmp_path)
        assert [s["worker"] for s in snapshots] == ["good"]

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "nope") == []
        assert scan_heartbeats(tmp_path / "nope") == ([], 0)


class TestCorruptHeartbeats:
    """A worker dying mid-``os.replace`` must be *counted*, not just
    skipped: zero-byte files, half-written lines and truncated metrics
    records all surface through ``scan_heartbeats``'s damage count and
    the ``live.heartbeats_corrupt`` gauge."""

    def _good(self, tmp_path, name="good"):
        HeartbeatWriter(tmp_path, name, clock=FakeClock(start=5.0),
                        interval_s=0.0).write()

    def test_zero_byte_file_counts_corrupt(self, tmp_path):
        self._good(tmp_path)
        (tmp_path / "dead.jsonl").write_text("")
        snapshots, corrupt = scan_heartbeats(tmp_path)
        assert [s["worker"] for s in snapshots] == ["good"]
        assert corrupt == 1

    def test_half_line_file_counts_corrupt(self, tmp_path):
        self._good(tmp_path)
        # a heartbeat record cut off mid-write
        (tmp_path / "dead.jsonl").write_text(
            '{"type": "heartbeat", "worker": "dea')
        snapshots, corrupt = scan_heartbeats(tmp_path)
        assert [s["worker"] for s in snapshots] == ["good"]
        assert corrupt == 1

    def test_truncated_metrics_keeps_the_heartbeat(self, tmp_path):
        """The liveness line survived the crash; count the damage but
        keep the worker visible."""
        (tmp_path / "torn.jsonl").write_text(
            json.dumps({"type": "heartbeat", "worker": "torn",
                        "seq": 3, "wall_s": 9.0, "progress": {}})
            + '\n{"type": "metrics", "metrics": {"coun')
        snapshots, corrupt = scan_heartbeats(tmp_path)
        assert [s["worker"] for s in snapshots] == ["torn"]
        assert snapshots[0]["metrics"] is None
        assert corrupt == 1

    def test_non_object_line_counts_corrupt(self, tmp_path):
        (tmp_path / "weird.jsonl").write_text("[1, 2, 3]\n")
        assert scan_heartbeats(tmp_path) == ([], 1)

    def test_aggregate_surfaces_the_corrupt_gauge(self, tmp_path):
        self._good(tmp_path)
        (tmp_path / "dead.jsonl").write_text("")
        (tmp_path / "torn.jsonl").write_text('{"type": "hear')
        aggregate = aggregate_heartbeats(tmp_path, now_wall=5.0)
        assert aggregate.corrupt == 2
        gauges = {n: g for n, g in aggregate.registry.gauges()}
        assert gauges["live.heartbeats_corrupt"].value == 2.0
        assert gauges["live.workers"].value == 1.0

    def test_clean_directory_reports_zero_corrupt(self, tmp_path):
        self._good(tmp_path)
        aggregate = aggregate_heartbeats(tmp_path, now_wall=5.0)
        assert aggregate.corrupt == 0
        gauges = {n: g for n, g in aggregate.registry.gauges()}
        assert gauges["live.heartbeats_corrupt"].value == 0.0


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
class TestAggregation:
    def test_counters_add_across_workers(self, tmp_path):
        clock = FakeClock(start=10.0)
        for name in ("w0", "w1"):
            writer = HeartbeatWriter(tmp_path, name, clock=clock,
                                     interval_s=0.0)
            writer.write(registry=sample_registry())
        aggregate = aggregate_heartbeats(tmp_path, now_wall=10.0)
        counters = dict(aggregate.registry.counters())
        assert counters["fuzz.cases"] == 14
        assert counters["fuzz.failures"] == 4
        gauges = {n: g for n, g in aggregate.registry.gauges()}
        assert gauges["live.workers"].value == 2.0
        assert gauges["live.workers_stale"].value == 0.0
        histogram = dict(aggregate.registry.histograms())
        assert histogram["wpq.occupancy"].count == 4

    def test_stale_workers_flagged(self, tmp_path):
        fresh = HeartbeatWriter(tmp_path, "fresh",
                                clock=FakeClock(start=100.0),
                                interval_s=0.0)
        old = HeartbeatWriter(tmp_path, "old",
                              clock=FakeClock(start=10.0),
                              interval_s=0.0)
        fresh.write()
        old.write()
        aggregate = aggregate_heartbeats(tmp_path, now_wall=105.0,
                                         stale_after_s=30.0)
        by_name = {view.worker: view for view in aggregate.workers}
        assert not by_name["fresh"].stale
        assert by_name["old"].stale
        assert [v.worker for v in aggregate.stale_workers] == ["old"]
        gauges = {n: g for n, g in aggregate.registry.gauges()}
        assert gauges["live.workers_stale"].value == 1.0
        assert gauges["live.snapshot_age_s"].value == 95.0

    def test_live_gauges_are_catalogued(self, tmp_path):
        HeartbeatWriter(tmp_path, "w0", clock=FakeClock(),
                        interval_s=0.0).write(registry=sample_registry())
        aggregate = aggregate_heartbeats(tmp_path, now_wall=0.0)
        for name, _gauge in aggregate.registry.gauges():
            assert lookup(name) is not None, name
        for name, _value in aggregate.registry.counters():
            assert lookup(name) is not None, name

    def test_fuzz_campaign_aggregate_matches_serial_registry(
        self, tmp_path
    ):
        """The equivalence gate: the merged worker registries carry
        exactly the fuzz.* counts the campaign's own registry does."""
        spec = CampaignSpec(cases=6, seed=11, schemes=["star"],
                            workloads=["hash"], min_operations=10,
                            max_operations=20, attack_rate=0.5)
        spec.validate()
        campaign = run_campaign(spec, telemetry_dir=tmp_path,
                                heartbeat_interval_s=0.0)
        aggregate = aggregate_heartbeats(tmp_path, now_wall=1e18)
        merged = {name: value
                  for name, value in aggregate.registry.counters()
                  if name.startswith("fuzz.")}
        serial = {name: value
                  for name, value in campaign.stats.registry.counters()
                  if name.startswith("fuzz.")}
        assert merged == serial
        assert merged["fuzz.cases"] == 6


# ----------------------------------------------------------------------
# scheduler checkpoints -> star-lab status rate/eta
# ----------------------------------------------------------------------
def _real_specs(count):
    config = config_for_scale("smoke")
    cells = [("wb", "array"), ("star", "array"), ("wb", "hash")]
    return [
        bench_spec(config, scheme, workload, 30, seed=7)
        for scheme, workload in cells[:count]
    ]


class TestCheckpoints:
    def _journal(self, checkpoints, status="running", remaining=10):
        return {
            "campaign_id": "deadbeef",
            "status": status,
            "counts": {"remaining": remaining},
            "checkpoints": checkpoints,
        }

    def test_rates_from_checkpoint_deltas(self):
        journal = self._journal([
            {"wall_s": 100.0, "stored": 0},
            {"wall_s": 102.0, "stored": 4},
            {"wall_s": 104.0, "stored": 8},
        ])
        throughput, eta, stale = checkpoint_rates(journal,
                                                  now_wall=105.0)
        assert throughput == pytest.approx(2.0)
        assert eta == pytest.approx(5.0)
        assert not stale

    def test_insufficient_history_yields_none(self):
        journal = self._journal([{"wall_s": 1.0, "stored": 0}])
        assert checkpoint_rates(journal) == (None, None, False)
        flat = self._journal([
            {"wall_s": 1.0, "stored": 3},
            {"wall_s": 2.0, "stored": 3},
        ])
        throughput, eta, _stale = checkpoint_rates(flat)
        assert throughput is None and eta is None

    def test_stale_running_campaign_detected(self):
        journal = self._journal([{"wall_s": 100.0, "stored": 1}])
        _t, _e, stale = checkpoint_rates(journal, now_wall=200.0,
                                         stale_after_s=30.0)
        assert stale
        done = self._journal([{"wall_s": 100.0, "stored": 1}],
                             status="complete")
        assert not checkpoint_rates(done, now_wall=200.0)[2]

    def test_scheduler_writes_checkpoints_and_heartbeats(
        self, tmp_path
    ):
        specs = _real_specs(3)
        store = ResultStore(tmp_path / "store")
        clock = FakeClock(start=50.0)
        scheduler = Scheduler(store, clock=clock,
                              telemetry_dir=tmp_path / "tele")
        report = scheduler.run(specs, name="chk")
        assert report.ok
        journal = json.loads(
            scheduler._journal_path(report.campaign_id).read_text()
        )
        checkpoints = journal["checkpoints"]
        # one initial sample + one per committed cell
        assert len(checkpoints) == 4
        assert checkpoints[-1]["stored"] == 3
        assert all(c["wall_s"] >= 50.0 for c in checkpoints)
        beats = {b["worker"]: b
                 for b in read_heartbeats(tmp_path / "tele")}
        assert set(beats) == {"scheduler", "w0"}
        assert beats["scheduler"]["progress"]["completed"] == 3
        assert beats["w0"]["progress"]["state"] == "done"

    def test_resume_continues_checkpoint_history(self, tmp_path):
        specs = _real_specs(3)
        store = ResultStore(tmp_path / "store")
        first = Scheduler(store, clock=FakeClock(start=10.0))
        first.run(specs, name="chk", max_cells=1)
        second = Scheduler(store, clock=FakeClock(start=20.0))
        report = second.run(specs, name="chk")
        journal = json.loads(
            second._journal_path(report.campaign_id).read_text()
        )
        stored = [c["stored"] for c in journal["checkpoints"]]
        assert stored == sorted(stored)
        assert stored[0] == 0 and stored[-1] == 3

    def test_status_cli_shows_rate_and_eta(self, tmp_path, capsys):
        specs = _real_specs(1)
        store = ResultStore(tmp_path)
        Scheduler(store, clock=FakeClock()).run(specs, name="chk")
        store.close()
        assert lab_main(["status", "--store", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "rate" in output and "eta" in output


# ----------------------------------------------------------------------
# star-top
# ----------------------------------------------------------------------
class TestStarTop:
    def _campaign(self, tmp_path):
        store = tmp_path / "store"
        assert lab_main(["run", "--grid", "fuzz-smoke", "--store",
                         str(store), "--telemetry", "--quiet"]) == 0
        return store, store / "telemetry"

    def test_build_status_and_render(self, tmp_path):
        store, telemetry = self._campaign(tmp_path)
        status = build_status(telemetry, store_path=store)
        assert status["campaign"]["status"] == "complete"
        workers = [view["worker"] for view in status["workers"]]
        assert "scheduler" in workers
        assert status["metrics"]["counters"]["lab.jobs.completed"] > 0
        for name in status["metrics"]["counters"]:
            assert lookup(name) is not None, name
        text = render_dashboard(status)
        assert "star-top" in text and "scheduler" in text

    def test_http_endpoint_serves_metrics_and_status(self, tmp_path):
        store, telemetry = self._campaign(tmp_path)

        def snapshot():
            status = build_status(telemetry, store_path=store,
                                  now_wall=1e18)
            aggregate = aggregate_heartbeats(telemetry, now_wall=1e18)
            return status, aggregate

        server = serve(0, snapshot)
        try:
            port = server.server_address[1]
            base = "http://127.0.0.1:%d" % port
            metrics = urllib.request.urlopen(
                base + "/metrics").read().decode()
            samples = parse_prometheus_text(metrics)
            assert any(name.startswith("star_live_workers")
                       for name, _labels in samples)
            status = json.loads(urllib.request.urlopen(
                base + "/status").read().decode())
            assert status["campaign"]["status"] == "complete"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope")
        finally:
            server.shutdown()
            server.server_close()

    def test_star_top_cli_once(self, tmp_path, capsys):
        from repro.obs.top import main as top_main

        store, _telemetry = self._campaign(tmp_path)
        capsys.readouterr()
        assert top_main(["--store", str(store), "--once"]) == 0
        output = capsys.readouterr().out
        assert "star-top" in output

    def test_top_requires_a_source(self, capsys):
        from repro.obs.top import main as top_main

        assert top_main([]) == 2


class TestFarmHeader:
    """star-top --farm surfaces how workers reach the lease board."""

    def _farm(self, tmp_path, transport):
        farm = tmp_path / "farm"
        (farm / "telemetry").mkdir(parents=True)
        manifest = {"campaign_id": "deadbeef", "name": "smoke",
                    "cells": 4, "lease_s": 60.0,
                    "transport": transport}
        (farm / "farm.json").write_text(json.dumps(manifest))
        return farm

    def test_http_transport_shows_coordinator_url(self, tmp_path):
        farm = self._farm(tmp_path, {
            "kind": "http", "url": "http://coord.example:9433",
        })
        status = build_status(farm / "telemetry", farm_path=farm)
        assert status["farm"]["transport"]["kind"] == "http"
        text = render_dashboard(status)
        assert ("farm: transport http http://coord.example:9433"
                in text)

    def test_file_transport_shows_board_path(self, tmp_path):
        farm = self._farm(tmp_path, {
            "kind": "file", "board": "/mnt/shared/leases.sqlite",
        })
        status = build_status(farm / "telemetry", farm_path=farm)
        text = render_dashboard(status)
        assert ("farm: transport file /mnt/shared/leases.sqlite"
                in text)

    def test_missing_or_corrupt_manifest_is_tolerated(self, tmp_path):
        farm = tmp_path / "farm"
        (farm / "telemetry").mkdir(parents=True)
        status = build_status(farm / "telemetry", farm_path=farm)
        assert status["farm"] is None
        (farm / "farm.json").write_text("{half a manif")
        status = build_status(farm / "telemetry", farm_path=farm)
        assert status["farm"] is None
        assert "farm: transport" not in render_dashboard(status)

    def test_net_counters_render(self, tmp_path):
        farm = self._farm(tmp_path, {"kind": "http",
                                     "url": "http://c:1"})
        status = build_status(farm / "telemetry", farm_path=farm)
        status["metrics"]["counters"].update({
            "lab.net.requests": 120, "lab.net.retries": 3,
            "lab.net.rejects": 2, "lab.net.duplicates": 1,
            "lab.farm.results_shipped": 4,
        })
        text = render_dashboard(status)
        assert "net_req 120" in text
        assert "net_retry 3" in text
        assert "net_reject 2" in text
        assert "net_dup 1" in text
        assert "shipped 4" in text


# ----------------------------------------------------------------------
# escape/unescape round-trip (the exporter asymmetry pin)
# ----------------------------------------------------------------------
class TestLabelValueRoundTrip:
    def test_literal_backslash_n_regression(self):
        # 2-char backslash+n escapes to 3 chars; the old sequential
        # replace() unescape consumed the pair half-and-half
        raw = "\\n"
        assert escape_label_value(raw) == "\\\\n"
        assert _unescape_label_value(escape_label_value(raw)) == raw

    def test_core_escapes(self):
        for raw in ('"', "\\", "\n", '\\"', "\\\n", 'a"b\\c\nd'):
            escaped = escape_label_value(raw)
            assert "\n" not in escaped
            assert _unescape_label_value(escaped) == raw

    def test_unknown_escape_passes_through(self):
        assert _unescape_label_value("\\t") == "\\t"
        assert _unescape_label_value("\\") == "\\"

    @given(st.text(alphabet=st.sampled_from(
        list("abn\\\"\n \t01")), max_size=40))
    def test_round_trip_property(self, raw):
        assert _unescape_label_value(escape_label_value(raw)) == raw

    @given(st.text(max_size=40))
    def test_round_trip_property_full_unicode(self, raw):
        assert _unescape_label_value(escape_label_value(raw)) == raw
