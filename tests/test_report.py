"""Tests for the Markdown/ASCII report renderer and new CLI flags."""

import json

from repro.bench.cli import main as cli_main
from repro.bench.report import (
    render_bar_chart,
    render_markdown_report,
    render_markdown_table,
)
from repro.bench.tables import ExperimentTable


def sample_table() -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="Fig. X", title="demo",
        columns=["workload", "wb", "star"],
        notes=["a note"],
    )
    table.add_row(workload="array", wb=1.0, star=1.1)
    table.add_row(workload="hash", wb=1.0, star=1.4)
    return table


class TestMarkdown:
    def test_table_structure(self):
        text = render_markdown_table(sample_table())
        assert text.startswith("## Fig. X — demo")
        assert "| workload | wb | star |" in text
        assert "| array | 1.000 | 1.100 |" in text
        assert "> a note" in text

    def test_report_concatenates(self):
        text = render_markdown_report([sample_table(), sample_table()],
                                      title="T")
        assert text.startswith("# T")
        assert text.count("## Fig. X") == 2


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = render_bar_chart(sample_table(), "workload",
                                 ["wb", "star"], width=10)
        lines = chart.splitlines()
        star_hash = next(
            line for line in lines[lines.index("hash"):]
            if line.strip().startswith("star")
        )
        assert "#" * 10 in star_hash  # the peak value gets full width

    def test_non_numeric_rows_skipped(self):
        table = sample_table()
        table.add_row(workload="gmean", wb="", star="")
        chart = render_bar_chart(table, "workload", ["wb", "star"])
        assert "gmean" not in chart

    def test_empty_chart(self):
        table = ExperimentTable("F", "t", ["a", "b"])
        assert "no numeric rows" in render_bar_chart(table, "a", ["b"])


class TestCliFlags:
    def test_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert cli_main(["--experiment", "fig14a", "--scale", "smoke",
                         "--markdown", str(path)]) == 0
        text = path.read_text()
        assert "## Fig. 14(a)" in text
        assert "| workload | dirty_fraction |" in text

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert cli_main(["--experiment", "fig14a", "--scale", "smoke",
                         "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload[0]["experiment"] == "Fig. 14(a)"

    def test_chart_flag(self, capsys):
        assert cli_main(["--experiment", "fig14a", "--scale", "smoke",
                         "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_layout_flag(self, capsys):
        assert cli_main(["--layout", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "sit_levels" in out
