"""Unit + property tests for the workload suite."""

import pytest

from repro.errors import AllocationError
from repro.workloads import (
    ALL_WORKLOADS,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    Op,
    OpKind,
    PersistentHeap,
    TraceBuilder,
    ZipfianSampler,
    count_kinds,
    make_workload,
)
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.rbtree import RBTreeWorkload

LINES = 64 * 1024


class TestHeap:
    def test_bump_allocation(self):
        heap = PersistentHeap(100)
        assert heap.alloc(10) == 0
        assert heap.alloc(5) == 10
        assert heap.used == 15
        assert heap.free == 85

    def test_exhaustion(self):
        heap = PersistentHeap(10)
        heap.alloc(10)
        with pytest.raises(AllocationError):
            heap.alloc(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PersistentHeap(0)
        with pytest.raises(ValueError):
            PersistentHeap(10).alloc(0)


class TestTraceBuilder:
    def test_emits_in_order(self):
        builder = TraceBuilder()
        builder.read(1)
        builder.write(2)
        builder.persist()
        kinds = [op.kind for op in builder.ops()]
        assert kinds == [OpKind.READ, OpKind.WRITE, OpKind.PERSIST]

    def test_count_kinds(self):
        builder = TraceBuilder()
        builder.read(1)
        builder.read(2)
        builder.write(3)
        counts = count_kinds(builder.ops())
        assert counts[OpKind.READ] == 2
        assert counts[OpKind.WRITE] == 1

    def test_op_validation(self):
        with pytest.raises(ValueError):
            Op(OpKind.READ, -1)
        with pytest.raises(ValueError):
            Op(OpKind.READ, 0, instructions=-5)


class TestRegistry:
    def test_paper_suite_composition(self):
        assert MICRO_WORKLOADS == ["array", "btree", "hash", "queue",
                                   "rbtree"]
        assert MACRO_WORKLOADS == ["tpcc", "ycsb"]
        assert len(ALL_WORKLOADS) == 7

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            make_workload("nope", LINES)


class TestAllWorkloadsCommon:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_ops_are_valid(self, name):
        workload = make_workload(name, LINES, operations=80)
        ops = list(workload.ops())
        assert ops, "workload emitted nothing"
        for op in ops:
            assert isinstance(op, Op)
            assert 0 <= op.addr < LINES
            assert op.instructions >= 0

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_deterministic_per_seed(self, name):
        first = list(make_workload(name, LINES, operations=50,
                                   seed=3).ops())
        second = list(make_workload(name, LINES, operations=50,
                                    seed=3).ops())
        assert first == second

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_seed_changes_trace(self, name):
        first = list(make_workload(name, LINES, operations=50,
                                   seed=3).ops())
        second = list(make_workload(name, LINES, operations=50,
                                    seed=4).ops())
        assert first != second

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_contains_persists_and_writes(self, name):
        counts = count_kinds(
            make_workload(name, LINES, operations=80).ops()
        )
        assert counts[OpKind.WRITE] > 0
        assert counts[OpKind.PERSIST] > 0


class TestBTree:
    def test_invariants_after_inserts(self):
        workload = BTreeWorkload(LINES, operations=400, seed=11)
        list(workload.ops())
        workload.check_invariants()
        assert workload.size > 200

    def test_splits_allocate_lines(self):
        workload = BTreeWorkload(LINES, operations=300,
                                 lookup_fraction=0.0)
        list(workload.ops())
        assert workload.heap.used > 10  # root + split nodes

    def test_lookup_finds_inserted_key(self):
        workload = BTreeWorkload(LINES, operations=50,
                                 lookup_fraction=0.0)
        list(workload.ops())
        workload._emitted = []
        workload.insert(123456789)
        assert workload.lookup(123456789)


class TestRBTree:
    def test_invariants_after_inserts(self):
        workload = RBTreeWorkload(LINES, operations=400, seed=11)
        list(workload.ops())
        workload.check_invariants()
        assert workload.size > 200

    def test_lookup_finds_inserted_key(self):
        workload = RBTreeWorkload(LINES, operations=50,
                                  lookup_fraction=0.0)
        list(workload.ops())
        workload._emitted = []
        workload.insert(10 ** 9 + 7)
        assert workload.lookup(10 ** 9 + 7)

    def test_rotations_write_multiple_lines(self):
        """Ascending keys force rotations: more writes than one per
        insert."""
        workload = RBTreeWorkload(LINES, operations=60,
                                  lookup_fraction=0.0)
        workload._emitted = []
        emitted = []
        for key in range(40):
            workload._emitted = []
            workload.insert(key)
            emitted.extend(workload._emitted)
        writes = sum(1 for op in emitted if op.kind is OpKind.WRITE)
        assert writes > 40


class TestHashTable:
    def test_probing_bounded_by_load_factor(self):
        workload = HashTableWorkload(LINES, operations=600,
                                     table_lines=512)
        list(workload.ops())
        assert workload.load_factor() <= 0.75

    def test_inserts_then_updates(self):
        workload = HashTableWorkload(LINES, operations=100,
                                     update_fraction=1.0)
        ops = list(workload.ops())
        assert ops  # first op falls back to insert when table empty


class TestZipfian:
    def test_skew_prefers_low_ranks(self):
        import random
        sampler = ZipfianSampler(1000, theta=0.99)
        rng = random.Random(1)
        samples = [sampler.sample(rng) for _ in range(4000)]
        top_decile = sum(1 for s in samples if s < 100)
        assert top_decile > len(samples) * 0.4

    def test_validates_size(self):
        with pytest.raises(ValueError):
            ZipfianSampler(0)

    def test_samples_in_range(self):
        import random
        sampler = ZipfianSampler(10)
        rng = random.Random(2)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(500))


class TestTpcc:
    def test_transactions_touch_multiple_tables(self):
        workload = make_workload("tpcc", LINES, operations=20)
        ops = list(workload.ops())
        addrs = {op.addr for op in ops}
        # stock, district, orders and log regions are all represented
        assert any(a >= workload.stock for a in addrs)
        assert any(workload.district <= a < workload.customer
                   for a in addrs)
        assert any(a >= workload.log_region for a in addrs)

    def test_one_persist_per_transaction(self):
        workload = make_workload("tpcc", LINES, operations=25)
        counts = count_kinds(workload.ops())
        assert counts[OpKind.PERSIST] == 25
