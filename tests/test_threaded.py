"""Tests for multi-threaded trace interleaving (the paper's 8-thread
benchmark setup)."""

import pytest

from repro.config import small_config
from repro.sim.machine import Machine
from repro.workloads.registry import make_threaded_trace, make_workload
from repro.workloads.trace import Op, OpKind, interleave_traces


class TestInterleave:
    def test_preserves_all_ops(self):
        a = [Op(OpKind.READ, 1), Op(OpKind.READ, 2)]
        b = [Op(OpKind.WRITE, 3)]
        merged = list(interleave_traces([a, b], chunk=1, seed=0))
        assert sorted(op.addr for op in merged) == [1, 2, 3]

    def test_preserves_per_thread_order(self):
        a = [Op(OpKind.READ, addr) for addr in range(10)]
        b = [Op(OpKind.READ, addr) for addr in range(100, 110)]
        merged = list(interleave_traces([a, b], chunk=3, seed=1))
        thread_a = [op.addr for op in merged if op.addr < 100]
        thread_b = [op.addr for op in merged if op.addr >= 100]
        assert thread_a == list(range(10))
        assert thread_b == list(range(100, 110))

    def test_deterministic_per_seed(self):
        def traces():
            return [[Op(OpKind.READ, addr) for addr in range(5)],
                    [Op(OpKind.READ, addr) for addr in range(10, 15)]]
        first = list(interleave_traces(traces(), seed=3))
        second = list(interleave_traces(traces(), seed=3))
        assert first == second

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            list(interleave_traces([[]], chunk=0))


class TestThreadedTrace:
    def test_threads_use_disjoint_partitions(self):
        lines = 16384
        threads = 4
        trace = list(make_threaded_trace(
            "array", lines, threads=threads, operations=40,
        ))
        partition = lines // threads
        occupied = {op.addr // partition for op in trace
                    if op.kind is not OpKind.PERSIST}
        assert occupied == set(range(threads))

    def test_rejects_too_many_threads(self):
        with pytest.raises(ValueError):
            make_threaded_trace("array", 128, threads=8)

    def test_threaded_run_crash_recovers(self):
        machine = Machine(small_config(), scheme="star")
        trace = make_threaded_trace(
            "hash", machine.config.num_data_lines, threads=4,
            operations=40,
        )
        machine.run(trace)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)

    def test_interleaving_disrupts_locality(self):
        """More threads touch more counter blocks for the same work."""
        config = small_config()
        single = Machine(config, scheme="star")
        wl = make_workload("array", config.num_data_lines // 4,
                           operations=160)
        single.run(wl.ops())
        threaded = Machine(config, scheme="star")
        threaded.run(make_threaded_trace(
            "array", config.num_data_lines, threads=4, operations=40,
        ))
        assert len(threaded.controller.meta_cache) >= \
            len(single.controller.meta_cache)
