"""Scalar-vs-batched differential parity suite.

The batched epoch pipeline (:mod:`repro.sim.batch`) is an opt-in
replacement for the canonical per-reference loop, and its whole
contract is *bit-identical observables*: final NVM image, wear map,
``Stats`` counters, gauges, histograms, the structured event log,
timing-model floats and recovery reports. This suite replays the same
traces through both pipelines and diffs every one of those surfaces:

* the ``grids/ci_smoke.json`` grid (the cells CI sweeps),
* a deterministic sample of the fuzz-campaign case space, crash and
  recovery included,
* an epoch-size sweep (1 op per epoch up to the default), because
  epoch boundaries are where run state could leak,
* the ``run_one`` export surface, compared as canonical JSON bytes.

Wall-clock fields are the single sanctioned difference: event ``t``
timestamps and span ``duration_s`` are host-time measurements, not
simulation outputs, so the canonical forms strip them (and nothing
else) before comparing.
"""

import dataclasses
import json

import pytest

from repro.bench.runner import config_for_scale, run_one
from repro.config import small_config
from repro.fuzz import CampaignSpec, sample_cases
from repro.fuzz.executor import campaign_config, materialize_trace
from repro.obs.export import telemetry_snapshot
from repro.sim.batch import DEFAULT_EPOCH, eligible
from repro.sim.machine import Machine
from repro.workloads.registry import make_workload

NVM_REGIONS = ("_data", "_meta", "_ra", "_st")

TIMING_FIELDS = (
    "now_ns", "instructions", "read_stall_ns", "write_stall_ns",
    "barrier_stall_ns",
)


# ----------------------------------------------------------------------
# canonical forms and the differ
# ----------------------------------------------------------------------
def _strip_wall_clock(value):
    """Recursively drop host-time fields (event ``t``, span
    ``duration_s``) from a telemetry structure."""
    if isinstance(value, dict):
        return {
            key: _strip_wall_clock(item)
            for key, item in value.items()
            if key not in ("t", "duration_s")
        }
    if isinstance(value, list):
        return [_strip_wall_clock(item) for item in value]
    return value


def _canonical_telemetry(machine) -> dict:
    return _strip_wall_clock(telemetry_snapshot(machine.stats.registry))


def _run(config, scheme, ops, batch, crash):
    machine = Machine(config, scheme=scheme, telemetry=True, batch=batch)
    machine.run(ops)
    recovery = None
    if crash:
        machine.crash()
        recovery = machine.recover()
    return machine, recovery


def _assert_parity(config, scheme, ops, batch, crash=False):
    """Run ``ops`` scalar and batched; diff every observable surface."""
    scalar, scalar_rec = _run(config, scheme, list(ops), None, crash)
    batched, batched_rec = _run(config, scheme, list(ops), batch, crash)

    for region in NVM_REGIONS:
        assert getattr(scalar.nvm, region) == getattr(
            batched.nvm, region
        ), "nvm.%s diverged (scheme=%s batch=%r)" % (region, scheme, batch)
    assert scalar.nvm.wear == batched.nvm.wear

    assert scalar.stats.snapshot() == batched.stats.snapshot()

    for field in TIMING_FIELDS:
        assert getattr(scalar.timing, field) == getattr(
            batched.timing, field
        ), "timing.%s diverged (scheme=%s batch=%r)" % (
            field, scheme, batch
        )

    assert _canonical_telemetry(scalar) == _canonical_telemetry(batched)

    assert scalar_rec == batched_rec


# ----------------------------------------------------------------------
# the CI smoke grid
# ----------------------------------------------------------------------
def _smoke_grid():
    with open("grids/ci_smoke.json") as handle:
        return json.load(handle)


@pytest.mark.parametrize("scheme", ["wb", "star"])
@pytest.mark.parametrize("workload", ["array", "hash"])
def test_ci_smoke_grid_parity(scheme, workload):
    grid = _smoke_grid()
    config = config_for_scale(grid["scale"])
    assert scheme in grid["schemes"] and workload in grid["workloads"]
    ops = list(
        make_workload(
            workload, config.num_data_lines,
            operations=grid["operations"], seed=grid["seed"],
        ).ops()
    )
    _assert_parity(config, scheme, ops, DEFAULT_EPOCH,
                   crash=(scheme != "wb"))


# ----------------------------------------------------------------------
# fuzz-corpus sample (crash + recovery parity)
# ----------------------------------------------------------------------
def _corpus_sample():
    # attack_rate=0: parity replays the machine, not the attacker (the
    # fuzz oracle owns attack semantics); the sample still spans every
    # SIT scheme and workload family the campaign draws from
    spec = CampaignSpec(cases=6, seed=29, attack_rate=0.0)
    return sample_cases(spec)


@pytest.mark.parametrize(
    "case", _corpus_sample(), ids=lambda case: case.case_id
)
def test_fuzz_corpus_sample_parity(case):
    config = campaign_config()
    trace = materialize_trace(case, config)
    ops = trace[: case.crash_index(len(trace))]
    _assert_parity(config, case.scheme, ops, DEFAULT_EPOCH,
                   crash=(case.scheme != "wb"))


# ----------------------------------------------------------------------
# epoch boundaries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("epoch", [1, 3, DEFAULT_EPOCH])
def test_epoch_size_is_unobservable(epoch):
    """Same-line runs and deferred flushes must not leak across epoch
    boundaries: any epoch size yields the same machine."""
    config = config_for_scale("smoke")
    ops = list(
        make_workload(
            "hash", config.num_data_lines, operations=240, seed=11
        ).ops()
    )
    _assert_parity(config, "star", ops, epoch, crash=True)


def test_run_split_across_epoch_boundary():
    """A same-counter-block write run that straddles an epoch edge is
    preaggregated identically to one replayed in a single epoch."""
    config = small_config()
    ops = list(
        make_workload(
            "array", config.num_data_lines, operations=96, seed=5
        ).ops()
    )
    machines = []
    for epoch in (8, len(ops)):
        machine = Machine(config, scheme="star", telemetry=True,
                          batch=epoch)
        machine.run(ops)
        machines.append(machine)
    first, second = machines
    for region in NVM_REGIONS:
        assert getattr(first.nvm, region) == getattr(second.nvm, region)
    assert first.stats.snapshot() == second.stats.snapshot()
    assert first.timing.now_ns == second.timing.now_ns


# ----------------------------------------------------------------------
# the export surface (byte-identical)
# ----------------------------------------------------------------------
def test_run_one_exports_byte_identical():
    config = config_for_scale("smoke")
    for scheme in ("anubis", "star"):
        results = [
            run_one(config, scheme, "hash", operations=200, seed=11,
                    crash_and_recover=True, telemetry=True, batch=batch)
            for batch in (None, DEFAULT_EPOCH)
        ]
        exports = [
            json.dumps(
                _strip_wall_clock(dataclasses.asdict(result)),
                sort_keys=True, default=str,
            ).encode()
            for result in results
        ]
        assert exports[0] == exports[1], (
            "run_one export diverged for %s" % scheme
        )


# ----------------------------------------------------------------------
# eligibility: ineligible machines silently take the scalar path
# ----------------------------------------------------------------------
def test_ineligible_machine_falls_back_to_scalar():
    """A subclassed NVM (start-gap remapping) must be refused by the
    engine — its overridden ``write_data`` would be bypassed by the
    engine's direct region stores — and ``Machine(batch=...)`` must
    silently replay such machines through the scalar loop instead."""
    from repro.mem.wearlevel import WearLevelingNVM

    config = config_for_scale("smoke")
    ops = list(
        make_workload(
            "hash", config.num_data_lines, operations=120, seed=11
        ).ops()
    )
    machines = []
    for batch in (None, DEFAULT_EPOCH):
        machine = Machine(
            config, scheme="star", telemetry=True,
            nvm=WearLevelingNVM(config.num_data_lines), batch=batch,
        )
        if batch is not None:
            assert not eligible(machine)
        machine.run(list(ops))
        machines.append(machine)
    scalar, fallback = machines
    for region in NVM_REGIONS:
        assert getattr(scalar.nvm, region) == getattr(
            fallback.nvm, region
        )
    assert scalar.stats.snapshot() == fallback.stats.snapshot()
    # a plain machine, by contrast, is served by the engine
    assert eligible(Machine(config, scheme="star", telemetry=True))
