"""Unit + property tests for the multi-layer index and bitmap manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmap import BitmapLineManager, stale_lines_list
from repro.core.index import MultiLayerIndex
from repro.mem.nvm import NVM
from repro.sim.registers import OnChipRegisters


class TestMultiLayerIndex:
    def test_single_layer_on_chip(self):
        index = MultiLayerIndex(100, fanout=512)
        assert index.num_layers == 1
        assert index.is_on_chip(1)

    def test_two_layers(self):
        index = MultiLayerIndex(1000, fanout=512)
        assert index.num_layers == 2
        assert not index.is_on_chip(1)
        assert index.is_on_chip(2)

    def test_paper_scale_needs_three_layers(self):
        """~2 GB of metadata -> 3 layers (Section III-D)."""
        index = MultiLayerIndex(2 ** 25, fanout=512)
        assert index.num_layers == 3

    def test_l1_position(self):
        index = MultiLayerIndex(2000, fanout=512)
        assert index.l1_position(0) == (0, 0)
        assert index.l1_position(513) == (1, 1)

    def test_parent_position(self):
        index = MultiLayerIndex(512 * 600, fanout=512)
        assert index.parent_position(1, 513) == (1, 1)

    def test_parent_of_top_rejected(self):
        index = MultiLayerIndex(100, fanout=512)
        with pytest.raises(ValueError):
            index.parent_position(1, 0)

    def test_covered_range_clamped_at_edge(self):
        index = MultiLayerIndex(1000, fanout=512)
        assert index.covered_range(1, 1) == (512, 1000)

    def test_all_lines_enumeration(self):
        index = MultiLayerIndex(1000, fanout=512)
        assert list(index.all_lines()) == [(1, 0), (1, 1), (2, 0)]

    def test_bounds_checks(self):
        index = MultiLayerIndex(1000, fanout=512)
        with pytest.raises(ValueError):
            index.l1_position(1000)
        with pytest.raises(ValueError):
            index.lines_in_layer(3)


def make_manager(total_lines=2000, fanout=64, adr_lines=4):
    nvm = NVM()
    registers = OnChipRegisters()
    index = MultiLayerIndex(total_lines, fanout=fanout)
    manager = BitmapLineManager(index, nvm, registers, adr_lines)
    return manager, nvm, registers, index


class TestBitmapManager:
    def test_mark_and_query(self):
        manager, _nvm, _registers, _index = make_manager()
        manager.mark_stale(70)
        assert manager.is_stale(70)
        assert not manager.is_stale(71)

    def test_mark_fresh_clears(self):
        manager, _nvm, _registers, _index = make_manager()
        manager.mark_stale(70)
        manager.mark_fresh(70)
        assert not manager.is_stale(70)

    def test_top_layer_updates_register(self):
        manager, _nvm, registers, _index = make_manager()
        assert registers.index_top_line == 0
        manager.mark_stale(70)  # L1 line 1 becomes non-zero
        assert registers.index_top_line & (1 << 1)

    def test_top_layer_clears_when_l1_line_zeroes(self):
        manager, _nvm, registers, _index = make_manager()
        manager.mark_stale(70)
        manager.mark_stale(71)
        manager.mark_fresh(70)
        assert registers.index_top_line & (1 << 1)
        manager.mark_fresh(71)
        assert not registers.index_top_line & (1 << 1)

    def test_adr_spills_counted(self):
        manager, nvm, _registers, _index = make_manager(adr_lines=2)
        # touch five distinct L1 lines -> at least three spills
        for line in range(5):
            manager.mark_stale(line * 64)
        assert nvm.stats["nvm.ra_writes"] >= 3

    def test_repeated_marks_do_not_propagate(self):
        manager, nvm, _registers, _index = make_manager()
        manager.mark_stale(70)
        accesses = nvm.stats["adr.accesses"]
        manager.mark_stale(70)  # bit already set: one L1 access, no more
        assert nvm.stats["adr.accesses"] == accesses + 1

    def test_crash_flush_then_walk(self):
        manager, nvm, registers, index = make_manager()
        for line in (3, 70, 1999):
            manager.mark_stale(line)
        manager.flush_on_power_failure()
        stale = stale_lines_list(index, nvm, registers.index_top_line)
        assert stale == [3, 70, 1999]

    def test_walk_without_flush_misses_adr_residents(self):
        """The battery flush is what makes ADR contents recoverable."""
        manager, nvm, registers, index = make_manager(adr_lines=16)
        manager.mark_stale(70)
        stale = stale_lines_list(index, nvm, registers.index_top_line)
        assert stale == []  # still sitting in ADR, not in the RA

    def test_walk_reads_only_nonzero_lines(self):
        manager, nvm, registers, index = make_manager(
            total_lines=64 * 64 * 4, fanout=64
        )
        manager.mark_stale(0)
        manager.flush_on_power_failure()
        reads_before = nvm.stats["nvm.ra_reads"]
        stale_lines_list(index, nvm, registers.index_top_line)
        reads = nvm.stats["nvm.ra_reads"] - reads_before
        # 3 layers: top on-chip, one L2 read, one L1 read
        assert reads == 2


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=1999), st.booleans()),
    max_size=120,
))
@settings(max_examples=50, deadline=None)
def test_bitmap_matches_reference_set(events):
    """After any mark sequence + crash, the walk returns exactly the set
    of currently-stale lines (the central Fig. 7 invariant)."""
    manager, nvm, registers, index = make_manager(
        total_lines=2000, fanout=64, adr_lines=3
    )
    reference = set()
    for line, make_stale in events:
        if make_stale:
            manager.mark_stale(line)
            reference.add(line)
        else:
            manager.mark_fresh(line)
            reference.discard(line)
    manager.flush_on_power_failure()
    stale = stale_lines_list(index, nvm, registers.index_top_line)
    assert stale == sorted(reference)
