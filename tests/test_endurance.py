"""Tests for the NVM wear/endurance model."""

import pytest

from repro.config import small_config
from repro.mem.nvm import NVM
from repro.sim.endurance import (
    PCM_ENDURANCE_WRITES,
    wear_report,
)
from repro.sim.machine import Machine
from repro.tree.node import DataLineImage

from conftest import run_small_workload


def _image() -> DataLineImage:
    return DataLineImage(ciphertext=bytes(64), mac=0, lsbs=0)


class TestWearTracking:
    def test_empty_device(self):
        report = wear_report(NVM())
        assert report.total_writes == 0
        assert report.max_wear == 0
        assert report.hottest_line is None
        assert report.mean_wear == 0.0
        assert report.imbalance == 0.0

    def test_counts_per_line(self):
        nvm = NVM()
        for _ in range(3):
            nvm.write_data(5, _image())
        nvm.write_data(6, _image())
        report = wear_report(nvm)
        assert report.total_writes == 4
        assert report.lines_touched == 2
        assert report.max_wear == 3
        assert report.hottest_line == ("data", 5)

    def test_regions_tracked_separately(self):
        nvm = NVM()
        nvm.write_data(0, _image())
        nvm.write_st(0, "entry")
        nvm.write_st(0, "entry")
        report = wear_report(nvm)
        assert report.per_region_max["st"] == 2
        assert report.per_region_max["data"] == 1

    def test_tamper_does_not_wear(self):
        nvm = NVM()
        nvm.tamper_data(0, _image())
        assert wear_report(nvm).total_writes == 0

    def test_lifetime_fraction(self):
        nvm = NVM()
        nvm.write_data(0, _image())
        report = wear_report(nvm)
        assert report.lifetime_fraction_consumed() == \
            pytest.approx(1 / PCM_ENDURANCE_WRITES)
        with pytest.raises(ValueError):
            report.lifetime_fraction_consumed(0)

    def test_imbalance(self):
        nvm = NVM()
        for _ in range(9):
            nvm.write_data(0, _image())
        nvm.write_data(1, _image())
        report = wear_report(nvm)
        assert report.imbalance == pytest.approx(9 / 5)


class TestSchemeWearContrast:
    def test_anubis_concentrates_wear_on_st_slots(self):
        """Anubis rewrites the ST slot shadowing a hot node on every
        write to it; STAR has no such hot extra line."""
        config = small_config()
        reports = {}
        for scheme in ("star", "anubis"):
            machine = Machine(config, scheme=scheme)
            run_small_workload(machine, "queue", operations=300)
            reports[scheme] = wear_report(machine.nvm)
        assert reports["anubis"].max_wear > reports["star"].max_wear
        assert reports["anubis"].per_region_max["st"] > \
            reports["star"].per_region_max.get("ra", 0)

    def test_strict_hammers_the_tree_top(self):
        """Write-through persistence rewrites high tree levels on every
        data write — the endurance argument against it."""
        config = small_config()
        machine = Machine(config, scheme="strict")
        run_small_workload(machine, "array", operations=200)
        report = wear_report(machine.nvm)
        region, _line = report.hottest_line
        assert region == "meta"
        assert report.imbalance > 3.0
