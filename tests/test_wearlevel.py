"""Unit + property tests for start-gap wear leveling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.mem.wearlevel import StartGapRemapper, WearLevelingNVM
from repro.sim.endurance import wear_report
from repro.sim.machine import Machine
from repro.tree.node import DataLineImage

from conftest import run_small_workload


def _image(byte: int = 0) -> DataLineImage:
    return DataLineImage(ciphertext=bytes([byte % 256]) * 64,
                         mac=0, lsbs=0)


class TestRemapper:
    def test_identity_before_any_move(self):
        remapper = StartGapRemapper(8)
        assert [remapper.translate(line) for line in range(8)] == \
            list(range(8))

    def test_single_move_shifts_one_line(self):
        remapper = StartGapRemapper(8, gap_write_interval=1)
        source, destination = remapper.note_write()
        assert (source, destination) == (7, 8)
        assert remapper.translate(7) == 8
        assert remapper.translate(6) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapRemapper(0)
        with pytest.raises(ValueError):
            StartGapRemapper(8, gap_write_interval=0)
        with pytest.raises(ValueError):
            StartGapRemapper(8).translate(8)

    def test_no_move_below_interval(self):
        remapper = StartGapRemapper(8, gap_write_interval=3)
        assert remapper.note_write() is None
        assert remapper.note_write() is None
        assert remapper.note_write() is not None

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_mapping_is_always_a_bijection(self, lines, moves):
        remapper = StartGapRemapper(lines, gap_write_interval=1)
        for _ in range(moves):
            remapper.note_write()
        physical = [remapper.translate(line) for line in range(lines)]
        assert len(set(physical)) == lines
        assert all(0 <= slot <= lines for slot in physical)
        assert remapper.gap not in physical  # the gap stays empty

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_full_rotation_visits_every_slot(self, lines):
        """After enough moves, a hot logical line has occupied every
        physical slot — the property that spreads wear."""
        remapper = StartGapRemapper(lines, gap_write_interval=1)
        visited = {remapper.translate(0)}
        for _ in range(lines * (lines + 1)):
            remapper.note_write()
            visited.add(remapper.translate(0))
        assert visited == set(range(lines + 1))


class TestWearLevelingNVM:
    def test_content_tracks_remapping(self):
        """The device keeps answering reads correctly across moves."""
        nvm = WearLevelingNVM(16, gap_write_interval=2)
        model = {}
        for step in range(100):
            line = step % 16
            image = _image(step)
            nvm.write_data(line, image)
            model[line] = image
            for known, expected in model.items():
                assert nvm.read_data(known) == expected

    def test_gap_moves_counted(self):
        nvm = WearLevelingNVM(16, gap_write_interval=5)
        for step in range(25):
            nvm.write_data(step % 16, _image())
        assert nvm.stats["wearlevel.gap_moves"] == 5

    def test_migration_traffic_is_counted_and_traced(self):
        """Gap moves are real device traffic: one read + one write in
        the counters AND in the address trace. The trace half
        regressed silently while the copy reached into _data directly;
        it now routes through the counted migrate_data API."""
        nvm = WearLevelingNVM(4, gap_write_interval=1)
        nvm.trace = []
        nvm.write_data(3, _image())  # slot 3 adj. to gap 4 -> migrates
        migrations = [op for op in nvm.trace
                      if op in (("r", "data", 3), ("w", "data", 4))]
        assert migrations == [("r", "data", 3), ("w", "data", 4)]
        reads = sum(1 for op in nvm.trace if op[0] == "r")
        writes = sum(1 for op in nvm.trace if op[0] == "w")
        assert nvm.stats["nvm.data_reads"] == reads == 1
        assert nvm.stats["nvm.data_writes"] == writes == 2
        # wear lands on the migration destination
        assert nvm.wear[("data", 4)] == 1

    def test_migration_of_an_empty_slot_is_free(self):
        nvm = WearLevelingNVM(8, gap_write_interval=10 ** 9)
        nvm.trace = []
        assert not nvm.migrate_data(5, 8)
        assert nvm.trace == []
        assert nvm.stats["nvm.data_reads"] == 0

    def test_hot_line_wear_spread(self):
        """Hammering one logical line spreads across physical slots."""
        plain = WearLevelingNVM(16, gap_write_interval=10 ** 9)
        leveled = WearLevelingNVM(16, gap_write_interval=4)
        for _ in range(200):
            plain.write_data(3, _image())
            leveled.write_data(3, _image())
        assert wear_report(leveled).max_wear < \
            wear_report(plain).max_wear

    def test_machine_runs_on_wear_leveled_nvm(self):
        """The secure machine is oblivious to the remapping layer."""
        config = small_config()
        nvm = WearLevelingNVM(config.num_data_lines,
                              gap_write_interval=50)
        machine = Machine(config, scheme="star", nvm=nvm)
        run_small_workload(machine, "hash", operations=150)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)
        assert nvm.stats["wearlevel.gap_moves"] > 0
