"""STAR003 fixture: global randomness inside a simulation path.

Module-level ``random`` calls make runs irreproducible; the simulator
must thread a seeded ``random.Random`` instead.
"""

import random


def jitter():
    return random.randrange(4)
