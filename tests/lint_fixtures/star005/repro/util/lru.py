"""STAR005 fixture: a rostered hot-path class without ``__slots__``.

``repro/util/lru.py::LRUCache`` is on the default roster; dropping
the slots declaration silently reintroduces per-instance dicts on the
hottest allocation path.
"""


class LRUCache:
    def __init__(self):
        self.entries = {}
