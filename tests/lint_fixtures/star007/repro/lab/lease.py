"""STAR007 fixture: an unfenced lease-board mutation.

``expire`` updates the leases table with neither a ``_begin()``
transaction nor the fenced-helper roster; ``requeue`` shows the
compliant shape and must stay silent.
"""


class LeaseBoard:
    def __init__(self, conn):
        self._conn = conn

    def _begin(self):
        self._conn.execute("BEGIN IMMEDIATE")

    def expire(self, spec_hash):
        cursor = self._conn.execute(
            "UPDATE leases SET state = 'pending' WHERE spec_hash = ?",
            (spec_hash,),
        )
        return cursor.rowcount == 1

    def requeue(self, spec_hash):
        self._begin()
        try:
            self._conn.execute(
                "UPDATE leases SET state = 'pending' "
                "WHERE spec_hash = ?",
                (spec_hash,),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
