"""STAR008 fixture: an in-place telemetry publish.

``publish`` rewrites the status file where readers poll it; a
concurrent reader can observe a torn prefix. ``publish_atomic`` is
the sanctioned tmp-write + ``os.replace`` shape and must stay silent.
"""

import json
import os


def publish(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def publish_atomic(path, payload):
    tmp = "%s.tmp" % path
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
