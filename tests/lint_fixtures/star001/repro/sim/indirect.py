"""STAR001 fixture: an uncounted NVM access hidden behind helpers.

``census`` never mentions an nvm-shaped receiver, so the PR 4
receiver-name heuristic is blind to it; the whole-program effect
propagation must still flag ``audit``'s call, where the NVM value
flows into the effectful parameter — including through ``relay``,
one more level of indirection.
"""


def census(store):
    # `store` reaches region internals: the effectful parameter
    return len(store._data) + len(store._meta)


def relay(device):
    # inherits census's effect on its own parameter
    return census(device)


def audit(machine):
    direct = census(machine.nvm)   # finding: effectful call
    chained = relay(machine.nvm)   # finding: transitive effect
    return direct + chained
