"""STAR004 fixture: a metric name missing from the catalogue.

``nvm.meta_wrytes`` is a typo for ``nvm.meta_writes``; uncatalogued
names silently vanish from every dashboard and export.
"""


def account(stats):
    stats.add("nvm.meta_wrytes")
