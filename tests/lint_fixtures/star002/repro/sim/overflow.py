"""STAR002 fixture: a constant that busts the paper's bit budget.

``lsbs`` is a 10-bit field (the minor counter); ``1 << 12`` cannot
fit and silently wraps in the real encoder.
"""

lsbs = 1 << 12
