"""STAR006 fixture, batch side: mirrors ``geometry``, exempts
``config``, and knows nothing about ``_synthetic_hist``."""

SCALAR_PARITY_EXEMPT = frozenset({
    "config",  # construction-time wiring only
})


class EpochEngine:
    __slots__ = ("geometry",)

    def __init__(self, ctrl):
        self.geometry = ctrl.geometry

    def run(self, ops):
        return [self.geometry.node_of(op) for op in ops]
