"""STAR006 fixture, scalar side: a controller with a drifted field.

``_synthetic_hist`` is touched by the scalar hot path but neither
mirrored in the sibling batch fixture nor listed in its
``SCALAR_PARITY_EXEMPT`` roster — the drift the rule must flag.
``geometry`` is mirrored and ``config`` is exempted, so neither may
be reported.
"""


class SecureMemoryController:
    def __init__(self, config, geometry):
        self.config = config
        self.geometry = geometry
        self._synthetic_hist = {}

    def write_data(self, address, value):
        self._synthetic_hist[address] = value
        return self.geometry.node_of(address)
