"""Crash-recovery correctness and attack detection (Sections III-B/E/F).

The central invariants:

* after any write history and a crash at any point, STAR restores every
  stale metadata line to exactly its pre-crash cached value and the
  cache-tree verification passes;
* any tampering with recovery-related NVM state (stale MSBs, child
  LSB/MAC tuples, replayed old tuples, bitmap lines) makes verification
  fail.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.errors import VerificationError
from repro.sim.crash import Attacker
from repro.sim.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS, make_workload

from conftest import run_small_workload


def crashed_star_machine(workload="hash", operations=200, seed=7):
    machine = Machine(small_config(), scheme="star")
    run_small_workload(machine, workload, operations=operations, seed=seed)
    machine.crash()
    return machine


class TestRoundTrip:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_every_workload_recovers_exactly(self, workload):
        machine = Machine(small_config(), scheme="star")
        operations = 60 if workload == "tpcc" else 150
        run_small_workload(machine, workload, operations=operations)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert report.verified
        assert machine.oracle_check(report)
        assert report.stale_lines == len(machine.pre_crash_dirty)

    def test_recovery_restores_nvm_images(self):
        machine = crashed_star_machine()
        dirty = dict(machine.pre_crash_dirty)
        machine.recover(raise_on_failure=True)
        for line, counters in dirty.items():
            image = machine.nvm.peek_meta(line)
            assert image is not None
            assert image.counters == counters

    def test_recovered_state_verifies_on_reuse(self):
        """After recovery a fresh controller can keep reading/writing."""
        machine = crashed_star_machine()
        machine.recover(raise_on_failure=True)
        fresh = Machine(
            machine.config, scheme="star",
            registers=machine.registers, nvm=machine.nvm,
        )
        # reads of previously-written lines verify against the
        # recovered metadata
        for line in range(0, 64, 8):
            fresh.controller.read_data(line)

    def test_crash_with_clean_cache_recovers_empty(self):
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, operations=60)
        machine.controller.flush_metadata_cache()
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert report.stale_lines == 0
        assert machine.oracle_check(report)

    def test_crash_without_any_traffic(self):
        machine = Machine(small_config(), scheme="star")
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert report.stale_lines == 0

    def test_recovery_reads_about_ten_lines_per_stale_node(self):
        """The Fig. 14(b) cost model: ~10 reads + 1 write per node,
        plus one counted write per non-zero index line zeroed."""
        machine = crashed_star_machine(operations=300)
        report = machine.recover(raise_on_failure=True)
        assert report.stale_lines > 10
        per_node = report.nvm_reads / report.stale_lines
        assert 8.0 <= per_node <= 12.0
        assert report.ra_lines_cleared > 0
        assert report.nvm_writes == (
            report.stale_lines + report.ra_lines_cleared
        )

    def test_clearing_writes_only_visited_index_lines(self):
        """The clearing pass rewrites exactly the non-zero RA lines the
        locate walk read — never the whole index (Section III-F)."""
        machine = crashed_star_machine(operations=300)
        index = machine.scheme.bitmap.index
        in_nvm_lines = sum(
            1 for key in index.all_lines()
            if not index.is_on_chip(key[0])
        )
        report = machine.recover(raise_on_failure=True)
        assert 0 < report.ra_lines_cleared < in_nvm_lines
        # every cleared line really is zero afterwards
        for key in index.all_lines():
            if not index.is_on_chip(key[0]):
                assert machine.nvm.peek_ra(key) == 0

    def test_recovery_time_uses_100ns_per_line(self):
        machine = crashed_star_machine()
        report = machine.recover()
        assert report.recovery_time_ns == pytest.approx(
            report.line_accesses * 100.0
        )

    def test_counter_drift_across_lsb_boundary_recovers(self):
        """Writes that push counters past a 2^10 boundary still recover
        exactly (forced flush keeps MSBs fresh)."""
        machine = Machine(small_config(), scheme="star")
        for _ in range(1300):
            machine.controller.write_data(0)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)

    def test_recovery_is_idempotent(self):
        """A second recovery pass (e.g. after a crash *during* the
        reboot, before any new writes) finds nothing stale and still
        verifies: the index and root register were re-armed."""
        machine = crashed_star_machine(operations=120)
        machine.recover(raise_on_failure=True)
        machine.crashed = True  # immediately lose power again
        report = machine.recover(raise_on_failure=True)
        assert report.stale_lines == 0
        assert report.verified

    def test_second_crash_after_recovery(self):
        """Crash, recover, run again, crash again."""
        machine = crashed_star_machine(operations=120)
        machine.recover(raise_on_failure=True)
        # resume work on the same NVM with a fresh controller state
        resumed = Machine(
            machine.config, scheme="star",
            registers=machine.registers, nvm=machine.nvm,
        )
        for line in range(0, 128, 8):
            resumed.controller.write_data(line)
        resumed.crash()
        report = resumed.recover(raise_on_failure=True)
        assert resumed.oracle_check(report)


class TestBatteryFailure:
    def test_dead_adr_battery_fails_safe(self):
        """If the ADR battery flush never happens, the bitmap in the RA
        understates the stale set — recovery then restores too little
        and the cache-tree root mismatch reports it, rather than
        silently accepting a half-recovered machine."""
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, "hash", operations=200, seed=7)
        # a crash whose battery is dead: skip the scheme's ADR flush
        machine.registers.cache_tree_root = (
            machine.controller.compute_cache_tree_root()
        )
        machine.pre_crash_dirty = {
            line.addr: tuple(line.payload.counters)
            for line in machine.controller.meta_cache.dirty_lines()
        }
        machine.controller.meta_cache.clear()
        machine.hierarchy.drop()
        machine.crashed = True
        report = machine.recover()
        if machine.pre_crash_dirty:
            # stale lines whose bitmap bits were lost go unrestored:
            # detected by verification
            assert report.stale_lines < len(machine.pre_crash_dirty)
            assert not report.verified


class TestAttackDetection:
    def test_tampered_stale_msbs_detected(self):
        machine = crashed_star_machine()
        line = next(iter(machine.pre_crash_dirty))
        attacker = Attacker(machine.nvm)
        assert attacker.corrupt_meta_counter(line, slot=0, delta=1 << 10)
        report = machine.recover()
        assert not report.verified

    def test_tampered_child_lsbs_detected(self):
        machine = Machine(small_config(), scheme="star")
        machine.controller.write_data(0)
        machine.crash()
        attacker = Attacker(machine.nvm)
        assert attacker.corrupt_data_lsbs(0, flip=1)
        report = machine.recover()
        assert not report.verified

    def test_replayed_child_tuple_detected(self):
        """Section III-E's replay: an old (data, MAC, LSB) tuple is
        internally consistent, so only the cache-tree can catch it."""
        machine = Machine(small_config(), scheme="star")
        machine.controller.write_data(0, b"\x01" * 64)
        attacker = Attacker(machine.nvm)
        attacker.snapshot_data_line(0)
        machine.controller.write_data(0, b"\x02" * 64)
        machine.crash()
        assert attacker.replay_data_line(0)
        report = machine.recover()
        assert not report.verified

    def test_replayed_metadata_child_detected(self):
        """Replaying an old-but-consistent child node image corrupts
        the reconstruction of its stale parent."""
        machine = Machine(small_config(), scheme="star")
        controller = machine.controller
        cb_id = controller.geometry.counter_block_for(0)
        cb_line = controller.geometry.meta_index(cb_id)
        parent_line = controller.geometry.meta_index(
            controller.geometry.parent_of(cb_id)
        )
        attacker = Attacker(machine.nvm)
        # persist the counter block once (parent counter = 1, dirty)
        controller.write_data(0)
        controller.persist_metadata_line(cb_id)
        attacker.snapshot_meta_line(cb_line)
        # persist it again (parent counter = 2, still dirty in cache)
        controller.write_data(0)
        controller.persist_metadata_line(cb_id)
        machine.crash()
        assert parent_line in machine.pre_crash_dirty
        assert cb_line not in machine.pre_crash_dirty
        assert attacker.replay_meta_line(cb_line)
        report = machine.recover()
        assert not report.verified

    def test_bitmap_tamper_hiding_a_stale_line_detected(self):
        machine = crashed_star_machine()
        scheme = machine.scheme
        index = scheme.bitmap.index
        line = next(iter(machine.pre_crash_dirty))
        l1_line, bit = index.l1_position(line)
        attacker = Attacker(machine.nvm)
        if index.is_on_chip(1):
            pytest.skip("single-layer index lives on chip")
        attacker.corrupt_bitmap_line((1, l1_line), flip_bit=bit)
        report = machine.recover()
        assert not report.verified

    def test_bitmap_tamper_faking_a_stale_line_detected(self):
        machine = crashed_star_machine()
        scheme = machine.scheme
        index = scheme.bitmap.index
        # find a metadata line that is NOT stale but was touched
        stale = set(machine.pre_crash_dirty)
        candidate = None
        total = machine.controller.geometry.total_nodes
        for line in range(total):
            if line not in stale and machine.nvm.meta_is_touched(line):
                candidate = line
                break
        if candidate is None:
            pytest.skip("no touched non-stale line in this trace")
        l1_line, bit = index.l1_position(candidate)
        if index.is_on_chip(1):
            pytest.skip("single-layer index lives on chip")
        Attacker(machine.nvm).corrupt_bitmap_line((1, l1_line),
                                                  flip_bit=bit)
        report = machine.recover()
        assert not report.verified

    def test_raise_on_failure_raises(self):
        machine = crashed_star_machine()
        line = next(iter(machine.pre_crash_dirty))
        Attacker(machine.nvm).corrupt_meta_counter(line, 0, delta=1024)
        with pytest.raises(VerificationError):
            machine.recover(raise_on_failure=True)

    def test_untampered_recovery_still_verifies(self):
        """Attacker helpers returning False mean a no-op replay."""
        machine = Machine(small_config(), scheme="star")
        machine.controller.write_data(0)
        attacker = Attacker(machine.nvm)
        attacker.snapshot_data_line(0)
        machine.crash()
        assert not attacker.replay_data_line(0)  # identical tuple
        report = machine.recover(raise_on_failure=True)
        assert report.verified


@given(
    writes=st.lists(st.integers(min_value=0, max_value=511),
                    min_size=1, max_size=120),
)
@settings(max_examples=40, deadline=None)
def test_fuzzed_write_history_recovers_exactly(writes):
    """Crash-recovery round-trip under arbitrary write histories."""
    machine = Machine(small_config(), scheme="star")
    for line in writes:
        machine.controller.write_data(line)
    machine.crash()
    report = machine.recover(raise_on_failure=True)
    assert machine.oracle_check(report)
    assert report.stale_lines == len(machine.pre_crash_dirty)


@given(
    operations=st.integers(min_value=1, max_value=150),
    seed=st.integers(min_value=0, max_value=2 ** 16),
    workload=st.sampled_from(["hash", "array", "queue"]),
)
@settings(max_examples=25, deadline=None)
def test_fuzzed_workload_prefix_recovers(operations, seed, workload):
    """Crashing after any prefix of a workload still recovers."""
    machine = Machine(small_config(), scheme="star")
    bench = make_workload(
        workload, machine.config.num_data_lines,
        operations=operations, seed=seed,
    )
    machine.run(bench.ops())
    machine.crash()
    report = machine.recover(raise_on_failure=True)
    assert machine.oracle_check(report)
