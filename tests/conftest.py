"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import small_config
from repro.sim.machine import Machine
from repro.workloads.registry import make_workload


@pytest.fixture
def cfg():
    """A tiny machine: deep evictions with short traces."""
    return small_config()


@pytest.fixture
def star_machine(cfg):
    return Machine(cfg, scheme="star")


def run_small_workload(machine: Machine, name: str = "hash",
                       operations: int = 200, seed: int = 7) -> None:
    """Drive a short workload through a machine (shared helper)."""
    workload = make_workload(
        name, machine.config.num_data_lines,
        operations=operations, seed=seed,
    )
    machine.run(workload.ops())
