"""Tests for the analytic recovery-time projection (Fig. 14b model)."""

import pytest

from repro.sim.projection import (
    ANUBIS_ACCESSES_PER_CACHE_LINE,
    PAPER_LINE_ACCESS_NS,
    STAR_ACCESSES_PER_STALE_LINE,
    project,
    project_anubis_seconds,
    project_star_seconds,
)

FOUR_MB = 4 * 1024 * 1024


class TestPaperNumbers:
    def test_star_4mb_matches_paper(self):
        """dirty ~78%, 11 accesses/node, 100 ns -> ~0.056 s (paper:
        'STAR needs 0.05s to recover ... a 4MB metadata cache')."""
        seconds = project_star_seconds(FOUR_MB, dirty_fraction=0.78)
        assert seconds == pytest.approx(0.056, rel=0.03)

    def test_anubis_4mb_matches_paper(self):
        """3 accesses per slot for 65536 slots -> ~0.02 s."""
        seconds = project_anubis_seconds(FOUR_MB)
        assert seconds == pytest.approx(0.0197, rel=0.02)

    def test_star_to_anubis_ratio(self):
        """Paper: 'STAR needs about 2.5x recovery time than Anubis'."""
        projection = project(FOUR_MB, dirty_fraction=0.78)
        ratio = projection.star_seconds / projection.anubis_seconds
        assert 2.0 <= ratio <= 3.5

    def test_both_negligible_vs_self_test(self):
        projection = project(FOUR_MB, dirty_fraction=1.0)
        assert projection.star_seconds < 0.1
        assert projection.anubis_seconds < 0.1


class TestModelStructure:
    def test_linear_in_cache_size(self):
        small = project_anubis_seconds(FOUR_MB)
        large = project_anubis_seconds(2 * FOUR_MB)
        assert large == pytest.approx(2 * small)

    def test_star_linear_in_dirty_fraction(self):
        half = project_star_seconds(FOUR_MB, 0.4)
        full = project_star_seconds(FOUR_MB, 0.8)
        assert full == pytest.approx(2 * half)

    def test_star_zero_dirty_is_instant(self):
        assert project_star_seconds(FOUR_MB, 0.0) == 0.0

    def test_anubis_independent_of_dirtiness(self):
        """Anubis cannot exploit a clean cache — the contrast STAR's
        bitmap lines exist to create."""
        assert project(FOUR_MB, 0.1).anubis_seconds == \
            project(FOUR_MB, 0.9).anubis_seconds

    def test_dirty_fraction_validated(self):
        with pytest.raises(ValueError):
            project_star_seconds(FOUR_MB, 1.5)

    def test_constants_match_paper_model(self):
        assert PAPER_LINE_ACCESS_NS == 100.0
        assert STAR_ACCESSES_PER_STALE_LINE == 11.0
        assert ANUBIS_ACCESSES_PER_CACHE_LINE == 3.0

    def test_projection_lines_property(self):
        assert project(FOUR_MB, 0.5).cache_lines == 65536
