"""Unit tests for the CPU cache hierarchy."""

import pytest

from repro.config import CacheConfig
from repro.mem.hierarchy import CacheHierarchy


def tiny_hierarchy(levels=2) -> CacheHierarchy:
    configs = [
        CacheConfig(size_bytes=2 * 64 * 2, ways=2),       # 4 lines
        CacheConfig(size_bytes=4 * 64 * 2, ways=2),       # 8 lines
        CacheConfig(size_bytes=8 * 64 * 2, ways=2),       # 16 lines
    ]
    return CacheHierarchy(configs[:levels])


class TestReads:
    def test_first_read_misses_to_memory(self):
        hierarchy = tiny_hierarchy()
        event = hierarchy.access(0, is_write=False)
        assert event.hit_level is None
        assert event.fills == 1

    def test_second_read_hits_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=False)
        event = hierarchy.access(0, is_write=False)
        assert event.hit_level == 0
        assert event.fills == 0

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = tiny_hierarchy()
        # 0, 2, 6 share L1 set 0 (2 sets); in L2 (4 sets) 2 and 6 share
        # set 2 while 0 stays alone in set 0 and survives
        hierarchy.access(0, is_write=False)
        hierarchy.access(2, is_write=False)
        hierarchy.access(6, is_write=False)
        event = hierarchy.access(0, is_write=False)
        assert event.hit_level == 1

    def test_stats_track_hits_and_misses(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=False)
        hierarchy.access(0, is_write=False)
        assert hierarchy.stats["cpu.read_misses"] == 1
        assert hierarchy.stats["cpu.read_hits"] == 1

    def test_rejects_empty_hierarchy(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestPersistentWrites:
    def test_writes_through(self):
        hierarchy = tiny_hierarchy()
        event = hierarchy.access(0, is_write=True, persistent=True)
        assert event.persists == [0]

    def test_installs_clean(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=True, persistent=True)
        event = hierarchy.access(0, is_write=False)
        assert event.hit_level == 0

    def test_no_writeback_on_later_eviction(self):
        hierarchy = tiny_hierarchy(levels=1)
        hierarchy.access(0, is_write=True, persistent=True)
        event1 = hierarchy.access(4, is_write=False)
        event2 = hierarchy.access(8, is_write=False)
        assert event1.writebacks == [] and event2.writebacks == []

    def test_write_clears_scratch_dirtiness(self):
        hierarchy = tiny_hierarchy(levels=1)
        hierarchy.access(0, is_write=True, persistent=False)
        hierarchy.access(0, is_write=True, persistent=True)
        hierarchy.access(4, is_write=False)
        event = hierarchy.access(8, is_write=False)
        assert event.writebacks == []


class TestScratchWrites:
    def test_no_immediate_memory_write(self):
        hierarchy = tiny_hierarchy()
        event = hierarchy.access(0, is_write=True, persistent=False)
        assert event.persists == []
        assert event.fills == 1  # write-allocate

    def test_dirty_line_written_back_from_llc(self):
        hierarchy = tiny_hierarchy(levels=1)
        hierarchy.access(0, is_write=True, persistent=False)
        hierarchy.access(4, is_write=False)
        event = hierarchy.access(8, is_write=False)
        assert event.writebacks == [0]
        assert hierarchy.stats["cpu.llc_writebacks"] == 1

    def test_dirty_line_spills_to_next_level_first(self):
        hierarchy = tiny_hierarchy(levels=2)
        hierarchy.access(0, is_write=True, persistent=False)
        hierarchy.access(2, is_write=False)
        event = hierarchy.access(6, is_write=False)
        # evicted dirty line lands in L2 (where it still resides from
        # the fill), not memory
        assert event.writebacks == []


class TestDrop:
    def test_drop_loses_everything(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=False)
        hierarchy.drop()
        event = hierarchy.access(0, is_write=False)
        assert event.hit_level is None
