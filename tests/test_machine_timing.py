"""Unit tests for the machine, timing and energy models."""

import pytest

from repro.config import CPUConfig, NVMTimings, small_config
from repro.errors import RecoveryError
from repro.sim.energy import energy_from_stats
from repro.sim.machine import Machine
from repro.sim.timing import TimingModel
from repro.util.stats import Stats
from repro.workloads.trace import Op, OpKind

from conftest import run_small_workload


class TestTimingModel:
    def setup_method(self):
        self.timing = TimingModel(CPUConfig(), NVMTimings())

    def test_instructions_advance_time(self):
        self.timing.advance_instructions(1000)
        assert self.timing.instructions == 1000
        assert self.timing.now_ns > 0

    def test_negative_instructions_rejected(self):
        with pytest.raises(ValueError):
            self.timing.advance_instructions(-1)

    def test_cache_hit_latency_by_level(self):
        before = self.timing.now_ns
        self.timing.cache_hit(0)
        l1 = self.timing.now_ns - before
        self.timing.cache_hit(2)
        llc = self.timing.now_ns - before - l1
        assert llc > l1

    def test_memory_reads_stall(self):
        self.timing.memory_reads(2)
        assert self.timing.read_stall_ns == pytest.approx(2 * 63.0)

    def test_zero_reads_free(self):
        self.timing.memory_reads(0)
        assert self.timing.now_ns == 0

    def test_writes_fill_queue_then_stall(self):
        cpu = CPUConfig(write_queue_entries=2, write_ports=1)
        timing = TimingModel(cpu, NVMTimings())
        timing.memory_writes(2)
        assert timing.write_stall_ns == 0
        timing.memory_writes(1)
        assert timing.write_stall_ns > 0

    def test_persist_barrier_waits_for_drain(self):
        self.timing.memory_writes(3)
        before = self.timing.now_ns
        self.timing.persist_barrier()
        assert self.timing.now_ns - before >= 3 * 300.0

    def test_barrier_on_empty_queue_costs_fence_only(self):
        before = self.timing.now_ns
        self.timing.persist_barrier()
        assert self.timing.now_ns - before == pytest.approx(
            CPUConfig().sfence_ns
        )

    def test_ipc_definition(self):
        self.timing.advance_instructions(2000)
        assert self.timing.ipc == pytest.approx(
            self.timing.instructions / self.timing.cycles
        )

    def test_ipc_zero_when_idle(self):
        assert self.timing.ipc == 0.0


class TestEnergyModel:
    def test_traffic_energy(self):
        stats = Stats()
        stats.add("nvm.data_reads", 4)
        stats.add("nvm.meta_writes", 2)
        energy = energy_from_stats(stats, NVMTimings())
        assert energy.read_nj == pytest.approx(4 * 0.5)
        assert energy.write_nj == pytest.approx(2 * 2.5)

    def test_static_energy_scales_with_time(self):
        stats = Stats()
        short = energy_from_stats(stats, NVMTimings(), elapsed_ns=1000)
        long = energy_from_stats(stats, NVMTimings(), elapsed_ns=2000)
        assert long.static_nj == pytest.approx(2 * short.static_nj)

    def test_total(self):
        stats = Stats()
        stats.add("nvm.st_writes", 1)
        energy = energy_from_stats(stats, NVMTimings(), elapsed_ns=100)
        assert energy.total_nj == pytest.approx(
            energy.write_nj + energy.static_nj
        )


class TestMachineLifecycle:
    def test_apply_after_crash_rejected(self):
        machine = Machine(small_config(), scheme="star")
        machine.crash()
        with pytest.raises(RecoveryError):
            machine.apply(Op(OpKind.READ, 0))

    def test_double_crash_rejected(self):
        machine = Machine(small_config(), scheme="star")
        machine.crash()
        with pytest.raises(RecoveryError):
            machine.crash()

    def test_recover_without_crash_rejected(self):
        machine = Machine(small_config(), scheme="star")
        with pytest.raises(RecoveryError):
            machine.recover()

    def test_crash_latches_cache_tree_root(self):
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, operations=40)
        expected = machine.controller.compute_cache_tree_root()
        machine.crash()
        assert machine.registers.cache_tree_root == expected

    def test_crash_drops_volatile_state(self):
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, operations=40)
        machine.crash()
        assert len(machine.controller.meta_cache) == 0

    def test_recovery_traffic_separated_from_runtime(self):
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, operations=60)
        runtime_writes = machine.nvm.total_writes()
        machine.crash()
        report = machine.recover()
        assert machine.stats["nvm.meta_writes"] + \
            machine.stats["nvm.data_writes"] + \
            machine.stats["nvm.ra_writes"] == runtime_writes
        # recovery writes = restored-node write-backs + the counted
        # zeroing of the non-zero index lines found during locate
        assert machine.recovery_stats["nvm.meta_writes"] + \
            machine.recovery_stats["nvm.ra_writes"] == report.nvm_writes
        assert machine.recovery_stats["nvm.ra_writes"] == \
            report.ra_lines_cleared


class TestMachineResult:
    def test_result_fields_populated(self):
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, operations=60)
        result = machine.result("hash")
        assert result.scheme == "star"
        assert result.workload == "hash"
        assert result.instructions > 0
        assert result.ipc > 0
        assert result.energy_nj > 0
        assert result.nvm_writes == machine.nvm.total_writes()

    def test_persist_ops_slow_the_run(self):
        """A trace with barriers takes longer than one without."""
        config = small_config()
        with_barriers = Machine(config, scheme="wb")
        without = Machine(config, scheme="wb")
        ops = [Op(OpKind.WRITE, line, 100) for line in range(0, 256, 8)]
        barriers = []
        for op in ops:
            barriers.extend([op, Op(OpKind.PERSIST, 0, 0)])
        with_barriers.run(barriers)
        without.run(ops)
        assert with_barriers.timing.now_ns > without.timing.now_ns

    def test_read_hits_do_not_touch_memory(self):
        machine = Machine(small_config(), scheme="wb")
        machine.run([Op(OpKind.READ, 0, 10), Op(OpKind.READ, 0, 10)])
        assert machine.stats["cpu.read_hits"] == 1
        assert machine.stats["nvm.data_reads"] == 1

    def test_scratch_writes_reach_memory_via_eviction(self):
        machine = Machine(small_config(), scheme="wb")
        ops = [Op(OpKind.WRITE, line, 10, persistent=False)
               for line in range(0, 8192, 8)]
        machine.run(ops)
        assert machine.stats["cpu.llc_writebacks"] > 0
        assert machine.stats["nvm.data_writes"] > 0
