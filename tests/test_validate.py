"""Tests for the machine-state auditor."""

from dataclasses import replace

from repro.config import small_config
from repro.sim.machine import Machine
from repro.sim.validate import audit_machine

from conftest import run_small_workload


class TestCleanMachines:
    def test_fresh_machine_is_consistent(self):
        assert audit_machine(Machine(small_config(), "star")) == []

    def test_machine_after_workload_is_consistent(self):
        machine = Machine(small_config(), "star")
        run_small_workload(machine, "hash", operations=250)
        assert audit_machine(machine) == []

    def test_machine_after_flush_is_consistent(self):
        machine = Machine(small_config(), "star")
        run_small_workload(machine, "btree", operations=150)
        machine.controller.flush_metadata_cache()
        assert audit_machine(machine) == []

    def test_recovered_machine_is_consistent(self):
        machine = Machine(small_config(), "star")
        run_small_workload(machine, "hash", operations=150)
        machine.crash()
        machine.recover(raise_on_failure=True)
        rebooted = Machine(machine.config, "star",
                           registers=machine.registers, nvm=machine.nvm)
        run_small_workload(rebooted, "array", operations=60)
        assert audit_machine(rebooted) == []

    def test_every_scheme_is_consistent(self):
        for scheme in ("wb", "strict", "anubis", "star", "phoenix"):
            machine = Machine(small_config(), scheme)
            run_small_workload(machine, "queue", operations=120)
            assert audit_machine(machine) == [], scheme


class TestViolationsDetected:
    def test_tampered_nvm_image_reported(self):
        machine = Machine(small_config(), "star")
        machine.controller.write_data(0)
        machine.controller.flush_metadata_cache()
        line = next(iter(machine.nvm._meta))
        image = machine.nvm.peek_meta(line)
        counters = list(image.counters)
        counters[0] += 1
        machine.nvm.tamper_meta(
            line, replace(image, counters=tuple(counters))
        )
        machine.controller.meta_cache.clear()
        findings = audit_machine(machine)
        assert any("fails verification" in finding
                   for finding in findings)

    def test_corrupted_dirty_bit_reported(self):
        machine = Machine(small_config(), "star")
        machine.controller.write_data(0)
        # force a bogus clean bit on a modified node
        for line in machine.controller.meta_cache.dirty_lines():
            line.dirty = False
            break
        findings = audit_machine(machine)
        assert any("clean but differs" in finding
                   for finding in findings)

    def test_bitmap_divergence_reported(self):
        machine = Machine(small_config(), "star")
        machine.controller.write_data(0)
        dirty_line = next(
            iter(machine.controller.meta_cache.dirty_lines())
        )
        machine.scheme.bitmap.mark_fresh(dirty_line.addr)
        findings = audit_machine(machine)
        assert any("bitmap bit" in finding for finding in findings)


class TestAdrConsistency:
    """The §III-C ADR/recovery-area invariant (satellite #1)."""

    @staticmethod
    def _spilling_machine():
        """A machine driven until its ADR has actually spilled."""
        machine = Machine(small_config(), "star")
        run_small_workload(machine, "hash", operations=400)
        adr = machine.scheme.bitmap.adr
        if not adr.spilled:  # defensive: force a spill deterministically
            for line in range(machine.config.num_data_lines):
                machine.controller.write_data(line)
                if adr.spilled:
                    break
        assert adr.spilled, "workload never spilled the ADR"
        return machine

    def test_spilled_tracking_is_audit_clean(self):
        machine = self._spilling_machine()
        assert audit_machine(machine) == []

    def test_resident_and_spilled_reported(self):
        machine = self._spilling_machine()
        adr = machine.scheme.bitmap.adr
        resident_key = next(iter(adr.items()))[0]
        adr.spilled.add(resident_key)
        findings = audit_machine(machine)
        assert any("also claimed spilled" in finding
                   for finding in findings)

    def test_spilled_without_ra_copy_reported(self):
        machine = self._spilling_machine()
        adr = machine.scheme.bitmap.adr
        phantom = (0, 10 ** 9)  # never written to the recovery area
        assert not machine.nvm.ra_is_touched(phantom)
        adr.spilled.add(phantom)
        findings = audit_machine(machine)
        assert any("no recovery-area copy" in finding
                   for finding in findings)

    def test_reload_clears_spilled(self):
        machine = self._spilling_machine()
        adr = machine.scheme.bitmap.adr
        key = next(iter(adr.spilled))
        adr.load(key)
        assert key not in adr.spilled
        assert key in adr
        assert audit_machine(machine) == []
