"""Smoke tests at the paper's exact Table I configuration.

The sparse NVM makes the 16 GB machine cheap to *hold*; these tests
prove the full-scale geometry actually works end to end (the
experiments run at the documented 1/256 scale for wall-clock reasons,
not because anything breaks at full size).
"""

from repro.config import paper_config
from repro.mem.layout import MemoryLayout
from repro.sim.machine import Machine


class TestPaperScaleMachine:
    def test_geometry_matches_table1(self):
        layout = MemoryLayout.from_config(paper_config())
        assert layout.num_data_lines == 2 ** 28
        assert layout.geometry.num_levels == 9       # "SIT: 9 levels"
        assert layout.num_index_layers == 3          # Section III-D
        # "Multi-layer index: 4MB in NVM" (Table I) — the paper rounds
        # from the ~2GB of counter blocks; covering the full 2.45GB of
        # metadata (all 9 levels) needs 4.6MB, still 1/512 of it
        assert 3.9 * 1024 ** 2 < layout.recovery_area_bytes \
            < 5.0 * 1024 ** 2
        ratio = layout.recovery_area_bytes / layout.metadata_bytes
        assert abs(ratio - 1 / 512) < 1 / 5000

    def test_write_crash_recover_at_full_scale(self):
        machine = Machine(paper_config(), scheme="star")
        # touch lines spread across the 16 GB space, including the
        # very last line
        lines = [0, 2 ** 20, 2 ** 27, 2 ** 28 - 1]
        for line in lines:
            machine.controller.write_data(line, b"\x5A" * 64)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)
        rebooted = Machine(paper_config(), scheme="star",
                           registers=machine.registers,
                           nvm=machine.nvm)
        for line in lines:
            assert rebooted.controller.read_data(line) == b"\x5A" * 64

    def test_all_schemes_boot_at_full_scale(self):
        for scheme in ("wb", "strict", "anubis", "star", "phoenix"):
            machine = Machine(paper_config(), scheme=scheme)
            machine.controller.write_data(12345)
            machine.controller.read_data(12345)
