"""Unit + property tests for the write-pending queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.writequeue import WritePendingQueue


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WritePendingQueue(0, 100.0)

    def test_rejects_zero_service(self):
        with pytest.raises(ValueError):
            WritePendingQueue(4, 0.0)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            WritePendingQueue(4, 100.0, ports=0)


class TestSinglePort:
    def test_first_write_no_stall(self):
        queue = WritePendingQueue(4, 100.0)
        stall, completion = queue.enqueue(0.0)
        assert stall == 0.0
        assert completion == 100.0

    def test_serialized_service(self):
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(0.0)
        _stall, completion = queue.enqueue(0.0)
        assert completion == 200.0

    def test_full_queue_stalls(self):
        queue = WritePendingQueue(2, 100.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        stall, _completion = queue.enqueue(0.0)
        assert stall == 100.0  # waits for the first completion

    def test_retirement_frees_capacity(self):
        queue = WritePendingQueue(2, 100.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        stall, _completion = queue.enqueue(250.0)
        assert stall == 0.0

    def test_drain_time(self):
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(0.0)
        queue.enqueue(0.0)
        assert queue.drain_time(0.0) == 200.0
        assert queue.drain_time(150.0) == 50.0
        assert queue.drain_time(500.0) == 0.0

    def test_reset(self):
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(0.0)
        queue.reset()
        assert len(queue) == 0
        assert queue.drain_time(0.0) == 0.0


class TestMultiPort:
    def test_parallel_service(self):
        queue = WritePendingQueue(8, 100.0, ports=2)
        _s1, c1 = queue.enqueue(0.0)
        _s2, c2 = queue.enqueue(0.0)
        _s3, c3 = queue.enqueue(0.0)
        assert c1 == 100.0
        assert c2 == 100.0  # second bank
        assert c3 == 200.0  # waits for a bank

    def test_more_ports_drain_faster(self):
        slow = WritePendingQueue(16, 100.0, ports=1)
        fast = WritePendingQueue(16, 100.0, ports=4)
        for _ in range(8):
            slow.enqueue(0.0)
            fast.enqueue(0.0)
        assert fast.drain_time(0.0) < slow.drain_time(0.0)


class TestMonotonicClock:
    """Out-of-order observation must fail loudly, not corrupt state.

    Every internal shortcut (``_retire`` popping left, the full-queue
    stall reading ``_completions[0]``, ``drain_time`` reading
    ``_completions[-1]``) assumes the completion deque is sorted, which
    only holds for non-decreasing ``now_ns``. An epoch pipeline that
    reordered timing-model calls would otherwise silently produce wrong
    barrier stalls — exactly the failure mode this guard pins down.
    """

    def test_enqueue_rejects_time_travel(self):
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(500.0)
        with pytest.raises(ValueError):
            queue.enqueue(499.0)

    def test_drain_time_rejects_time_travel(self):
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(500.0)
        with pytest.raises(ValueError):
            queue.drain_time(0.0)

    def test_equal_times_allowed(self):
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(500.0)
        queue.enqueue(500.0)
        assert queue.drain_time(500.0) == 200.0

    def test_reset_rewinds_the_clock(self):
        """A crash (reset) is the one sanctioned rewind."""
        queue = WritePendingQueue(4, 100.0)
        queue.enqueue(1000.0)
        queue.reset()
        stall, completion = queue.enqueue(0.0)
        assert stall == 0.0
        assert completion == 100.0


@given(st.lists(st.floats(min_value=0.0, max_value=50.0),
                max_size=100),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_completions_monotonic_and_stalls_nonnegative(gaps, ports):
    """Completion times never go backwards; stalls are never negative."""
    queue = WritePendingQueue(4, 30.0, ports=ports)
    now = 0.0
    last_completion = 0.0
    for gap in gaps:
        now += gap
        stall, completion = queue.enqueue(now)
        assert stall >= 0.0
        assert completion >= last_completion
        assert completion >= now
        last_completion = completion
        now += stall


@given(st.lists(st.floats(min_value=0.0, max_value=40.0),
                max_size=120),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_full_queue_stall_clears_exactly_one_slot(gaps, ports, capacity):
    """A full-queue stall lasts exactly until the oldest write retires,
    and occupancy never exceeds capacity — for any port count."""
    queue = WritePendingQueue(capacity, 30.0, ports=ports)
    now = 0.0
    for gap in gaps:
        now += gap
        occupancy_before = len(queue)
        assert occupancy_before <= capacity
        stall, _completion = queue.enqueue(now)
        if occupancy_before < capacity:
            assert stall == 0.0
        now += stall
        assert len(queue) <= capacity


@given(st.lists(st.floats(min_value=0.0, max_value=60.0),
                min_size=1, max_size=80),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_retire_at_deadline(gaps, ports):
    """Waiting exactly ``drain_time`` empties the queue — no residue,
    and a zero-length drain immediately after."""
    queue = WritePendingQueue(8, 25.0, ports=ports)
    now = 0.0
    for gap in gaps:
        now += gap
        stall, _completion = queue.enqueue(now)
        now += stall
    deadline = now + queue.drain_time(now)
    assert queue.drain_time(deadline) == 0.0
    assert len(queue) == 0


@given(st.lists(st.floats(min_value=0.0, max_value=50.0),
                max_size=60),
       st.lists(st.floats(min_value=0.0, max_value=50.0),
                max_size=60),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_reset_mid_run_restores_cold_behaviour(before, after, ports):
    """After a mid-run reset the queue behaves like a freshly built one,
    regardless of how much history preceded the crash."""
    queue = WritePendingQueue(4, 30.0, ports=ports)
    now = 0.0
    for gap in before:
        now += gap
        stall, _completion = queue.enqueue(now)
        now += stall
    queue.reset()
    fresh = WritePendingQueue(4, 30.0, ports=ports)
    now = 0.0
    for gap in after:
        now += gap
        assert queue.enqueue(now) == fresh.enqueue(now)
        stall = queue.drain_time(now)
        assert stall == fresh.drain_time(now)
        now += stall
