"""Tests for trace capture/replay."""

import gzip
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.errors import ReproError, TraceFormatError
from repro.sim.machine import Machine
from repro.workloads.capture import (
    format_op,
    load_trace,
    parse_op,
    read_trace,
    save_trace,
)
from repro.workloads.registry import make_workload
from repro.workloads.trace import Op, OpKind

op_strategy = st.builds(
    Op,
    kind=st.sampled_from(list(OpKind)),
    addr=st.integers(min_value=0, max_value=2 ** 40),
    instructions=st.integers(min_value=0, max_value=10 ** 6),
    persistent=st.booleans(),
)


class TestFormat:
    def test_read_format(self):
        assert format_op(Op(OpKind.READ, 5, 10)) == "R 5 10"

    def test_write_formats_persistence(self):
        assert format_op(Op(OpKind.WRITE, 5, 10, True)) == "W 5 10 p"
        assert format_op(Op(OpKind.WRITE, 5, 10, False)) == "W 5 10 s"

    def test_parse_rejects_garbage(self):
        for bad in ("", "X 1 2", "R 1", "R 1 2 3", "W 1 2 z",
                    "R one 2"):
            with pytest.raises(ValueError):
                parse_op(bad)

    @given(op_strategy)
    @settings(max_examples=200)
    def test_roundtrip_property(self, op):
        parsed = parse_op(format_op(op))
        assert parsed.kind == op.kind
        assert parsed.addr == op.addr
        assert parsed.instructions == op.instructions
        if op.kind is OpKind.WRITE:
            assert parsed.persistent == op.persistent


class TestTraceFormatError:
    def test_is_both_repro_and_value_error(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_op("X 1 2")
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)

    def test_read_trace_reports_line_number(self):
        stream = io.StringIO("# header\nR 1 2\n\nW 3 4 q\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(read_trace(stream))
        assert excinfo.value.line_number == 4
        assert "line 4" in str(excinfo.value)

    def test_load_trace_reports_source_file(self, tmp_path):
        path = tmp_path / "broken.trace"
        path.write_text("R 1 2\nR -5 2\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(load_trace(path))
        assert excinfo.value.source == str(path)
        assert excinfo.value.line_number == 2
        assert str(path) in str(excinfo.value)

    def test_malformed_gzip_trace_reports_line(self, tmp_path):
        path = tmp_path / "broken.trace.gz"
        with gzip.open(path, "wt", encoding="ascii") as handle:
            handle.write("R 1 2\nP 0 0 extra p\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(load_trace(path))
        assert excinfo.value.line_number == 2

    def test_specific_messages(self):
        cases = {
            "R one 2": "address is not an integer",
            "R 1 -2": "instruction gap must be non-negative",
            "Q 1 2": "unknown op code",
            "P 1 2 p": "only writes carry a persistence flag",
            "W 1 2 q": "bad write flag",
        }
        for line, fragment in cases.items():
            with pytest.raises(TraceFormatError) as excinfo:
                parse_op(line)
            assert fragment in str(excinfo.value), line


class TestFiles:
    def test_save_load_roundtrip(self, tmp_path):
        ops = [Op(OpKind.WRITE, 1, 2), Op(OpKind.PERSIST, 0, 3),
               Op(OpKind.READ, 4, 5)]
        path = tmp_path / "trace.txt"
        assert save_trace(ops, path, header="demo\ntwo lines") == 3
        assert list(load_trace(path)) == ops

    def test_gzip_roundtrip(self, tmp_path):
        ops = [Op(OpKind.READ, addr, 1) for addr in range(50)]
        path = tmp_path / "trace.txt.gz"
        save_trace(ops, path)
        assert list(load_trace(path)) == ops

    def test_comments_and_blanks_skipped(self):
        stream = io.StringIO("# header\n\nR 1 2\n  \n# more\nP 0 0\n")
        ops = list(read_trace(stream))
        assert [op.kind for op in ops] == [OpKind.READ, OpKind.PERSIST]

    def test_workload_capture_replays_identically(self, tmp_path):
        """A captured trace drives a machine to the same traffic as the
        live generator."""
        config = small_config()
        workload = make_workload("btree", config.num_data_lines,
                                 operations=60, seed=5)
        path = tmp_path / "btree.trace"
        save_trace(workload.ops(), path)

        live = Machine(config, scheme="star")
        fresh = make_workload("btree", config.num_data_lines,
                              operations=60, seed=5)
        live.run(fresh.ops())

        replayed = Machine(config, scheme="star")
        replayed.run(load_trace(path))

        assert replayed.stats.snapshot() == live.stats.snapshot()
        assert replayed.timing.now_ns == live.timing.now_ns
