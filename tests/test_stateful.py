"""Stateful property test: the secure machine against a plain model.

Hypothesis drives an arbitrary interleaving of encrypted writes, reads,
metadata flushes and crash-recovery cycles, checking after every step
that

* reads decrypt to exactly what a plain dict says was written,
* STAR's bitmap always mirrors the metadata cache's dirty bits,
* every crash recovers bit-exactly and verifies.

This is the library's strongest end-to-end invariant: confidentiality
+ integrity + crash consistency under adversarial schedules.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.config import small_config
from repro.sim.controller import ZERO_LINE
from repro.sim.machine import Machine

LINE_SPACE = 512


def _plaintext(token: int) -> bytes:
    return token.to_bytes(8, "big") * 8


class SecureMachineModel(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.machine = Machine(small_config(), scheme="star")
        self.model = {}
        self.crashes = 0

    @rule(line=st.integers(min_value=0, max_value=LINE_SPACE - 1),
          token=st.integers(min_value=0, max_value=2 ** 32 - 1))
    def write(self, line, token):
        self.machine.controller.write_data(line, _plaintext(token))
        self.model[line] = _plaintext(token)

    @rule(line=st.integers(min_value=0, max_value=LINE_SPACE - 1))
    def read(self, line):
        expected = self.model.get(line, ZERO_LINE)
        assert self.machine.controller.read_data(line) == expected

    @rule()
    def flush_metadata(self):
        self.machine.controller.flush_metadata_cache()
        assert self.machine.controller.meta_cache.dirty_count() == 0

    @rule(line=st.integers(min_value=0, max_value=LINE_SPACE - 1))
    def persist_one_counter_block(self, line):
        controller = self.machine.controller
        block = controller.geometry.counter_block_for(line)
        controller.persist_metadata_line(block)

    @rule()
    def crash_and_recover(self):
        machine = self.machine
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)
        self.crashes += 1
        # reboot on the surviving NVM + registers; data must persist
        self.machine = Machine(
            machine.config, scheme="star",
            registers=machine.registers, nvm=machine.nvm,
        )

    @invariant()
    def bitmap_mirrors_dirty_bits(self):
        machine = getattr(self, "machine", None)
        if machine is None or machine.crashed:
            return
        scheme = machine.scheme
        for cache_line in machine.controller.meta_cache.lines():
            assert scheme.bitmap.is_stale(cache_line.addr) == \
                cache_line.dirty

    @invariant()
    def dirty_fraction_sane(self):
        machine = getattr(self, "machine", None)
        if machine is None:
            return
        assert 0.0 <= machine.controller.dirty_fraction() <= 1.0


TestSecureMachineStateful = SecureMachineModel.TestCase
TestSecureMachineStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
