"""Tests for the star-run / star-trace command-line tools."""

import pytest

from repro.tools.run import main as run_main
from repro.tools.trace import main as trace_main


class TestStarTrace:
    def test_generate_then_info(self, tmp_path, capsys):
        path = tmp_path / "t.trace"
        assert trace_main([
            "generate", "--workload", "array", "--operations", "50",
            "--lines", "65536", "-o", str(path),
        ]) == 0
        assert path.exists()
        assert trace_main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "unique lines" in out
        assert "persists" in out

    def test_generate_threaded(self, tmp_path, capsys):
        path = tmp_path / "t.trace.gz"
        assert trace_main([
            "generate", "--workload", "hash", "--operations", "30",
            "--lines", "65536", "--threads", "2", "-o", str(path),
        ]) == 0
        assert trace_main(["info", str(path)]) == 0

    def test_info_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.trace"
        path.write_text("# nothing here\n")
        assert trace_main(["info", str(path)]) == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            trace_main([])


class TestStarRun:
    def test_basic_run(self, capsys):
        assert run_main([
            "--workload", "array", "--operations", "100",
            "--memory-mb", "8", "--cache-kb", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "NVM writes" in out
        assert "IPC" in out

    def test_crash_and_audit(self, capsys):
        assert run_main([
            "--workload", "hash", "--operations", "150", "--crash",
            "--audit", "--memory-mb", "8", "--cache-kb", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "audit: all invariants hold" in out
        assert "verified=True, exact=True" in out

    def test_threads(self, capsys):
        assert run_main([
            "--workload", "queue", "--operations", "40",
            "--threads", "4", "--memory-mb", "8", "--cache-kb", "8",
        ]) == 0
        assert "x4 threads" in capsys.readouterr().out

    def test_wear_leveling(self, capsys):
        assert run_main([
            "--workload", "array", "--operations", "200",
            "--wear-level", "20", "--memory-mb", "8",
            "--cache-kb", "8",
        ]) == 0

    def test_replay_trace(self, tmp_path, capsys):
        path = tmp_path / "r.trace"
        trace_main([
            "generate", "--workload", "btree", "--operations", "40",
            "--lines", "131072", "-o", str(path),
        ])
        capsys.readouterr()
        assert run_main([
            "--trace", str(path), "--scheme", "star",
            "--memory-mb", "8", "--cache-kb", "8", "--crash",
        ]) == 0
        assert "trace" in capsys.readouterr().out

    def test_scheme_choices(self):
        with pytest.raises(SystemExit):
            run_main(["--scheme", "bogus"])
