"""Unit tests for the NVM device model."""

from repro.mem.nvm import NVM
from repro.tree.node import DataLineImage, NodeImage


def _data(byte: int = 0) -> DataLineImage:
    return DataLineImage(ciphertext=bytes([byte]) * 64, mac=1, lsbs=2)


def _node() -> NodeImage:
    return NodeImage(counters=(1,) * 8, mac=3, lsbs=4)


class TestDataRegion:
    def test_unwritten_reads_none(self):
        assert NVM().read_data(5) is None

    def test_write_then_read(self):
        nvm = NVM()
        nvm.write_data(5, _data(1))
        assert nvm.read_data(5) == _data(1)

    def test_traffic_counted(self):
        nvm = NVM()
        nvm.write_data(1, _data())
        nvm.read_data(1)
        nvm.read_data(2)
        assert nvm.stats["nvm.data_writes"] == 1
        assert nvm.stats["nvm.data_reads"] == 2

    def test_peek_not_counted(self):
        nvm = NVM()
        nvm.write_data(1, _data())
        nvm.peek_data(1)
        assert nvm.stats["nvm.data_reads"] == 0


class TestMetaRegion:
    def test_untouched_reads_zero_image(self):
        nvm = NVM()
        image, touched = nvm.read_meta(9)
        assert not touched
        assert image == NodeImage.zero()

    def test_write_then_read(self):
        nvm = NVM()
        nvm.write_meta(9, _node())
        image, touched = nvm.read_meta(9)
        assert touched
        assert image == _node()

    def test_meta_is_touched(self):
        nvm = NVM()
        assert not nvm.meta_is_touched(9)
        nvm.write_meta(9, _node())
        assert nvm.meta_is_touched(9)


class TestRaAndSt:
    def test_ra_default_zero(self):
        assert NVM().read_ra((1, 0)) == 0

    def test_ra_write_read(self):
        nvm = NVM()
        nvm.write_ra((1, 3), 0xF0)
        assert nvm.read_ra((1, 3)) == 0xF0
        assert nvm.stats["nvm.ra_writes"] == 1
        assert nvm.stats["nvm.ra_reads"] == 1

    def test_flush_ra_not_counted(self):
        nvm = NVM()
        nvm.flush_ra((1, 0), 7)
        assert nvm.peek_ra((1, 0)) == 7
        assert nvm.stats["nvm.ra_writes"] == 0

    def test_st_write_read_clear(self):
        nvm = NVM()
        nvm.write_st(4, "entry")
        assert nvm.read_st(4) == "entry"
        assert nvm.st_slots() == [4]
        nvm.clear_st(4)
        assert nvm.read_st(4) is None

    def test_clear_st_missing_is_noop(self):
        NVM().clear_st(99)


class TestTamperInterface:
    def test_tamper_changes_content_without_traffic(self):
        nvm = NVM()
        nvm.write_data(1, _data(0))
        writes_before = nvm.total_writes()
        nvm.tamper_data(1, _data(9))
        assert nvm.peek_data(1) == _data(9)
        assert nvm.total_writes() == writes_before

    def test_tamper_meta_and_ra(self):
        nvm = NVM()
        nvm.tamper_meta(2, _node())
        nvm.tamper_ra((1, 1), 5)
        assert nvm.peek_meta(2) == _node()
        assert nvm.peek_ra((1, 1)) == 5
        assert nvm.total_writes() == 0


class TestAggregates:
    def test_totals_cover_all_regions(self):
        nvm = NVM()
        nvm.write_data(1, _data())
        nvm.write_meta(1, _node())
        nvm.write_ra((1, 0), 1)
        nvm.write_st(0, "e")
        nvm.read_data(1)
        nvm.read_meta(1)
        nvm.read_ra((1, 0))
        nvm.read_st(0)
        assert nvm.total_writes() == 4
        assert nvm.total_reads() == 4
