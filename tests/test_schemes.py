"""Unit tests for the persistence schemes' runtime behaviour."""

import pytest

from repro.config import small_config
from repro.errors import RecoveryError
from repro.schemes import SIT_SCHEMES, make_scheme
from repro.schemes.anubis import ShadowEntry
from repro.sim.machine import Machine

from conftest import run_small_workload


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        assert {"wb", "strict", "anubis", "star"} <= set(SIT_SCHEMES)
        assert "phoenix" in SIT_SCHEMES  # Section II-E concurrent work

    def test_make_scheme_by_name(self):
        assert make_scheme("star").name == "star"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("nope")


class TestWriteBack:
    def test_no_extra_traffic(self):
        machine = Machine(small_config(), scheme="wb")
        run_small_workload(machine)
        assert machine.stats["nvm.st_writes"] == 0
        assert machine.stats["nvm.ra_writes"] == 0

    def test_recovery_unsupported(self):
        machine = Machine(small_config(), scheme="wb")
        run_small_workload(machine, operations=30)
        machine.crash()
        with pytest.raises(RecoveryError):
            machine.recover()


class TestStrictPersistence:
    def test_nothing_dirty_after_any_write(self):
        machine = Machine(small_config(), scheme="strict")
        run_small_workload(machine, operations=60)
        assert machine.controller.meta_cache.dirty_count() == 0

    def test_write_amplification_near_tree_height(self):
        config = small_config()
        wb = Machine(config, scheme="wb")
        strict = Machine(config, scheme="strict")
        run_small_workload(wb, "array", operations=150)
        run_small_workload(strict, "array", operations=150)
        height = wb.controller.geometry.num_levels
        ratio = strict.nvm.total_writes() / wb.nvm.total_writes()
        assert 1.5 < ratio <= height + 1

    def test_recovery_is_trivial(self):
        machine = Machine(small_config(), scheme="strict")
        run_small_workload(machine, operations=40)
        machine.crash()
        report = machine.recover()
        assert report.stale_lines == 0
        assert report.verified
        assert machine.oracle_check(report)


class TestAnubis:
    def test_exactly_one_st_write_per_memory_write(self):
        """The defining 2x property (Section II-E / Fig. 11)."""
        machine = Machine(small_config(), scheme="anubis")
        run_small_workload(machine, "hash", operations=150)
        stats = machine.stats
        payload_writes = (
            stats["nvm.data_writes"] + stats["nvm.meta_writes"]
        )
        # persisting a top-level node modifies the on-chip root, which
        # needs no shadow entry; every other write is shadowed exactly
        # once
        assert stats["nvm.st_writes"] == (
            payload_writes - stats["ctrl.root_child_persists"]
        )

    def test_double_write_traffic_vs_wb(self):
        config = small_config()
        wb = Machine(config, scheme="wb")
        anubis = Machine(config, scheme="anubis")
        run_small_workload(wb, "hash", operations=200)
        run_small_workload(anubis, "hash", operations=200)
        ratio = anubis.nvm.total_writes() / wb.nvm.total_writes()
        assert 1.95 <= ratio <= 2.0

    def test_st_mirrors_cache_slots(self):
        machine = Machine(small_config(), scheme="anubis")
        run_small_workload(machine, "hash", operations=150)
        capacity = machine.config.metadata_cache.num_lines
        for slot in machine.nvm.st_slots():
            assert 0 <= slot < capacity

    def test_st_entries_track_latest_counters(self):
        machine = Machine(small_config(), scheme="anubis")
        run_small_workload(machine, "hash", operations=150)
        geometry = machine.controller.geometry
        for slot in machine.nvm.st_slots():
            entry = machine.nvm._st[slot]
            assert isinstance(entry, ShadowEntry)
            node = machine.controller.cached_node(
                geometry.node_at(entry.meta_index)
            )
            if node is not None:
                assert tuple(node.counters) == entry.counters

    def test_recovery_restores_all_dirty(self):
        machine = Machine(small_config(), scheme="anubis")
        run_small_workload(machine, "hash", operations=200)
        machine.crash()
        report = machine.recover()
        assert machine.oracle_check(report)
        # Anubis restores (at least) the whole dirty population
        assert report.restored_lines >= len(machine.pre_crash_dirty)


class TestStar:
    def test_no_data_path_write_amplification(self):
        """STAR's only extra writes are bitmap-line spills."""
        config = small_config()
        wb = Machine(config, scheme="wb")
        star = Machine(config, scheme="star")
        run_small_workload(wb, "hash", operations=200)
        run_small_workload(star, "hash", operations=200)
        extra = star.nvm.total_writes() - wb.nvm.total_writes()
        assert extra == star.stats["nvm.ra_writes"]

    def test_bitmap_tracks_dirty_lines(self):
        machine = Machine(small_config(), scheme="star")
        run_small_workload(machine, "hash", operations=150)
        scheme = machine.scheme
        for line in machine.controller.meta_cache.lines():
            assert scheme.bitmap.is_stale(line.addr) == line.dirty

    def test_bitmap_accesses_only_on_transitions(self):
        """Rewriting the same line twice touches the bitmap once."""
        machine = Machine(small_config(), scheme="star")
        machine.controller.write_data(0)
        marks = machine.stats["bitmap.mark_stale"]
        machine.controller.write_data(0)
        assert machine.stats["bitmap.mark_stale"] == marks
