"""Tests for the bank-level PCM device model and its machine wiring."""

from dataclasses import replace

import pytest

from repro.config import NVMTimings, small_config
from repro.mem.device import PCMDevice
from repro.sim.machine import Machine

from conftest import run_small_workload

T = NVMTimings()


def make_device(banks=4, row_lines=8) -> PCMDevice:
    return PCMDevice(T, banks=banks, row_lines=row_lines)


class TestAddressMapping:
    def test_row_interleaved_banking(self):
        device = make_device(banks=4, row_lines=8)
        assert device.bank_of(0) == 0
        assert device.bank_of(7) == 0    # same row, same bank
        assert device.bank_of(8) == 1    # next row, next bank
        assert device.bank_of(8 * 4) == 0  # wraps around

    def test_validation(self):
        with pytest.raises(ValueError):
            PCMDevice(T, banks=0)
        with pytest.raises(ValueError):
            PCMDevice(T, row_lines=0)


class TestRowBuffer:
    def test_first_access_misses(self):
        device = make_device()
        completion = device.read(0, 0.0)
        assert completion == pytest.approx(T.t_rcd_ns + T.t_cl_ns)
        assert device.row_misses == 1

    def test_same_row_hits(self):
        device = make_device()
        first = device.read(0, 0.0)
        second = device.read(1, first)
        assert second - first == pytest.approx(T.t_cl_ns)
        assert device.row_hits == 1

    def test_row_conflict_pays_activation(self):
        device = make_device(banks=1, row_lines=8)
        first = device.read(0, 0.0)
        second = device.read(8, first)  # same bank, different row
        assert second - first == pytest.approx(T.t_rcd_ns + T.t_cl_ns)

    def test_hit_ratio(self):
        device = make_device()
        device.read(0, 0.0)
        device.read(1, 1000.0)
        assert device.row_hit_ratio() == 0.5


class TestBankParallelism:
    def test_different_banks_overlap(self):
        device = make_device(banks=4, row_lines=8)
        write_done = device.write(0, 0.0)      # bank 0
        read_done = device.read(8, 0.0)        # bank 1: not blocked
        assert read_done < write_done

    def test_same_bank_serializes(self):
        device = make_device(banks=4, row_lines=8)
        write_done = device.write(0, 0.0)
        read_done = device.read(1, 0.0)        # bank 0: waits
        assert read_done > write_done

    def test_drain_time(self):
        device = make_device()
        done = device.write(0, 0.0)
        assert device.drain_time(0.0) == pytest.approx(done)
        assert device.drain_time(done + 1) == 0.0

    def test_pending_writes(self):
        device = make_device(banks=4, row_lines=8)
        device.write(0, 0.0)
        device.write(8, 0.0)
        assert device.pending_writes(0.1) == 2


class TestFawThrottle:
    def test_burst_of_activations_throttled(self):
        device = make_device(banks=8, row_lines=8)
        # five activations in rapid succession to distinct banks: the
        # fifth must wait for the tFAW window
        completions = [
            device.read(8 * bank, 0.0) for bank in range(5)
        ]
        first_four = completions[:4]
        assert max(first_four) - min(first_four) < T.t_faw_ns
        assert completions[4] >= T.t_faw_ns

    def test_reset(self):
        device = make_device()
        device.write(0, 0.0)
        device.reset()
        assert device.drain_time(0.0) == 0.0


class TestMachineIntegration:
    def _machine(self, scheme):
        config = replace(small_config(), device_timing=True)
        return Machine(config, scheme=scheme)

    def test_runs_and_times_with_device(self):
        machine = self._machine("star")
        run_small_workload(machine, "hash", operations=120)
        assert machine.timing.now_ns > 0
        assert machine.timing.device.row_misses > 0

    def test_crash_recovery_unaffected(self):
        machine = self._machine("star")
        run_small_workload(machine, "hash", operations=120)
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)

    def test_scheme_ordering_preserved(self):
        """Fig. 12's ordering holds under the banked device too."""
        ipcs = {}
        for scheme in ("wb", "anubis", "strict"):
            machine = self._machine(scheme)
            run_small_workload(machine, "hash", operations=200)
            ipcs[scheme] = machine.timing.ipc
        assert ipcs["wb"] >= ipcs["anubis"] >= ipcs["strict"]

    def test_traffic_identical_to_flat_timing(self):
        """The device model changes time, never traffic."""
        flat = Machine(small_config(), scheme="star")
        banked = self._machine("star")
        run_small_workload(flat, "queue", operations=150)
        run_small_workload(banked, "queue", operations=150)
        assert flat.nvm.total_writes() == banked.nvm.total_writes()
        assert flat.nvm.total_reads() == banked.nvm.total_reads()

    def test_regions_map_to_disjoint_lines(self):
        machine = self._machine("anubis")
        layout = machine.controller.layout
        data_top = machine._physical_line("data", layout.num_data_lines - 1)
        meta_bottom = machine._physical_line("meta", 0)
        meta_top = machine._physical_line("meta", layout.total_meta_lines - 1)
        ra_bottom = machine._physical_line("ra", (1, 0))
        st_bottom = machine._physical_line("st", 0)
        assert data_top < meta_bottom <= meta_top < ra_bottom < st_bottom