"""star-lab CLI: run / status / resume / export / gc / farm verbs,
in process."""

import json

import pytest

from repro.lab.cli import main
from repro.lab.store import ResultStore


@pytest.fixture()
def grid_path(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps({
        "name": "cli-smoke", "kind": "bench", "scale": "smoke",
        "schemes": ["wb", "star"], "workloads": ["array"],
        "seed": 7, "operations": 40,
    }))
    return str(path)


def run_cli(*argv):
    return main(list(argv))


class TestRun:
    def test_run_completes_and_populates_the_store(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        assert run_cli("run", "--grid", grid_path,
                       "--store", store_dir) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert len(ResultStore(store_dir)) == 2

    def test_second_run_resumes_every_cell(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        capsys.readouterr()
        assert run_cli("run", "--grid", grid_path,
                       "--store", store_dir) == 0
        table = capsys.readouterr().out
        row = [line for line in table.splitlines() if line.strip()][-1]
        # cells / resumed / computed columns
        assert row.split()[:3] == ["2", "2", "0"]

    def test_unknown_grid_is_a_usage_error(self, tmp_path, capsys):
        assert run_cli("run", "--grid", "no-such-grid",
                       "--store", str(tmp_path / "lab")) == 2
        assert "no grid named" in capsys.readouterr().err


class TestInterruptResumeExport:
    def test_killed_campaign_resumes_and_exports_identically(
            self, grid_path, tmp_path, capsys):
        serial = str(tmp_path / "serial")
        resumed = str(tmp_path / "resumed")
        run_cli("run", "--grid", grid_path, "--store", serial)

        assert run_cli("run", "--grid", grid_path, "--store", resumed,
                       "--max-cells", "1") == 3
        assert "resume" in capsys.readouterr().out
        # journal-driven resume: no --grid needed
        assert run_cli("resume", "--store", resumed) == 0

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_cli("export", "--store", serial, "-o", str(a))
        run_cli("export", "--store", resumed, "-o", str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_status_lists_the_campaign_checkpoint(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir,
                "--max-cells", "1")
        capsys.readouterr()
        assert run_cli("status", "--store", store_dir) == 0
        out = capsys.readouterr().out
        assert "interrupted" in out and "cli-smoke" in out

    def test_resume_without_unfinished_campaign_is_an_error(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        capsys.readouterr()
        assert run_cli("resume", "--store", store_dir) == 2
        assert "unfinished" in capsys.readouterr().err

    def test_export_to_stdout_with_hash_prefix(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        hashes = ResultStore(store_dir).hashes()
        capsys.readouterr()
        assert run_cli("export", "--store", store_dir,
                       "--hash-prefix", hashes[0][:16]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["spec_hash"] for entry in entries] == [hashes[0]]


class TestFarmVerbs:
    def test_serve_work_serve_matches_serial_export(
            self, grid_path, tmp_path, capsys):
        """The whole farm protocol with no threads: an interrupted
        serve seeds the board, a worker drains it, a second serve
        re-adopts the campaign, merges and completes."""
        serial = str(tmp_path / "serial")
        run_cli("run", "--grid", grid_path, "--store", serial)
        store_dir = str(tmp_path / "farmed")
        farm_dir = str(tmp_path / "farmed/farm")

        # seed + journal, then stop immediately (exit 3: resumable)
        assert run_cli("serve", "--grid", grid_path,
                       "--store", store_dir, "--farm", farm_dir,
                       "--max-wall", "0", "--quiet") == 3

        assert run_cli("work", "--farm", farm_dir, "--id", "w1",
                       "--wait", "5") == 0
        assert "2 done" in capsys.readouterr().out

        # the restarted coordinator re-adopts the board and merges
        assert run_cli("serve", "--grid", grid_path,
                       "--store", store_dir, "--farm", farm_dir,
                       "--max-wall", "60") == 0
        assert "remaining" in capsys.readouterr().out

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_cli("export", "--store", serial, "-o", str(a))
        run_cli("export", "--store", store_dir, "-o", str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_work_without_a_board_is_an_error(self, tmp_path, capsys):
        assert run_cli("work", "--farm", str(tmp_path / "nope"),
                       "--id", "w1", "--wait", "0", "--poll",
                       "0.01") == 2
        assert "lease board" in capsys.readouterr().err

    def test_merge_verb_imports_worker_stores(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "farmed")
        farm_dir = str(tmp_path / "farmed/farm")
        run_cli("serve", "--grid", grid_path, "--store", store_dir,
                "--farm", farm_dir, "--max-wall", "0", "--quiet")
        run_cli("work", "--farm", farm_dir, "--id", "w1",
                "--wait", "5", "--quiet")
        capsys.readouterr()
        assert run_cli("merge", "--store", store_dir,
                       "--farm", farm_dir) == 0
        assert "merged 2 new records" in capsys.readouterr().out
        assert len(ResultStore(store_dir)) == 2

    def test_farm_progress_shows_in_star_top(
            self, grid_path, tmp_path, capsys):
        from repro.obs.top import main as top_main

        store_dir = str(tmp_path / "farmed")
        farm_dir = str(tmp_path / "farmed/farm")
        run_cli("serve", "--grid", grid_path, "--store", store_dir,
                "--farm", farm_dir, "--max-wall", "0", "--quiet")
        run_cli("work", "--farm", farm_dir, "--id", "w1",
                "--wait", "5", "--quiet")
        run_cli("serve", "--grid", grid_path, "--store", store_dir,
                "--farm", farm_dir, "--max-wall", "60", "--quiet")
        capsys.readouterr()
        assert top_main(["--farm", farm_dir, "--store", store_dir,
                         "--once"]) == 0
        output = capsys.readouterr().out
        assert "w1" in output and "coordinator" in output
        assert "claimed 2" in output


class TestBackoffFlags:
    def test_run_accepts_backoff_policy_flags(
            self, grid_path, tmp_path):
        assert run_cli("run", "--grid", grid_path,
                       "--store", str(tmp_path / "lab"),
                       "--backoff-policy", "exponential",
                       "--backoff", "0.1", "--backoff-cap", "2.0",
                       "--quiet") == 0

    def test_unknown_backoff_policy_is_rejected(
            self, grid_path, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("run", "--grid", grid_path,
                    "--store", str(tmp_path / "lab"),
                    "--backoff-policy", "fibonacci")


class TestGc:
    def test_gc_keeps_grid_cells_and_drops_the_rest(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        store = ResultStore(store_dir)
        keep = store.hashes()
        # an extra cell not referenced by the grid
        other = tmp_path / "other.json"
        other.write_text(json.dumps({
            "name": "other", "kind": "bench", "scale": "smoke",
            "schemes": ["anubis"], "workloads": ["array"],
            "seed": 7, "operations": 40,
        }))
        run_cli("run", "--grid", str(other), "--store", store_dir)
        store.close()
        capsys.readouterr()

        assert run_cli("gc", "--store", store_dir,
                       "--grid", grid_path) == 0
        assert "dropped 1 records" in capsys.readouterr().out
        assert sorted(ResultStore(store_dir).hashes()) == sorted(keep)
