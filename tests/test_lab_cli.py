"""star-lab CLI: run / status / resume / export / gc, in process."""

import json

import pytest

from repro.lab.cli import main
from repro.lab.store import ResultStore


@pytest.fixture()
def grid_path(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps({
        "name": "cli-smoke", "kind": "bench", "scale": "smoke",
        "schemes": ["wb", "star"], "workloads": ["array"],
        "seed": 7, "operations": 40,
    }))
    return str(path)


def run_cli(*argv):
    return main(list(argv))


class TestRun:
    def test_run_completes_and_populates_the_store(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        assert run_cli("run", "--grid", grid_path,
                       "--store", store_dir) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert len(ResultStore(store_dir)) == 2

    def test_second_run_resumes_every_cell(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        capsys.readouterr()
        assert run_cli("run", "--grid", grid_path,
                       "--store", store_dir) == 0
        table = capsys.readouterr().out
        row = [line for line in table.splitlines() if line.strip()][-1]
        # cells / resumed / computed columns
        assert row.split()[:3] == ["2", "2", "0"]

    def test_unknown_grid_is_a_usage_error(self, tmp_path, capsys):
        assert run_cli("run", "--grid", "no-such-grid",
                       "--store", str(tmp_path / "lab")) == 2
        assert "no grid named" in capsys.readouterr().err


class TestInterruptResumeExport:
    def test_killed_campaign_resumes_and_exports_identically(
            self, grid_path, tmp_path, capsys):
        serial = str(tmp_path / "serial")
        resumed = str(tmp_path / "resumed")
        run_cli("run", "--grid", grid_path, "--store", serial)

        assert run_cli("run", "--grid", grid_path, "--store", resumed,
                       "--max-cells", "1") == 3
        assert "resume" in capsys.readouterr().out
        # journal-driven resume: no --grid needed
        assert run_cli("resume", "--store", resumed) == 0

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_cli("export", "--store", serial, "-o", str(a))
        run_cli("export", "--store", resumed, "-o", str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_status_lists_the_campaign_checkpoint(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir,
                "--max-cells", "1")
        capsys.readouterr()
        assert run_cli("status", "--store", store_dir) == 0
        out = capsys.readouterr().out
        assert "interrupted" in out and "cli-smoke" in out

    def test_resume_without_unfinished_campaign_is_an_error(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        capsys.readouterr()
        assert run_cli("resume", "--store", store_dir) == 2
        assert "unfinished" in capsys.readouterr().err

    def test_export_to_stdout_with_hash_prefix(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        hashes = ResultStore(store_dir).hashes()
        capsys.readouterr()
        assert run_cli("export", "--store", store_dir,
                       "--hash-prefix", hashes[0][:16]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["spec_hash"] for entry in entries] == [hashes[0]]


class TestGc:
    def test_gc_keeps_grid_cells_and_drops_the_rest(
            self, grid_path, tmp_path, capsys):
        store_dir = str(tmp_path / "lab")
        run_cli("run", "--grid", grid_path, "--store", store_dir)
        store = ResultStore(store_dir)
        keep = store.hashes()
        # an extra cell not referenced by the grid
        other = tmp_path / "other.json"
        other.write_text(json.dumps({
            "name": "other", "kind": "bench", "scale": "smoke",
            "schemes": ["anubis"], "workloads": ["array"],
            "seed": 7, "operations": 40,
        }))
        run_cli("run", "--grid", str(other), "--store", store_dir)
        store.close()
        capsys.readouterr()

        assert run_cli("gc", "--store", store_dir,
                       "--grid", grid_path) == 0
        assert "dropped 1 records" in capsys.readouterr().out
        assert sorted(ResultStore(store_dir).hashes()) == sorted(keep)
