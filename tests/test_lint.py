"""Tests for the repro.lint engine and the STAR00x rule set.

Each rule gets a seeded-violation fixture (must flag) and a compliant
fixture (must stay silent); the engine tests cover pragma suppression,
the JSON reporter round-trip and the CLI exit-code contract. The final
test runs the full rule set over the real ``src/`` tree — the repo's
own code must lint clean.
"""

import json
from pathlib import Path

import pytest

from repro.lint.engine import (
    FileContext,
    Finding,
    LintEngine,
    findings_from_json,
    findings_to_json,
    render_text,
)
from repro.lint.cli import main as lint_main
from repro.lint.rules import default_rules
from repro.lint.rules.determinism import NondeterminismRule
from repro.lint.rules.hotpath import HotPathRosterRule
from repro.lint.rules.metrics import MetricCatalogRule
from repro.lint.rules.nvm_access import UncountedNvmAccessRule
from repro.lint.rules.widths import BitWidthOverflowRule

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def lint_source(tmp_path, rules, source, relpath="repro/sim/fixture.py"):
    """Stage ``source`` under a fake repro/ tree and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return LintEngine(rules).run([str(target)])


def codes(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# STAR001: uncounted NVM access
# ----------------------------------------------------------------------
class TestUncountedNvmAccess:
    def test_flags_direct_region_access(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "def scan(machine):\n"
            "    return sorted(machine.nvm._meta)\n",
        )
        assert codes(findings) == ["STAR001"]
        assert "_meta" in findings[0].message

    def test_flags_bare_nvm_name(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "def raw(nvm):\n"
            "    nvm._data[0] = None\n",
        )
        assert codes(findings) == ["STAR001"]

    def test_counted_and_sanctioned_accessors_pass(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "def ok(machine):\n"
            "    machine.nvm.read_meta(0)\n"
            "    machine.nvm.peek_data(0)\n"
            "    return machine.nvm.meta_lines()\n",
        )
        assert findings == []

    def test_unrelated_underscore_attrs_pass(self, tmp_path):
        # a non-NVM object owning its own _data is not a violation
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "class WearLeveler:\n"
            "    def __init__(self):\n"
            "        self._data = {}\n"
            "    def touch(self):\n"
            "        return len(self._data)\n",
        )
        assert findings == []

    def test_nvm_module_is_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "class NVM:\n"
            "    def total(self, nvm):\n"
            "        return len(nvm._data)\n",
            relpath="repro/mem/nvm.py",
        )
        assert findings == []

    def test_pragma_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "def scan(machine):\n"
            "    return machine.nvm._meta  # lint: disable=STAR001\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# STAR002: bit-width overflow
# ----------------------------------------------------------------------
class TestBitWidthOverflow:
    def test_flags_overflowing_literal(self, tmp_path):
        findings = lint_source(
            tmp_path, [BitWidthOverflowRule()],
            "lsbs = 1 << 12\n",
        )
        assert codes(findings) == ["STAR002"]
        assert "10-bit" in findings[0].message

    def test_flags_keyword_argument(self, tmp_path):
        findings = lint_source(
            tmp_path, [BitWidthOverflowRule()],
            "image = NodeImage(counters=(0,) * 8, mac=2 ** 60, lsbs=0)\n",
        )
        assert codes(findings) == ["STAR002"]
        assert "54-bit" in findings[0].message

    def test_flags_attribute_assignment_and_negative(self, tmp_path):
        findings = lint_source(
            tmp_path, [BitWidthOverflowRule()],
            "node.counter = -1\n",
        )
        assert codes(findings) == ["STAR002"]

    def test_boundary_values_pass(self, tmp_path):
        findings = lint_source(
            tmp_path, [BitWidthOverflowRule()],
            "mac = (1 << 54) - 1\n"
            "lsbs = (1 << 10) - 1\n"
            "counter = 2 ** 56 - 1\n",
        )
        assert findings == []

    def test_unbudgeted_names_and_dynamic_values_pass(self, tmp_path):
        findings = lint_source(
            tmp_path, [BitWidthOverflowRule()],
            "address = 1 << 40\n"
            "mac = compute_mac()\n",
        )
        assert findings == []

    def test_custom_width_table(self, tmp_path):
        rule = BitWidthOverflowRule(widths={"minor": 7})
        findings = lint_source(tmp_path, [rule], "minor = 128\n")
        assert codes(findings) == ["STAR002"]


# ----------------------------------------------------------------------
# STAR003: nondeterminism
# ----------------------------------------------------------------------
class TestNondeterminism:
    def test_flags_module_level_random(self, tmp_path):
        findings = lint_source(
            tmp_path, [NondeterminismRule()],
            "import random\n"
            "def jitter():\n"
            "    return random.randrange(4)\n",
        )
        assert codes(findings) == ["STAR003"]

    def test_flags_wall_clock(self, tmp_path):
        findings = lint_source(
            tmp_path, [NondeterminismRule()],
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n",
        )
        assert codes(findings) == ["STAR003"]

    def test_flags_set_iteration(self, tmp_path):
        findings = lint_source(
            tmp_path, [NondeterminismRule()],
            "def walk(lines):\n"
            "    for line in set(lines):\n"
            "        yield line\n",
        )
        assert codes(findings) == ["STAR003"]

    def test_seeded_random_and_sorted_pass(self, tmp_path):
        findings = lint_source(
            tmp_path, [NondeterminismRule()],
            "import random\n"
            "def ok(lines):\n"
            "    rng = random.Random(7)\n"
            "    for line in sorted(set(lines)):\n"
            "        rng.randrange(4)\n",
        )
        assert findings == []

    def test_out_of_scope_module_passes(self, tmp_path):
        findings = lint_source(
            tmp_path, [NondeterminismRule()],
            "import time\n"
            "now = time.perf_counter()\n",
            relpath="repro/tools/bench.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# STAR004: metric-catalogue hygiene
# ----------------------------------------------------------------------
class TestMetricCatalog:
    def rule(self, **kwargs):
        kwargs.setdefault("metrics", {"nvm.meta_writes": "counter"})
        kwargs.setdefault("patterns", [("sit.level%d.writes", "counter")])
        kwargs.setdefault("require_full_scan", False)
        return MetricCatalogRule(**kwargs)

    def test_flags_unknown_metric(self, tmp_path):
        findings = lint_source(
            tmp_path, [self.rule()],
            "def f(stats):\n"
            "    stats.add('nvm.meta_wrytes')\n"
            "    stats.add('nvm.meta_writes')\n"
            "    stats.add('sit.level%d.writes' % 2)\n",
        )
        assert codes(findings) == ["STAR004"]
        assert "nvm.meta_wrytes" in findings[0].message

    def test_flags_undeclared_template(self, tmp_path):
        findings = lint_source(
            tmp_path, [self.rule(patterns=[])],
            "def f(stats):\n"
            "    stats.add('sit.probe.%s' % kind)\n"
            "    stats.add('nvm.meta_writes')\n",
        )
        assert codes(findings) == ["STAR004"]

    def test_flags_unused_catalogue_entry(self, tmp_path):
        rule = self.rule(metrics={"ghost.counter": "counter"},
                         patterns=[])
        findings = lint_source(
            tmp_path, [rule],
            "def f(stats):\n"
            "    pass\n",
        )
        assert codes(findings) == ["STAR004"]
        assert "ghost.counter" in findings[0].message

    def test_unused_direction_gated_on_full_scan(self, tmp_path):
        rule = self.rule(metrics={"ghost.counter": "counter"},
                         patterns=[], require_full_scan=True)
        findings = lint_source(tmp_path, [rule], "x = 1\n")
        assert findings == []

    def test_non_stats_receivers_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path, [self.rule(patterns=[])],
            "def f(stats, mapping, bag):\n"
            "    mapping.get('whatever')\n"
            "    bag.add('not-a-metric')\n"
            "    stats.add('nvm.meta_writes')\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# STAR005: hot-path roster drift
# ----------------------------------------------------------------------
class TestHotPathRoster:
    ROSTER = {"repro/mem/fixture.py": {"Fast": False, "Image": True}}

    def test_flags_missing_slots(self, tmp_path):
        findings = lint_source(
            tmp_path, [HotPathRosterRule(self.ROSTER)],
            "class Fast:\n"
            "    pass\n"
            "class Image:\n"
            "    __slots__ = ()\n",
            relpath="repro/mem/fixture.py",
        )
        assert codes(findings) == ["STAR005"]
        assert "Fast" in findings[0].message

    def test_flags_dataclass_without_slots_or_frozen(self, tmp_path):
        findings = lint_source(
            tmp_path, [HotPathRosterRule(self.ROSTER)],
            "from dataclasses import dataclass\n"
            "class Fast:\n"
            "    __slots__ = ()\n"
            "@dataclass\n"
            "class Image:\n"
            "    mac: int\n",
            relpath="repro/mem/fixture.py",
        )
        assert sorted(codes(findings)) == ["STAR005", "STAR005"]

    def test_compliant_classes_pass(self, tmp_path):
        findings = lint_source(
            tmp_path, [HotPathRosterRule(self.ROSTER)],
            "from dataclasses import dataclass\n"
            "class Fast:\n"
            "    __slots__ = ('x',)\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Image:\n"
            "    mac: int\n",
            relpath="repro/mem/fixture.py",
        )
        assert findings == []

    def test_flags_vanished_roster_class(self, tmp_path):
        findings = lint_source(
            tmp_path, [HotPathRosterRule(self.ROSTER)],
            "class Fast:\n"
            "    __slots__ = ()\n",
            relpath="repro/mem/fixture.py",
        )
        assert codes(findings) == ["STAR005"]
        assert "Image" in findings[0].message


# ----------------------------------------------------------------------
# engine mechanics: pragmas, reporters, CLI
# ----------------------------------------------------------------------
class TestEngine:
    def test_file_level_pragma(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule()],
            "# lint: disable-file=STAR001\n"
            "def a(nvm):\n"
            "    return nvm._meta\n"
            "def b(nvm):\n"
            "    return nvm._data\n",
        )
        assert findings == []

    def test_pragma_only_suppresses_named_rule(self, tmp_path):
        findings = lint_source(
            tmp_path, [UncountedNvmAccessRule(), BitWidthOverflowRule()],
            "lsbs = nvm._meta = 5000  # lint: disable=STAR001\n",
        )
        assert codes(findings) == ["STAR002"]

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        target = tmp_path / "repro" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def broken(:\n")
        engine = LintEngine([UncountedNvmAccessRule()])
        assert engine.run([str(target)]) == []
        assert len(engine.errors) == 1

    def test_json_round_trip(self):
        findings = [
            Finding("STAR001", "a.py", 3, 7, "uncounted access"),
            Finding("STAR005", "b.py", 1, 0, "lost __slots__"),
        ]
        assert findings_from_json(findings_to_json(findings)) == findings

    def test_render_text_summarizes(self):
        text = render_text(
            [Finding("STAR002", "x.py", 2, 0, "overflow")]
        )
        assert "x.py:2:0 STAR002" in text
        assert "1 finding(s)" in text
        assert render_text([]) == "clean: no findings"

    def test_default_rules_cover_all_codes(self):
        assert sorted(rule.code for rule in default_rules()) == [
            "STAR001", "STAR002", "STAR003", "STAR004", "STAR005",
            "STAR006", "STAR007", "STAR008",
        ]


class TestCli:
    def seed_violation(self, tmp_path):
        target = tmp_path / "repro" / "sim" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(nvm):\n    return nvm._meta\n")
        return target

    def test_check_mode_exit_codes(self, tmp_path, capsys):
        target = self.seed_violation(tmp_path)
        assert lint_main([str(target)]) == 0  # report-only
        assert lint_main([str(target), "--check"]) == 1
        capsys.readouterr()

    def test_json_report(self, tmp_path, capsys):
        target = self.seed_violation(tmp_path)
        out = tmp_path / "report.json"
        assert lint_main([str(target), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["findings"][0]["rule"] == "STAR001"
        capsys.readouterr()

    def test_rule_filter(self, tmp_path, capsys):
        target = self.seed_violation(tmp_path)
        assert lint_main(
            [str(target), "--check", "--rules", "STAR002"]
        ) == 0
        assert lint_main([str(target), "--rules", "NOPE"]) == 2
        capsys.readouterr()


# ----------------------------------------------------------------------
# the acceptance bar: the repo's own tree lints clean modulo the
# checked-in baseline, and every waiver in the baseline is still live
# ----------------------------------------------------------------------
@pytest.mark.skipif(not REPO_SRC.is_dir(), reason="src tree not present")
def test_repo_source_tree_is_clean():
    from repro.lint.baseline import Baseline

    engine = LintEngine(default_rules())
    findings = engine.run([str(REPO_SRC)])
    baseline = Baseline.load(str(REPO_SRC.parent / "lint-baseline.json"))
    kept, unused = baseline.apply(findings)
    assert kept == [], render_text(kept)
    assert unused == [], render_text(unused)
    assert engine.errors == []
