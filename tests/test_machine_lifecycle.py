"""Regression tests for the crash/recover lifecycle and NVM accessors.

Two bugs surfaced by this PR's tooling are pinned here:

* **Same-machine continuation after recovery** (found while wiring the
  sanitizers through repeated crash cycles): ``Machine.recover`` used
  to leave the scheme's volatile state stale — Anubis/Phoenix leaked
  shadow-table ways on every cycle until ``IndexError: pop from empty
  list``, and STAR replayed stale ADR bitmap bits into the next
  recovery, failing the restore oracle on the second crash. Recovery
  now re-attaches the scheme (reboot-equivalent volatile state).

* **Uncounted metadata scans** (the STAR001 lint finding):
  ``sim.validate`` reached into ``nvm._meta`` directly; the public
  traffic-free ``NVM.meta_lines()`` accessor replaces it, and this test
  pins that auditing a machine costs zero NVM traffic either way.
"""

import pytest

from repro.config import small_config
from repro.sim.machine import Machine
from repro.sim.validate import audit_machine
from repro.tree.node import NodeImage
from repro.mem.nvm import NVM
from repro.workloads.registry import make_workload


def cycle_ops(machine, operations, seed):
    workload = make_workload(
        "hash", machine.controller.layout.num_data_lines,
        operations=operations, seed=seed,
    )
    machine.run(list(workload.ops()))


class TestContinueAfterRecover:
    @pytest.mark.parametrize("scheme", ["star", "anubis", "phoenix",
                                        "strict"])
    def test_many_crash_cycles_on_one_machine(self, scheme):
        machine = Machine(small_config(), scheme=scheme, telemetry=False)
        for cycle in range(5):
            cycle_ops(machine, operations=250, seed=7 + cycle)
            machine.crash()
            report = machine.recover(raise_on_failure=True)
            assert machine.oracle_check(report), (scheme, cycle)
            assert audit_machine(machine) == []

    def test_anubis_slot_mirror_rebuilt(self):
        """The pre-fix failure mode: ST ways leaked every cycle."""
        machine = Machine(small_config(), scheme="anubis",
                          telemetry=False)
        cache = machine.controller.meta_cache
        total_ways = cache.num_sets * cache.ways
        for cycle in range(3):
            cycle_ops(machine, operations=250, seed=3 + cycle)
            machine.crash()
            machine.recover(raise_on_failure=True)
            scheme = machine.scheme
            # after re-attach the mirror is empty and every way is free
            assert scheme._slot_of == {}
            free = sum(len(ways) for ways in scheme._free_ways.values())
            assert free == total_ways

    def test_continuation_matches_reboot(self):
        """Continuing the same machine restores the same data a fresh
        boot on the surviving NVM + registers would read."""
        config = small_config()
        continued = Machine(config, scheme="star", telemetry=False)
        cycle_ops(continued, operations=300, seed=5)
        continued.crash()
        continued.recover(raise_on_failure=True)
        cycle_ops(continued, operations=120, seed=6)
        continued.crash()
        continued.recover(raise_on_failure=True)

        rebooted = Machine(config, scheme="star",
                           registers=continued.registers,
                           nvm=continued.nvm, telemetry=False)
        for line in continued.nvm.data_lines():
            assert rebooted.controller.read_data(line) is not None


class TestNvmAccessors:
    def test_meta_lines_sorted_and_traffic_free(self):
        nvm = NVM()
        image = NodeImage(counters=(1,) + (0,) * 7, mac=0, lsbs=0)
        for index in (9, 2, 5):
            nvm.write_meta(index, image)
        reads_before = nvm.total_reads()
        writes_before = nvm.total_writes()
        assert nvm.meta_lines() == [2, 5, 9]
        assert nvm.total_reads() == reads_before
        assert nvm.total_writes() == writes_before

    def test_audit_machine_costs_no_traffic(self):
        machine = Machine(small_config(), telemetry=False)
        cycle_ops(machine, operations=200, seed=13)
        reads_before = machine.nvm.total_reads()
        writes_before = machine.nvm.total_writes()
        assert audit_machine(machine) == []
        assert machine.nvm.total_reads() == reads_before
        assert machine.nvm.total_writes() == writes_before
