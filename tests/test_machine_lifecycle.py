"""Regression tests for the crash/recover lifecycle and NVM accessors.

Two bugs surfaced by this PR's tooling are pinned here:

* **Same-machine continuation after recovery** (found while wiring the
  sanitizers through repeated crash cycles): ``Machine.recover`` used
  to leave the scheme's volatile state stale — Anubis/Phoenix leaked
  shadow-table ways on every cycle until ``IndexError: pop from empty
  list``, and STAR replayed stale ADR bitmap bits into the next
  recovery, failing the restore oracle on the second crash. Recovery
  now re-attaches the scheme (reboot-equivalent volatile state).

* **Uncounted metadata scans** (the STAR001 lint finding):
  ``sim.validate`` reached into ``nvm._meta`` directly; the public
  traffic-free ``NVM.meta_lines()`` accessor replaces it, and this test
  pins that auditing a machine costs zero NVM traffic either way.
"""

import pytest

from repro.config import small_config
from repro.sim.machine import Machine
from repro.sim.validate import audit_machine
from repro.tree.node import NodeImage
from repro.mem.nvm import NVM
from repro.workloads.registry import make_workload


def cycle_ops(machine, operations, seed):
    workload = make_workload(
        "hash", machine.controller.layout.num_data_lines,
        operations=operations, seed=seed,
    )
    machine.run(list(workload.ops()))


class TestContinueAfterRecover:
    @pytest.mark.parametrize("scheme", ["star", "anubis", "phoenix",
                                        "strict"])
    def test_many_crash_cycles_on_one_machine(self, scheme):
        machine = Machine(small_config(), scheme=scheme, telemetry=False)
        for cycle in range(5):
            cycle_ops(machine, operations=250, seed=7 + cycle)
            machine.crash()
            report = machine.recover(raise_on_failure=True)
            assert machine.oracle_check(report), (scheme, cycle)
            assert audit_machine(machine) == []

    def test_anubis_slot_mirror_rebuilt(self):
        """The pre-fix failure mode: ST ways leaked every cycle."""
        machine = Machine(small_config(), scheme="anubis",
                          telemetry=False)
        cache = machine.controller.meta_cache
        total_ways = cache.num_sets * cache.ways
        for cycle in range(3):
            cycle_ops(machine, operations=250, seed=3 + cycle)
            machine.crash()
            machine.recover(raise_on_failure=True)
            scheme = machine.scheme
            # after re-attach the mirror is empty and every way is free
            assert scheme._slot_of == {}
            free = sum(len(ways) for ways in scheme._free_ways.values())
            assert free == total_ways

    def test_continuation_matches_reboot(self):
        """Continuing the same machine restores the same data a fresh
        boot on the surviving NVM + registers would read."""
        config = small_config()
        continued = Machine(config, scheme="star", telemetry=False)
        cycle_ops(continued, operations=300, seed=5)
        continued.crash()
        continued.recover(raise_on_failure=True)
        cycle_ops(continued, operations=120, seed=6)
        continued.crash()
        continued.recover(raise_on_failure=True)

        rebooted = Machine(config, scheme="star",
                           registers=continued.registers,
                           nvm=continued.nvm, telemetry=False)
        for line in continued.nvm.data_lines():
            assert rebooted.controller.read_data(line) is not None


class TestAdrFlushReconciliation:
    """The battery flush must reconcile residency with the spilled set.

    Pre-fix, ``AdrRegion.flush_on_power_failure`` copied residents to
    the recovery area but left the LRU, the ``spilled`` set, and the
    ``adr.resident_lines`` gauge frozen at their pre-crash values — so
    between ``crash()`` and ``recover()`` a bitmap line could be seen
    as both flushed-to-RA and resident, violating the §III-C
    disjointness invariant that ``audit_machine`` checks.
    """

    def _crashed_star_machine(self, telemetry):
        machine = Machine(small_config(), scheme="star",
                          telemetry=telemetry)
        cycle_ops(machine, operations=250, seed=21)
        machine.crash()
        return machine

    def test_post_crash_adr_state_is_disjoint(self):
        from repro.sim.validate import _check_adr

        machine = self._crashed_star_machine(telemetry=False)
        adr = machine.scheme.bitmap.adr
        assert len(adr) == 0
        for key in sorted(adr.spilled):
            assert key not in adr
            assert machine.nvm.ra_is_touched(key)
        # the §III-C residency audit holds even between crash and
        # recover (the full audit_machine would also flag the stale
        # metadata images that STAR's recovery exists to repair)
        assert _check_adr(machine) == []

    def test_flushed_lines_join_the_spilled_set(self):
        machine = Machine(small_config(), scheme="star",
                          telemetry=False)
        cycle_ops(machine, operations=250, seed=22)
        adr = machine.scheme.bitmap.adr
        resident = sorted(key for key, _value in adr.items())
        assert resident  # the workload touched bitmap lines
        machine.crash()
        for key in resident:
            assert key in adr.spilled
            assert machine.nvm.ra_is_touched(key)

    def test_resident_gauge_drops_to_zero(self):
        machine = self._crashed_star_machine(telemetry=True)
        gauge = machine.stats.registry.gauge("adr.resident_lines")
        assert gauge.value == 0

    def test_recovery_still_succeeds_after_reconcile(self):
        machine = self._crashed_star_machine(telemetry=False)
        report = machine.recover(raise_on_failure=True)
        assert machine.oracle_check(report)


class TestAdrStoreRecency:
    """Pin the intended LRU semantics: load/store refresh, peek doesn't.

    The batched pipeline reuses the scalar ``AdrRegion``; if it ever
    grows an array-backed replacement, this is the order it must
    reproduce, spill for spill.
    """

    def _loaded_adr(self):
        from repro.mem.adr import AdrRegion

        nvm = NVM()
        adr = AdrRegion(2, nvm)
        adr.load((1, 0))
        adr.load((1, 1))
        return adr, nvm

    def test_store_refreshes_recency(self):
        adr, _nvm = self._loaded_adr()
        adr.store((1, 0), 9)      # (1, 0) becomes most recently used
        adr.load((1, 2))          # capacity 2: evicts the LRU, (1, 1)
        assert (1, 1) in adr.spilled
        assert (1, 0) in adr

    def test_peek_does_not_refresh_recency(self):
        adr, _nvm = self._loaded_adr()
        assert adr.peek((1, 0)) == 0   # recency-neutral read
        adr.load((1, 2))               # evicts (1, 0): still the LRU
        assert (1, 0) in adr.spilled
        assert (1, 1) in adr


class TestNvmAccessors:
    def test_meta_lines_sorted_and_traffic_free(self):
        nvm = NVM()
        image = NodeImage(counters=(1,) + (0,) * 7, mac=0, lsbs=0)
        for index in (9, 2, 5):
            nvm.write_meta(index, image)
        reads_before = nvm.total_reads()
        writes_before = nvm.total_writes()
        assert nvm.meta_lines() == [2, 5, 9]
        assert nvm.total_reads() == reads_before
        assert nvm.total_writes() == writes_before

    def test_audit_machine_costs_no_traffic(self):
        machine = Machine(small_config(), telemetry=False)
        cycle_ops(machine, operations=200, seed=13)
        reads_before = machine.nvm.total_reads()
        writes_before = machine.nvm.total_writes()
        assert audit_machine(machine) == []
        assert machine.nvm.total_reads() == reads_before
        assert machine.nvm.total_writes() == writes_before
