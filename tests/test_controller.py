"""Unit tests for the secure memory controller."""

from dataclasses import replace

import pytest

from repro.config import small_config
from repro.errors import IntegrityError
from repro.mem.nvm import NVM
from repro.schemes.writeback import WriteBackScheme
from repro.sim.controller import SecureMemoryController, ZERO_LINE


def make_controller(config=None):
    config = config or small_config()
    nvm = NVM()
    controller = SecureMemoryController(
        config, nvm, WriteBackScheme(), stats=nvm.stats
    )
    return controller, nvm


class TestConstruction:
    def test_single_way_metadata_cache_rejected(self):
        """Persist cascades pin a node and its parent; a direct-mapped
        metadata cache cannot host both when they share a set."""
        from dataclasses import replace
        from repro.config import CacheConfig
        from repro.errors import ConfigError
        config = replace(
            small_config(),
            metadata_cache=CacheConfig(size_bytes=4 * 1024, ways=1),
        )
        with pytest.raises(ConfigError):
            make_controller(config)


class TestDataPath:
    def test_read_never_written_returns_zeros(self):
        controller, _nvm = make_controller()
        assert controller.read_data(5) == ZERO_LINE

    def test_write_read_roundtrip(self):
        controller, _nvm = make_controller()
        plaintext = bytes(range(64))
        controller.write_data(5, plaintext)
        assert controller.read_data(5) == plaintext

    def test_rewrites_return_latest(self):
        controller, _nvm = make_controller()
        controller.write_data(5, b"\x01" * 64)
        controller.write_data(5, b"\x02" * 64)
        assert controller.read_data(5) == b"\x02" * 64

    def test_data_is_encrypted_at_rest(self):
        controller, nvm = make_controller()
        plaintext = b"\xAA" * 64
        controller.write_data(5, plaintext)
        image = nvm.peek_data(5)
        assert image is not None
        assert image.ciphertext != plaintext

    def test_write_increments_counter(self):
        controller, _nvm = make_controller()
        cb_id = controller.geometry.counter_block_for(5)
        slot = controller.geometry.data_slot(5)
        controller.write_data(5)
        controller.write_data(5)
        node = controller.cached_node(cb_id)
        assert node is not None
        assert node.counters[slot] == 2

    def test_write_dirties_counter_block(self):
        controller, _nvm = make_controller()
        controller.write_data(5)
        cb_addr = controller.geometry.meta_index(
            controller.geometry.counter_block_for(5)
        )
        line = controller.meta_cache.lookup(cb_addr, touch=False)
        assert line is not None and line.dirty

    def test_lsbs_travel_with_data(self):
        controller, nvm = make_controller()
        for _ in range(3):
            controller.write_data(5)
        image = nvm.peek_data(5)
        assert image is not None
        assert image.lsbs == 3  # counter LSBs of the covering slot


class TestIntegrity:
    def test_tampered_data_detected(self):
        controller, nvm = make_controller()
        controller.write_data(5, b"\x01" * 64)
        image = nvm.peek_data(5)
        flipped = bytes([image.ciphertext[0] ^ 0xFF])
        nvm.tamper_data(
            5, replace(image, ciphertext=flipped + image.ciphertext[1:])
        )
        with pytest.raises(IntegrityError):
            controller.read_data(5)

    def test_replayed_data_detected(self):
        controller, nvm = make_controller()
        controller.write_data(5, b"\x01" * 64)
        old = nvm.peek_data(5)
        controller.write_data(5, b"\x02" * 64)
        nvm.tamper_data(5, old)  # replay the old tuple
        with pytest.raises(IntegrityError):
            controller.read_data(5)

    def test_nonzero_counter_with_missing_line_detected(self):
        controller, nvm = make_controller()
        controller.write_data(5)
        nvm._data.pop(5)  # attacker erases the line
        with pytest.raises(IntegrityError):
            controller.read_data(5)

    def test_erased_metadata_line_detected_on_fetch(self):
        """Deleting a persisted node's NVM line must not fall back to
        the trusted zero-init state: the parent counter proves the node
        was persisted."""
        controller, nvm = make_controller()
        controller.write_data(5)
        controller.flush_metadata_cache()
        cb_addr = controller.geometry.meta_index(
            controller.geometry.counter_block_for(5)
        )
        nvm._meta.pop(cb_addr)  # attacker erases the line
        controller.meta_cache.clear()
        with pytest.raises(IntegrityError):
            controller.read_data(5)

    def test_tampered_metadata_detected_on_fetch(self):
        controller, nvm = make_controller()
        controller.write_data(5, b"\x01" * 64)
        controller.flush_metadata_cache()
        cb_addr = controller.geometry.meta_index(
            controller.geometry.counter_block_for(5)
        )
        image = nvm.peek_meta(cb_addr)
        counters = list(image.counters)
        counters[0] += 1
        nvm.tamper_meta(cb_addr, replace(image, counters=tuple(counters)))
        controller.meta_cache.clear()
        with pytest.raises(IntegrityError):
            controller.read_data(5)


class TestPersistPath:
    def test_flush_clears_all_dirty(self):
        controller, _nvm = make_controller()
        for line in range(0, 64, 8):
            controller.write_data(line)
        controller.flush_metadata_cache()
        assert controller.meta_cache.dirty_count() == 0

    def test_persist_increments_parent(self):
        controller, _nvm = make_controller()
        controller.write_data(0)
        cb_id = controller.geometry.counter_block_for(0)
        parent_id = controller.geometry.parent_of(cb_id)
        controller.flush_metadata_cache()
        parent = controller.cached_node(parent_id)
        assert parent is not None
        assert parent.counters[
            controller.geometry.slot_in_parent(cb_id)] >= 1

    def test_persisted_node_verifies_on_refetch(self):
        controller, _nvm = make_controller()
        controller.write_data(0, b"\x03" * 64)
        controller.flush_metadata_cache()
        controller.meta_cache.clear()
        assert controller.read_data(0) == b"\x03" * 64

    def test_persist_branch_reaches_top(self):
        controller, nvm = make_controller()
        controller.write_data(0)
        root_before = list(controller.registers.sit_root.counters)
        controller.persist_branch(
            controller.geometry.counter_block_for(0)
        )
        assert controller.meta_cache.dirty_count() == 0
        assert controller.registers.sit_root.counters != root_before
        assert nvm.stats["nvm.meta_writes"] == \
            controller.geometry.num_levels

    def test_force_flush_on_counter_drift(self):
        config = small_config()
        config = replace(
            config,
            star=replace(config.star, counter_flush_threshold=4),
        )
        controller, nvm = make_controller(config)
        for _ in range(4):
            controller.write_data(0)
        assert nvm.stats["ctrl.force_flushes"] >= 1
        cb = controller.cached_node(
            controller.geometry.counter_block_for(0)
        )
        assert cb is not None and cb.max_drift() == 0

    def test_drift_never_reaches_lsb_span(self):
        controller, _nvm = make_controller()
        for _ in range(1500):  # more writes than the 10-bit LSB span
            controller.write_data(0)
        cb = controller.cached_node(
            controller.geometry.counter_block_for(0)
        )
        assert cb is not None
        assert cb.max_drift() < 1 << 10
        assert cb.counters[0] == 1500


class TestInspection:
    def test_dirty_fraction_empty_cache(self):
        controller, _nvm = make_controller()
        assert controller.dirty_fraction() == 0.0

    def test_dirty_fraction_after_writes(self):
        controller, _nvm = make_controller()
        controller.write_data(0)
        assert 0.0 < controller.dirty_fraction() <= 1.0

    def test_cache_tree_root_changes_with_writes(self):
        controller, _nvm = make_controller()
        empty_root = controller.compute_cache_tree_root()
        controller.write_data(0)
        assert controller.compute_cache_tree_root() != empty_root

    def test_cache_tree_root_reverts_after_flush(self):
        controller, _nvm = make_controller()
        empty_root = controller.compute_cache_tree_root()
        controller.write_data(0)
        controller.flush_metadata_cache()
        assert controller.compute_cache_tree_root() == empty_root

    def test_dirty_mac_entries_cover_dirty_lines(self):
        controller, _nvm = make_controller()
        controller.write_data(0)
        controller.write_data(512)
        entries = controller.dirty_mac_entries()
        assert len(entries) == controller.meta_cache.dirty_count()

    def test_persisted_image_uses_post_increment_parent_counter(self):
        """Persisting bumps the parent *before* minting the image, so
        the written MAC verifies against the parent's new counter."""
        controller, nvm = make_controller()
        controller.write_data(0)
        cb_id = controller.geometry.counter_block_for(0)
        controller.flush_metadata_cache()
        image = nvm.peek_meta(controller.geometry.meta_index(cb_id))
        parent = controller.cached_node(
            controller.geometry.parent_of(cb_id)
        )
        slot = controller.geometry.slot_in_parent(cb_id)
        assert controller.auth.verify_node_image(
            cb_id, image, parent.counters[slot]
        )

    def test_current_node_mac_tracks_counter_changes(self):
        controller, _nvm = make_controller()
        cb_id = controller.geometry.counter_block_for(0)
        controller.write_data(0)
        before = controller.current_node_mac(cb_id)
        controller.write_data(0)
        assert controller.current_node_mac(cb_id) != before
