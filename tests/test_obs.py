"""Unit and integration tests for the telemetry subsystem (repro.obs).

Covers the ISSUE acceptance points: histogram bucketing boundaries,
span nesting and exception unwinding, event-log ring-buffer wraparound,
Prometheus-text exporter escaping and round-tripping, and the
end-to-end surfacing through ``RunResult.extras`` and ``star-stats``.
"""

import json
import math

import pytest

from repro.obs.events import EventLog
from repro.obs.export import (
    escape_help,
    escape_label_value,
    parse_prometheus_text,
    sanitize_metric_name,
    telemetry_snapshot,
    to_json,
    to_prometheus_text,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_exponent,
)
from repro.obs.render import (
    render_counters,
    render_events,
    render_histogram,
    render_snapshot,
    render_span_tree,
)
from repro.obs.tracing import SpanTracer


# ----------------------------------------------------------------------
# bucketing
# ----------------------------------------------------------------------
class TestBucketExponent:
    def test_integer_power_of_two_boundaries(self):
        # a value v lands in the smallest bucket with v <= 2**e
        assert bucket_exponent(1) == 0
        assert bucket_exponent(2) == 1
        assert bucket_exponent(3) == 2
        assert bucket_exponent(4) == 2
        assert bucket_exponent(5) == 3
        assert bucket_exponent(8) == 3
        assert bucket_exponent(9) == 4

    def test_large_integers(self):
        assert bucket_exponent(2 ** 40) == 40
        assert bucket_exponent(2 ** 40 + 1) == 41

    def test_zero_and_negative_use_zero_bucket(self):
        assert bucket_exponent(0) is None
        assert bucket_exponent(-3) is None
        assert bucket_exponent(-0.5) is None

    def test_float_boundaries(self):
        assert bucket_exponent(1.0) == 0
        assert bucket_exponent(1.5) == 1
        assert bucket_exponent(2.0) == 1
        assert bucket_exponent(2.1) == 2
        assert bucket_exponent(0.5) == -1
        assert bucket_exponent(0.75) == 0

    def test_int_and_float_agree_on_exact_values(self):
        for v in (1, 2, 3, 4, 7, 8, 9, 1024, 1025):
            assert bucket_exponent(v) == bucket_exponent(float(v))


class TestHistogram:
    def test_empty(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.min is None and hist.max is None
        assert hist.bucket_counts() == []
        assert hist.cumulative_buckets() == [(math.inf, 0)]
        assert hist.quantile(0.5) == 0.0

    def test_observe_stats(self):
        hist = Histogram("h")
        for v in (1, 2, 3, 10):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 16
        assert hist.mean == 4.0
        assert hist.min == 1 and hist.max == 10

    def test_bucket_counts_ascending_with_zero_bucket(self):
        hist = Histogram("h")
        for v in (0, 0, 1, 2, 2, 5):
            hist.observe(v)
        # zero bucket (upper 0.0), then 2**0, 2**1, 2**3
        assert hist.bucket_counts() == [
            (0.0, 2), (1.0, 1), (2.0, 2), (8.0, 1),
        ]

    def test_cumulative_ends_with_inf_total(self):
        hist = Histogram("h")
        for v in (1, 2, 4, 100):
            hist.observe(v)
        cumulative = hist.cumulative_buckets()
        assert cumulative[-1] == (math.inf, 4)
        counts = [count for _upper, count in cumulative]
        assert counts == sorted(counts)

    def test_quantile(self):
        hist = Histogram("h")
        for _ in range(90):
            hist.observe(1)
        for _ in range(10):
            hist.observe(1000)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.99) == 1024.0
        # q=1.0 hits the inf bucket, which reports the observed max
        assert hist.quantile(1.0) == 1024.0 or hist.quantile(1.0) == 1000.0

    def test_quantile_range_check(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_merge(self):
        left, right = Histogram("h"), Histogram("h")
        left.observe(1)
        left.observe(0)
        right.observe(8)
        right.observe(2)
        left.merge(right)
        assert left.count == 4
        assert left.min == 0 and left.max == 8
        assert dict(left.bucket_counts()) == {0.0: 1, 1.0: 1, 2.0: 1,
                                              8.0: 1}

    def test_merge_into_empty(self):
        left, right = Histogram("h"), Histogram("h")
        right.observe(5)
        left.merge(right)
        assert left.count == 1
        assert left.min == 5 and left.max == 5

    def test_to_dict_roundtrips_through_json(self):
        hist = Histogram("h")
        hist.observe(3)
        record = json.loads(json.dumps(hist.to_dict()))
        assert record["count"] == 1
        assert record["buckets"] == [[4.0, 1]]


class TestCounterGauge:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_high_watermark(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high == 5

    def test_gauge_inc_dec(self):
        gauge = Gauge("g")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        assert gauge.high == 3


class TestMetricRegistry:
    def test_lazy_instruments_are_stable(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_iteration_sorted(self):
        registry = MetricRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        assert list(registry.counters()) == [("a", 2), ("b", 1)]

    def test_merge(self):
        left, right = MetricRegistry(), MetricRegistry()
        left.counter("c").inc(1)
        right.counter("c").inc(2)
        right.gauge("g").set(7)
        right.histogram("h").observe(3)
        right.events.emit("ev", x=1)
        with right.tracer.span("s"):
            pass
        left.merge(right)
        assert left.counter("c").value == 3
        assert left.gauge("g").high == 7
        assert left.histogram("h").count == 1
        assert len(left.events) == 1
        assert [span.name for span in left.tracer.roots] == ["s"]

    def test_reset(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.events.emit("ev")
        with registry.tracer.span("s"):
            pass
        registry.reset()
        assert len(registry) == 0
        assert len(registry.events) == 0
        assert registry.tracer.roots == []

    def test_disabled_registry_propagates(self):
        registry = MetricRegistry(enabled=False)
        assert not registry.tracer.enabled
        assert not registry.events.enabled
        registry.events.emit("ev")
        assert len(registry.events) == 0
        with registry.tracer.span("s") as span:
            assert span is None
        assert registry.tracer.roots == []


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_nesting(self):
        tracer = SpanTracer()
        with tracer.span("outer", phase=1):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attrs == {"phase": 1}
        assert [child.name for child in root.children] == [
            "inner.a", "inner.b",
        ]
        assert root.duration_s >= sum(
            child.duration_s for child in root.children
        ) * 0.0  # durations recorded
        assert all(span.duration_s >= 0 for span in root.walk())

    def test_exception_tags_and_unwinds(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.depth == 0  # fully unwound
        root = tracer.roots[0]
        assert root.error == "RuntimeError"
        assert root.children[0].error == "RuntimeError"
        # the tracer is reusable after the unwind
        with tracer.span("after"):
            pass
        assert [span.name for span in tracer.roots] == ["outer", "after"]

    def test_bounded_roots(self):
        tracer = SpanTracer(max_roots=3)
        for i in range(5):
            with tracer.span("s%d" % i):
                pass
        assert [span.name for span in tracer.roots] == ["s2", "s3", "s4"]
        assert tracer.dropped_roots == 2

    def test_to_dict_shape(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("p", lines=7):
                with tracer.span("q"):
                    raise ValueError()
        record = tracer.to_list()[0]
        assert record["name"] == "p"
        assert record["attrs"] == {"lines": 7}
        assert record["error"] == "ValueError"
        assert record["children"][0]["name"] == "q"
        # leaf spans omit empty keys
        assert "children" not in record["children"][0]

    def test_walk_depth_first(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
class TestEventLog:
    def test_seq_and_fields(self):
        log = EventLog()
        log.emit("meta_evict", addr=64, dirty=True)
        log.emit("force_flush")
        events = log.events()
        assert [event["seq"] for event in events] == [0, 1]
        assert events[0]["kind"] == "meta_evict"
        assert events[0]["addr"] == 64 and events[0]["dirty"] is True
        assert events[0]["t"] <= events[1]["t"]

    def test_ring_wraparound(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("ev", i=i)
        assert len(log) == 4
        assert log.dropped == 6
        # oldest retained is seq 6; numbering survives the wrap
        assert [event["seq"] for event in log.events()] == [6, 7, 8, 9]
        assert [event["i"] for event in log.events()] == [6, 7, 8, 9]

    def test_tail(self):
        log = EventLog()
        for i in range(5):
            log.emit("ev", i=i)
        assert [event["i"] for event in log.tail(2)] == [3, 4]
        assert log.tail(0) == []
        assert len(log.tail(100)) == 5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_sink_keeps_dropped_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(capacity=2)
        log.open_sink(path)
        for i in range(5):
            log.emit("ev", i=i)
        log.close_sink()
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        # the file has all 5 even though the ring kept only 2
        assert [line["i"] for line in lines] == [0, 1, 2, 3, 4]
        assert len(log) == 2
        # emits after close_sink don't fail and don't write
        log.emit("ev", i=5)
        assert len(open(path).read().splitlines()) == 5

    def test_to_jsonl(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b")
        lines = log.to_jsonl().splitlines()
        assert json.loads(lines[0])["kind"] == "a"
        assert json.loads(lines[1])["seq"] == 1

    def test_adopt_resequences(self):
        left, right = EventLog(), EventLog()
        left.emit("mine")
        right.emit("theirs", x=3)
        left.adopt(right)
        assert [event["seq"] for event in left.events()] == [0, 1]
        assert left.events()[1]["kind"] == "theirs"
        assert left.events()[1]["x"] == 3

    def test_disabled(self):
        log = EventLog(enabled=False)
        log.emit("ev")
        assert len(log) == 0 and log.seq == 0


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_sanitize_names(self):
        assert sanitize_metric_name("nvm.meta_writes") == "nvm_meta_writes"
        assert sanitize_metric_name("a-b c") == "a_b_c"
        assert sanitize_metric_name("2fast") == "_2fast"

    def test_escaping(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'

    def test_counter_and_gauge_lines(self):
        registry = MetricRegistry()
        registry.counter("nvm.data_writes").inc(12)
        registry.gauge("wpq.depth").set(3)
        registry.gauge("wpq.depth").set(1)
        text = to_prometheus_text(registry)
        assert "star_nvm_data_writes_total 12" in text
        assert "star_wpq_depth 1" in text
        assert 'star_wpq_depth{watermark="high"} 3' in text
        assert "# TYPE star_nvm_data_writes_total counter" in text

    def test_histogram_series(self):
        registry = MetricRegistry()
        hist = registry.histogram("depth")
        for v in (1, 2, 2, 5):
            hist.observe(v)
        text = to_prometheus_text(registry, namespace="x")
        assert 'x_depth_bucket{le="1"} 1' in text
        assert 'x_depth_bucket{le="2"} 3' in text
        assert 'x_depth_bucket{le="8"} 4' in text
        assert 'x_depth_bucket{le="+Inf"} 4' in text
        assert "x_depth_sum 10" in text
        assert "x_depth_count 4" in text

    def test_round_trip(self):
        registry = MetricRegistry()
        registry.counter("a.hits").inc(7)
        registry.gauge("b.level").set(2.5)
        for v in (0, 1, 3):
            registry.histogram("c.dist").observe(v)
        samples = parse_prometheus_text(to_prometheus_text(registry))
        assert samples[("star_a_hits_total", ())] == 7
        assert samples[("star_b_level", ())] == 2.5
        assert samples[
            ("star_b_level", (("watermark", "high"),))
        ] == 2.5
        assert samples[("star_c_dist_bucket", (("le", "0"),))] == 1
        assert samples[("star_c_dist_bucket", (("le", "+Inf"),))] == 3
        assert samples[("star_c_dist_count", ())] == 3

    def test_round_trip_label_escaping(self):
        parsed = parse_prometheus_text(
            'm{k="a\\"b\\nc"} 1\n'
        )
        assert parsed[("m", (("k", 'a"b\nc'),))] == 1.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("!! not exposition format")

    def test_empty_registry(self):
        assert to_prometheus_text(MetricRegistry()) == ""

    def test_no_namespace(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        assert "c_total 1" in to_prometheus_text(registry, namespace="")


class TestSnapshotAndJson:
    def test_snapshot_shape(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(4)
        registry.events.emit("ev", x=1)
        with registry.tracer.span("s"):
            pass
        snapshot = telemetry_snapshot(registry)
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"]["g"] == {"value": 1, "high": 1}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["spans"][0]["name"] == "s"
        assert snapshot["events"]["dropped"] == 0
        assert snapshot["events"]["entries"][0]["kind"] == "ev"

    def test_snapshot_events_limit(self):
        registry = MetricRegistry()
        for i in range(5):
            registry.events.emit("ev", i=i)
        snapshot = telemetry_snapshot(registry, events_limit=2)
        assert [event["i"]
                for event in snapshot["events"]["entries"]] == [3, 4]

    def test_to_json_parses(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        payload = json.loads(to_json(registry))
        assert payload["counters"] == {"c": 1}


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_counters_prefix_filter(self):
        text = render_counters({"nvm.w": 1, "ctrl.x": 2}, prefix="nvm.")
        assert "nvm.w" in text and "ctrl.x" not in text
        assert "(no counters" in render_counters({}, prefix="zz.")

    def test_histogram_bars(self):
        hist = Histogram("h")
        for v in (1, 1, 1, 4):
            hist.observe(v)
        text = render_histogram("h", hist.to_dict())
        assert "n=4" in text
        assert "le 1" in text and "###" in text

    def test_span_tree_error_marker(self):
        tracer = SpanTracer()
        with pytest.raises(KeyError):
            with tracer.span("phase", lines=3):
                raise KeyError("x")
        text = render_span_tree(tracer.to_list())
        assert "phase" in text
        assert "lines=3" in text
        assert "[error: KeyError]" in text

    def test_events_dropped_notice(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("ev", i=i)
        text = render_events({"dropped": log.dropped,
                              "entries": log.events()})
        assert "3 older events dropped" in text

    def test_full_snapshot_sections(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        text = render_snapshot(telemetry_snapshot(registry))
        for section in ("counters", "gauges", "histograms", "spans",
                        "events"):
            assert "== %s " % section in text


# ----------------------------------------------------------------------
# end-to-end: machine runs carry telemetry; star-stats renders it
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def star_run_result():
    from repro.bench.runner import config_for_scale, run_one

    return run_one(config_for_scale("smoke"), "star", "hash", 200,
                   crash_and_recover=True)


class TestIntegration:
    def test_result_extras_telemetry(self, star_run_result):
        telemetry = star_run_result.extras["telemetry"]
        run, recovery = telemetry["run"], telemetry["recovery"]
        # per-level SIT write counters and the cascade-depth histogram
        assert any(name.startswith("sit.level")
                   for name in run["counters"])
        assert run["histograms"]["ctrl.cascade_depth"]["count"] > 0
        assert run["histograms"]["sit.persist_level"]["count"] > 0
        # crash event recorded in the run log
        kinds = {event["kind"] for event in run["events"]["entries"]}
        assert "crash" in kinds
        # recovery spans: the 4-phase tree with timings
        root = recovery["spans"][0]
        assert root["name"] == "recovery.star"
        phases = [child["name"] for child in root["children"]]
        assert phases == ["recovery.locate", "recovery.restore",
                          "recovery.remac", "recovery.verify"]
        assert all(child["duration_s"] >= 0
                   for child in root["children"])
        assert any(event["kind"] == "recover_line"
                   for event in recovery["events"]["entries"])

    def test_result_telemetry_properties(self, star_run_result):
        assert star_run_result.telemetry is not None
        assert star_run_result.recovery_telemetry is not None
        assert (star_run_result.telemetry["counters"]
                == star_run_result.extras["telemetry"]["run"]["counters"])

    def test_telemetry_disabled_run(self):
        from repro.bench.runner import config_for_scale, run_one

        result = run_one(config_for_scale("smoke"), "star", "hash", 100,
                         crash_and_recover=True, telemetry=False)
        # no snapshot bundle — but counters still counted into stats
        assert "telemetry" not in result.extras
        assert result.telemetry is None
        assert result.recovery_telemetry is None
        assert result.stats["nvm.data_writes"] > 0

    def test_events_jsonl_streams(self, tmp_path):
        from repro.bench.runner import config_for_scale, run_one

        path = str(tmp_path / "ev.jsonl")
        run_one(config_for_scale("smoke"), "star", "hash", 100,
                crash_and_recover=True, events_jsonl=path)
        lines = open(path).read().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert {"seq", "t", "kind"} <= set(first)
        # the trail is complete: recovery events stream into the same
        # sink even though they live in the separate recovery registry
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "crash" in kinds
        assert "recover_line" in kinds

    def test_star_stats_cli(self, capsys, tmp_path):
        from repro.tools.stats import main

        json_path = str(tmp_path / "t.json")
        prom_path = str(tmp_path / "t.prom")
        code = main([
            "--workload", "hash", "--operations", "150",
            "--memory-mb", "8", "--cache-kb", "4",
            "--json", json_path, "--prom", prom_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "== counters " in out
        assert "== recovery " in out
        assert "recovery.star" in out
        payload = json.load(open(json_path))
        assert "run" in payload and "recovery" in payload
        # the Prometheus dump round-trips through the parser
        samples = parse_prometheus_text(open(prom_path).read())
        assert any(name.startswith("star_recovery_")
                   for name, _labels in samples)

    def test_star_stats_prefix_filter(self, capsys):
        from repro.tools.stats import main

        main(["--workload", "hash", "--operations", "100",
              "--memory-mb", "8", "--cache-kb", "4",
              "--no-crash", "--prefix", "nvm."])
        out = capsys.readouterr().out
        counters = out.split("== counters ")[1].split("\n== ")[0]
        assert "nvm." in counters
        assert "ctrl." not in counters
