"""Unit tests for SIT authentication (node and data MACs)."""

from dataclasses import replace

from repro.config import LSB_BITS
from repro.tree.sit import SITAuthenticator

KEY = b"sit-test-key"
NODE = (2, 17)
COUNTERS = tuple(range(10, 18))


class TestNodeImages:
    def setup_method(self):
        self.auth = SITAuthenticator(KEY)

    def test_image_carries_parent_lsbs(self):
        parent_counter = 0x5AB
        image = self.auth.make_node_image(NODE, COUNTERS, parent_counter)
        assert image.lsbs == parent_counter & ((1 << LSB_BITS) - 1)

    def test_verify_accepts_genuine(self):
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        assert self.auth.verify_node_image(NODE, image, 7)

    def test_verify_rejects_wrong_parent_counter(self):
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        assert not self.auth.verify_node_image(NODE, image, 8)

    def test_verify_rejects_tampered_counter(self):
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        counters = list(image.counters)
        counters[3] += 1
        forged = replace(image, counters=tuple(counters))
        assert not self.auth.verify_node_image(NODE, forged, 7)

    def test_verify_rejects_tampered_lsbs(self):
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        forged = replace(image, lsbs=image.lsbs ^ 1)
        assert not self.auth.verify_node_image(NODE, forged, 7)

    def test_verify_rejects_tampered_mac(self):
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        forged = replace(image, mac=image.mac ^ 1)
        assert not self.auth.verify_node_image(NODE, forged, 7)

    def test_verify_rejects_relocated_node(self):
        """The node address is part of the MAC (splicing defence)."""
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        assert not self.auth.verify_node_image((2, 18), image, 7)
        assert not self.auth.verify_node_image((3, 17), image, 7)

    def test_different_keys_disagree(self):
        other = SITAuthenticator(b"different")
        image = self.auth.make_node_image(NODE, COUNTERS, 7)
        assert not other.verify_node_image(NODE, image, 7)


class TestDataImages:
    def setup_method(self):
        self.auth = SITAuthenticator(KEY)
        self.ciphertext = bytes(range(64))

    def test_image_carries_counter_lsbs(self):
        image = self.auth.make_data_image(99, self.ciphertext, 0x7FF)
        assert image.lsbs == 0x3FF

    def test_verify_accepts_genuine(self):
        image = self.auth.make_data_image(99, self.ciphertext, 5)
        assert self.auth.verify_data_image(99, image, 5)

    def test_verify_rejects_wrong_counter(self):
        image = self.auth.make_data_image(99, self.ciphertext, 5)
        assert not self.auth.verify_data_image(99, image, 6)

    def test_verify_rejects_tampered_ciphertext(self):
        image = self.auth.make_data_image(99, self.ciphertext, 5)
        forged = replace(
            image, ciphertext=b"\xff" + image.ciphertext[1:]
        )
        assert not self.auth.verify_data_image(99, forged, 5)

    def test_verify_rejects_relocated_line(self):
        image = self.auth.make_data_image(99, self.ciphertext, 5)
        assert not self.auth.verify_data_image(100, image, 5)

    def test_verify_rejects_tampered_lsbs(self):
        image = self.auth.make_data_image(99, self.ciphertext, 5)
        forged = replace(image, lsbs=image.lsbs ^ 0x200)
        assert not self.auth.verify_data_image(99, forged, 5)
