"""Tests for the Phoenix baseline (Section II-E concurrent work)."""

import pytest

from repro.config import small_config
from repro.sim.machine import Machine

from conftest import run_small_workload


def phoenix_machine(workload="hash", operations=150, seed=7):
    machine = Machine(small_config(), scheme="phoenix")
    run_small_workload(machine, workload, operations=operations,
                       seed=seed)
    return machine


class TestRuntime:
    def test_registered(self):
        from repro.schemes import make_scheme
        assert make_scheme("phoenix").name == "phoenix"

    def test_data_writes_carry_no_st_write(self):
        """The whole point: unlike Anubis, a user-data write does not
        shadow its counter block."""
        machine = Machine(small_config(), scheme="phoenix")
        machine.controller.write_data(0)
        assert machine.stats["nvm.st_writes"] == 0

    def test_periodic_counter_block_persistence(self):
        machine = Machine(small_config(), scheme="phoenix")
        for _ in range(8):  # stride defaults to 4
            machine.controller.write_data(0)
        assert machine.stats["phoenix.periodic_persists"] == 2

    def test_traffic_between_star_and_anubis(self):
        config = small_config()
        writes = {}
        for scheme in ("wb", "star", "phoenix", "anubis"):
            machine = Machine(config, scheme=scheme)
            run_small_workload(machine, "hash", operations=250)
            writes[scheme] = machine.nvm.total_writes()
        assert writes["wb"] < writes["phoenix"] < writes["anubis"]

    def test_st_writes_only_for_tree_levels(self):
        machine = phoenix_machine(operations=250)
        geometry = machine.controller.geometry
        for slot in machine.nvm.st_slots():
            entry = machine.nvm._st[slot]
            level, _index = geometry.node_at(entry.meta_index)
            assert level >= 1


class TestRecovery:
    def test_recovers_dirty_population_exactly(self):
        machine = phoenix_machine(operations=250)
        machine.crash()
        report = machine.recover()
        assert report.verified
        assert machine.oracle_check(report)

    @pytest.mark.parametrize("workload", ["array", "btree", "queue"])
    def test_recovers_across_workloads(self, workload):
        machine = phoenix_machine(workload, operations=150)
        machine.crash()
        report = machine.recover()
        assert machine.oracle_check(report)

    def test_probes_every_counter_block(self):
        """Phoenix cannot locate stale counter blocks: recovery scans
        them all (STAR's bitmap index is what avoids this)."""
        machine = phoenix_machine(operations=60)
        machine.crash()
        report = machine.recover()
        num_blocks = machine.controller.geometry.level_counts[0]
        # at least one NVM metadata read per counter block
        assert report.nvm_reads >= num_blocks

    def test_report_separates_probing_from_shadow_table(self):
        """Regression: stale_lines used to be len(restored), conflating
        'block rewritten because probing found drift' with 'tree node
        reinstated from the ST'. The split must add up and stale_lines
        must count only lines that actually went stale."""
        machine = phoenix_machine(operations=250)
        machine.crash()
        report = machine.recover()
        geometry = machine.controller.geometry
        assert report.probed_blocks == geometry.level_counts[0]
        assert 0 < report.probed_stale_lines <= report.probed_blocks
        assert report.st_restored_lines > 0
        assert report.stale_lines == (
            report.st_restored_lines + report.probed_stale_lines
        )
        # restored_lines covers both mechanisms, never less than stale
        assert report.restored_lines >= report.stale_lines

    def test_stale_count_tracks_drift_not_restores(self):
        """A single hammered block: exactly one probed-stale line even
        though every counter block is probed."""
        machine = Machine(small_config(), scheme="phoenix")
        for _ in range(3):  # below the stride: never persisted
            machine.controller.write_data(8)
        machine.crash()
        report = machine.recover()
        assert report.probed_stale_lines == 1
        assert report.stale_lines == 1 + report.st_restored_lines

    def test_recovery_slower_than_star(self):
        config = small_config()
        times = {}
        for scheme in ("star", "phoenix"):
            machine = Machine(config, scheme=scheme)
            run_small_workload(machine, "hash", operations=200)
            machine.crash()
            times[scheme] = machine.recover().recovery_time_ns
        assert times["phoenix"] > times["star"]

    def test_erased_data_line_fails_probe(self):
        machine = Machine(small_config(), scheme="phoenix")
        for _ in range(4):  # hits the stride: the block is persisted
            machine.controller.write_data(0)
        machine.crash()
        machine.nvm._data.pop(0)
        report = machine.recover()
        assert not report.verified

    def test_erasure_before_first_persist_is_undetectable(self):
        """The documented gap vs STAR: without a root commitment over
        the counter state, erasing a line whose counter block never
        persisted looks pristine to Phoenix — STAR's cache-tree catches
        the equivalent attack (tests/test_recovery.py)."""
        machine = Machine(small_config(), scheme="phoenix")
        machine.controller.write_data(0)
        machine.crash()
        machine.nvm._data.pop(0)
        report = machine.recover()
        assert report.verified  # silently wrong — Phoenix's limitation
        assert not machine.oracle_check(report)

    def test_heavy_counter_drift_recovers(self):
        """The stride bounds the probe distance even under hammering."""
        machine = Machine(small_config(), scheme="phoenix")
        for _ in range(37):
            machine.controller.write_data(8)
        machine.crash()
        report = machine.recover()
        assert report.verified
        assert machine.oracle_check(report)
