"""HTTP lease transport: verbs over the wire, fencing, shipping, churn.

The acceptance property mirrors the filesystem farm's: however flaky
the network — dropped requests, dropped responses, middlebox
duplicates, truncated bodies — a campaign run entirely over HTTP (no
shared filesystem between worker stores and the board) converges to
an export byte-identical to a serial run, with every zombie and
duplicate delivery absorbed by the board's fencing, not by transport
heuristics. Servers bind ephemeral localhost ports; clocks are fakes,
so retries and steals run in microseconds.
"""

import json

import pytest

from repro.bench.runner import config_for_scale
from repro.lab.clock import BackoffPolicy, FakeClock
from repro.lab.farm import Coordinator, Worker, board_path
from repro.lab.lease import LeaseBoard
from repro.lab.net.client import HttpLeaseClient
from repro.lab.net.flaky import FlakyProxy, scripted_plan, seeded_plan
from repro.lab.net.server import LeaseServer
from repro.lab.net.transport import (
    TransportError,
    backoff_from_wire,
    backoff_to_wire,
    lease_from_wire,
    lease_to_wire,
)
from repro.lab.scheduler import Scheduler
from repro.lab.spec import bench_spec
from repro.lab.store import ExportSource, ResultStore, StoreError
from repro.util.stats import Stats

CONFIG = config_for_scale("smoke")

#: Instant client-side retry pacing (slept through a FakeClock anyway).
FAST = BackoffPolicy("linear", base_s=0.01, cap_s=0.05)


def make_specs(count=4, operations=40):
    cells = [("wb", "array"), ("star", "array"),
             ("wb", "hash"), ("star", "hash")]
    return [
        bench_spec(CONFIG, scheme, workload, operations, seed=7)
        for scheme, workload in cells[:count]
    ]


def export_text(store):
    return json.dumps(store.export(), sort_keys=True)


def serial_export(tmp_path, specs):
    store = ResultStore(tmp_path / "serial")
    Scheduler(store).run(specs)
    return export_text(store)


def start_server(tmp_path, clock=None, stats=None):
    """A LeaseServer over a fresh board + authoritative store."""
    stats = stats or Stats(enabled=True)
    board = LeaseBoard(board_path(tmp_path / "farm"),
                       clock=clock or FakeClock(), cross_thread=True)
    store = ResultStore(tmp_path / "auth", stats=stats,
                        cross_thread=True)
    server = LeaseServer(board, store, stats=stats).start()
    return server, board, store, stats


def client_for(server_or_url, retries=5):
    url = getattr(server_or_url, "url", server_or_url)
    return HttpLeaseClient(url, clock=FakeClock(), retries=retries,
                           backoff=FAST, stats=Stats(enabled=True))


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
class TestWire:
    def test_lease_round_trips(self):
        from repro.lab.lease import Lease

        spec = make_specs(1)[0]
        lease = Lease(spec=spec, fence=3, deadline=12.5, stolen=True,
                      attempts=2)
        wire = lease_to_wire(lease)
        json.dumps(wire)  # must be JSON-ready as-is
        back = lease_from_wire(wire)
        assert back == lease
        assert back.spec_hash == spec.spec_hash

    def test_backoff_round_trips(self):
        policy = BackoffPolicy("exponential", base_s=0.25, cap_s=8.0)
        assert backoff_from_wire(backoff_to_wire(policy)) == policy
        assert backoff_to_wire(None) is None
        assert backoff_from_wire(None) is None


# ----------------------------------------------------------------------
# verbs over the wire
# ----------------------------------------------------------------------
class TestHttpVerbs:
    def test_seed_claim_complete_lifecycle(self, tmp_path):
        specs = make_specs(3)
        server, board, _store, _stats = start_server(tmp_path)
        try:
            client = client_for(server)
            assert client.seed(specs) == 3
            assert client.seed(specs) == 0  # idempotent, like local
            leases = client.claim("w1", lease_s=60.0, limit=3)
            hashes = [lease.spec_hash for lease in leases]
            assert hashes == sorted(hashes)  # board order survives
            for lease in leases:
                assert client.renew("w1", lease.spec_hash,
                                    lease.fence, 60.0)
                assert client.complete("w1", lease.spec_hash,
                                       lease.fence)
            assert client.finished()
            assert client.counts()["done"] == 3
            assert client.failures() == []
        finally:
            server.shutdown()
            board.close()

    def test_duplicate_complete_is_a_fenced_noop(self, tmp_path):
        server, board, _store, stats = start_server(tmp_path)
        try:
            client = client_for(server)
            client.seed(make_specs(1))
            (lease,) = client.claim("w1", lease_s=60.0)
            assert client.complete("w1", lease.spec_hash, lease.fence)
            # a retried delivery of the same complete: acknowledged,
            # not re-applied, and counted as a duplicate
            assert client.complete("w1", lease.spec_hash, lease.fence)
            assert stats.get("lab.net.duplicates") == 1
            assert board.counts()["done"] == 1
        finally:
            server.shutdown()
            board.close()

    def test_zombie_fence_is_rejected_over_the_wire(self, tmp_path):
        clock = FakeClock()
        server, board, _store, stats = start_server(tmp_path,
                                                    clock=clock)
        try:
            zombie = client_for(server)
            thief = client_for(server)
            zombie.seed(make_specs(1))
            (held,) = zombie.claim("zombie", lease_s=5.0)
            clock.advance(6.0)  # the zombie misses its deadline
            (stolen,) = thief.claim("thief", lease_s=60.0)
            assert stolen.stolen and stolen.fence == held.fence + 1
            # the zombie comes back: every verb under the old fence
            # is rejected exactly as it would be against a local board
            assert not zombie.renew("zombie", held.spec_hash,
                                    held.fence, 60.0)
            assert not zombie.complete("zombie", held.spec_hash,
                                       held.fence)
            assert zombie.fail("zombie", held.spec_hash, held.fence,
                               "late") == "stale"
            assert stats.get("lab.net.rejects") == 3
            # the thief's fence still works
            assert thief.complete("thief", stolen.spec_hash,
                                  stolen.fence)
        finally:
            server.shutdown()
            board.close()

    def test_fail_carries_backoff_policy_over_the_wire(self, tmp_path):
        clock = FakeClock()
        server, board, _store, _stats = start_server(tmp_path,
                                                     clock=clock)
        try:
            client = client_for(server)
            client.seed(make_specs(1))
            (lease,) = client.claim("w1", lease_s=60.0)
            policy = BackoffPolicy("linear", base_s=7.0, cap_s=60.0)
            outcome = client.fail("w1", lease.spec_hash, lease.fence,
                                  "boom", max_attempts=3,
                                  backoff=policy)
            assert outcome == "requeued"
            row = board.lease_row(lease.spec_hash)
            assert row["state"] == "pending"
            # requeued under the policy's delay: not claimable yet
            assert client.claim("w2", lease_s=60.0) == []
            clock.advance(7.0)
            assert len(client.claim("w2", lease_s=60.0)) == 1
        finally:
            server.shutdown()
            board.close()

    def test_claim_hardening_surfaces_as_transport_error(
            self, tmp_path):
        server, board, _store, _stats = start_server(tmp_path)
        try:
            client = client_for(server, retries=3)
            client.seed(make_specs(1))
            # 4xx rejections fail fast: no retry spent on them
            with pytest.raises(TransportError, match="lease_s"):
                client.claim("w1", lease_s=0.0)
            with pytest.raises(TransportError, match="batch"):
                client.claim("w1", lease_s=60.0, limit=0)
            assert client.stats.get("lab.net.requests") <= 3
        finally:
            server.shutdown()
            board.close()

    def test_unknown_verb_and_unreachable_coordinator(self, tmp_path):
        server, board, _store, _stats = start_server(tmp_path)
        url = server.url
        try:
            client = client_for(server)
            with pytest.raises(TransportError, match="unknown verb"):
                client._verb("explode", {})
        finally:
            server.shutdown()
            board.close()
        dead = client_for(url, retries=1)
        with pytest.raises(TransportError, match="after 2 attempts"):
            dead.finished()
        assert dead.stats.get("lab.net.retries") == 1
        assert dead.stats.get("lab.net.errors") == 1


# ----------------------------------------------------------------------
# result shipping
# ----------------------------------------------------------------------
class TestUpload:
    def _computed_entries(self, tmp_path, specs):
        local = ResultStore(tmp_path / "local")
        Scheduler(local).run(specs)
        return local.export(), local

    def test_upload_lands_in_the_authoritative_store(self, tmp_path):
        specs = make_specs(2)
        entries, local = self._computed_entries(tmp_path, specs)
        server, board, store, stats = start_server(tmp_path)
        try:
            client = client_for(server)
            assert client.upload_results(entries) == 2
            # ingested through import_from: exports stay identical
            assert export_text(store) == export_text(local)
            # re-shipping (a retried upload) imports nothing new
            assert client.upload_results(entries) == 0
            assert export_text(store) == export_text(local)
            assert stats.get("lab.net.upload_bytes") > 0
            assert client.stats.get("lab.net.upload_bytes") > 0
        finally:
            server.shutdown()
            board.close()

    def test_corrupted_upload_is_rejected_wholesale(self, tmp_path):
        specs = make_specs(2)
        entries, _local = self._computed_entries(tmp_path, specs)
        entries[0]["spec_hash"] = "0" * len(entries[0]["spec_hash"])
        server, board, store, _stats = start_server(tmp_path)
        try:
            client = client_for(server, retries=0)
            with pytest.raises(TransportError, match="hash"):
                client.upload_results(entries)
            assert len(store) == 0  # nothing landed under a bad key
        finally:
            server.shutdown()
            board.close()

    def test_export_source_validates_entries(self, tmp_path):
        specs = make_specs(1)
        entries, _local = self._computed_entries(tmp_path, specs)
        source = ExportSource(entries)
        assert source.hashes() == [specs[0].spec_hash]
        with pytest.raises(StoreError, match="hash"):
            ExportSource([dict(entries[0], spec_hash="beef")])
        with pytest.raises(StoreError, match="missing"):
            ExportSource([{"spec": {}}])
        with pytest.raises(StoreError, match="malformed"):
            ExportSource(["not-a-dict"])


# ----------------------------------------------------------------------
# a full farm over HTTP (no shared filesystem)
# ----------------------------------------------------------------------
class TestHttpFarm:
    def _coordinator(self, tmp_path, stats):
        store = ResultStore(tmp_path / "auth", stats=stats)
        return Coordinator(store, tmp_path / "farm",
                           clock=FakeClock(), stats=stats), store

    def test_http_campaign_matches_serial(self, tmp_path):
        specs = make_specs()
        reference = serial_export(tmp_path, specs)
        stats = Stats(enabled=True)
        coordinator, store = self._coordinator(tmp_path, stats)
        coordinator.prepare(specs, name="http")
        server, board, _sstore, _ = start_server(tmp_path, stats=stats)
        try:
            # the worker's dir is NOT the farm dir: store and
            # telemetry are private, only HTTP is shared
            workdir = tmp_path / "remote-host" / "w1"
            wstats = Stats(enabled=True)
            summary = Worker(workdir, "w1", clock=FakeClock(),
                             stats=wstats,
                             coordinator=server.url,
                             net_backoff=FAST).run()
            assert summary["done"] == len(specs)
            assert (workdir / "workers" / "w1" / "store").is_dir()
            report = coordinator.run(specs, name="http",
                                     max_wall_s=60)
            assert report.ok
            assert export_text(store) == reference
            assert wstats.get("lab.farm.results_shipped") == len(specs)
        finally:
            server.shutdown()
            board.close()
            coordinator.close()

    def test_sigkilled_worker_is_stolen_over_the_wire(self, tmp_path):
        specs = make_specs()
        reference = serial_export(tmp_path, specs)
        stats = Stats(enabled=True)
        board_clock = FakeClock()
        coordinator, store = self._coordinator(tmp_path, stats)
        coordinator.prepare(specs, name="churn")
        server, board, _sstore, _ = start_server(
            tmp_path, clock=board_clock, stats=stats)
        try:
            # the victim claims over HTTP, then "dies" (never renews,
            # never completes — exactly what SIGKILL leaves behind)
            victim = client_for(server)
            grabbed = victim.claim("victim", lease_s=5.0, limit=2)
            assert len(grabbed) == 2
            board_clock.advance(6.0)  # deadlines pass on the board
            summary = Worker(tmp_path / "survivor", "survivor",
                             clock=FakeClock(),
                             coordinator=server.url,
                             net_backoff=FAST).run()
            assert summary["stolen"] >= 2
            assert summary["done"] == len(specs)
            report = coordinator.run(specs, name="churn",
                                     max_wall_s=60)
            assert report.ok
            assert export_text(store) == reference
        finally:
            server.shutdown()
            board.close()
            coordinator.close()

    def test_worker_without_coordinator_raises_transport_error(
            self, tmp_path):
        worker = Worker(tmp_path / "w", "w1", clock=FakeClock(),
                        coordinator="http://127.0.0.1:9",  # discard
                        net_retries=0, net_backoff=FAST,
                        wait_s=0.5, telemetry=False)
        with pytest.raises(TransportError, match="coordinator"):
            worker.run()


# ----------------------------------------------------------------------
# the flaky network
# ----------------------------------------------------------------------
class TestFlakyNetwork:
    def test_dropped_response_turns_into_absorbed_duplicate(
            self, tmp_path):
        """Request sequence for a 1-cell campaign is deterministic:
        ping, claim, upload, complete. Dropping the complete's
        *response* forces a client retry the board must absorb as a
        fenced duplicate."""
        specs = make_specs(1)
        reference = serial_export(tmp_path, specs)
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "auth", stats=stats)
        coordinator = Coordinator(store, tmp_path / "farm",
                                  clock=FakeClock(), stats=stats)
        coordinator.prepare(specs, name="flaky")
        server, board, _sstore, _ = start_server(tmp_path, stats=stats)
        proxy = FlakyProxy(
            server.url,
            scripted_plan([None, None, None, "drop_response"]),
            clock=FakeClock(),
        ).start()
        try:
            summary = Worker(tmp_path / "w", "w1", clock=FakeClock(),
                             coordinator=proxy.url,
                             net_backoff=FAST).run()
            assert summary["done"] == 1
            assert proxy.injected == {"drop_response": 1}
            # the retried complete was absorbed, not double-applied
            assert stats.get("lab.net.duplicates") == 1
            assert board.counts()["done"] == 1
            report = coordinator.run(specs, name="flaky",
                                     max_wall_s=60)
            assert report.ok
            assert export_text(store) == reference
        finally:
            proxy.shutdown()
            server.shutdown()
            board.close()
            coordinator.close()

    def test_seeded_fault_storm_still_converges_byte_identical(
            self, tmp_path):
        specs = make_specs()
        reference = serial_export(tmp_path, specs)
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "auth", stats=stats)
        coordinator = Coordinator(store, tmp_path / "farm",
                                  clock=FakeClock(), stats=stats)
        coordinator.prepare(specs, name="storm")
        # the worker and the server board share one fake clock: a
        # claim whose response the network ate leaves its cells
        # leased, and only the worker's own idle backoff (which
        # advances this clock) lets those leases expire for re-claim
        shared_clock = FakeClock()
        server, board, _sstore, _ = start_server(
            tmp_path, clock=shared_clock, stats=stats)
        plan = seeded_plan(1303, {
            "drop_request": 0.08,
            "drop_response": 0.08,
            "duplicate": 0.05,
            "truncate": 0.05,
        })
        proxy = FlakyProxy(server.url, plan,
                           clock=FakeClock()).start()
        worker_stats = Stats(enabled=True)
        try:
            summary = Worker(tmp_path / "w", "w1",
                             clock=shared_clock,
                             stats=worker_stats,
                             coordinator=proxy.url,
                             net_retries=8, net_backoff=FAST).run()
            assert summary["done"] == len(specs)
            assert sum(proxy.injected.values()) > 0  # storm happened
            assert worker_stats.get("lab.net.retries") > 0
            report = coordinator.run(specs, name="storm",
                                     max_wall_s=60)
            assert report.ok
            # every cell done exactly once on the board; replays were
            # absorbed (duplicates) or rejected (stale fences), never
            # double-applied
            assert board.counts()["done"] == len(specs)
            assert export_text(store) == reference
        finally:
            proxy.shutdown()
            server.shutdown()
            board.close()
            coordinator.close()

    def test_scripted_plan_and_seeded_plan_are_deterministic(self):
        plan = scripted_plan(["delay", None])
        assert [plan(i, "/x") for i in range(3)] == [
            "delay", None, None]
        first = seeded_plan(7, {"drop_request": 0.5})
        second = seeded_plan(7, {"drop_request": 0.5})
        draws = [(first(i, "/x"), second(i, "/x")) for i in range(32)]
        assert all(mine == twin for mine, twin in draws)
        with pytest.raises(ValueError, match="unknown fault"):
            seeded_plan(7, {"gremlins": 1.0})


# ----------------------------------------------------------------------
# lab.net metric hygiene
# ----------------------------------------------------------------------
class TestNetMetricsCatalogued:
    def test_every_emitted_net_metric_is_catalogued(self, tmp_path):
        from repro.obs import catalog

        specs = make_specs(1)
        stats = Stats(enabled=True)
        server, board, _store, _ = start_server(tmp_path, stats=stats)
        try:
            client = HttpLeaseClient(server.url, clock=FakeClock(),
                                     stats=stats, backoff=FAST)
            client.seed(specs)
            (lease,) = client.claim("w1", lease_s=60.0)
            client.complete("w1", lease.spec_hash, lease.fence)
            client.complete("w1", lease.spec_hash, lease.fence)
        finally:
            server.shutdown()
            board.close()
        emitted = [name for name, _ in stats.registry.counters()
                   if name.startswith("lab.net.")]
        assert emitted  # the path above actually exercised the plane
        for name in emitted:
            assert catalog.lookup(name) == "counter", name
