"""Tests for the crash-consistency fuzzing campaign engine."""

import pytest

from repro.errors import ConfigError
from repro.fuzz import (
    ATTACK_MATRIX,
    CampaignSpec,
    CaseResult,
    CorpusFormatError,
    CorpusWriter,
    eligible_attacks,
    load_failures,
    load_summary,
    read_corpus,
    run_campaign,
    run_case,
    sample_cases,
)
from repro.fuzz.cli import main as fuzz_main
from repro.schemes import SIT_SCHEMES


class TestSampling:
    def test_sampling_is_deterministic(self):
        spec = CampaignSpec(cases=30, seed=9)
        first = [case.to_dict() for case in sample_cases(spec)]
        second = [case.to_dict() for case in sample_cases(spec)]
        assert first == second

    def test_different_seeds_differ(self):
        a = sample_cases(CampaignSpec(cases=20, seed=1))
        b = sample_cases(CampaignSpec(cases=20, seed=2))
        assert ([c.to_dict() for c in a] != [c.to_dict() for c in b])

    def test_case_roundtrips_through_dict(self):
        for case in sample_cases(CampaignSpec(cases=10, seed=3)):
            assert type(case).from_dict(case.to_dict()) == case

    def test_attacks_respect_scheme_matrix(self):
        spec = CampaignSpec(cases=200, seed=4, attack_rate=1.0)
        for case in sample_cases(spec):
            if case.attack is not None:
                assert case.attack in ATTACK_MATRIX[case.scheme]

    def test_wb_never_gets_attacks(self):
        assert eligible_attacks("wb") == []
        spec = CampaignSpec(cases=60, seed=5, schemes=["wb"],
                            attack_rate=1.0)
        assert all(c.attack is None for c in sample_cases(spec))

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec(cases=0).validate()
        with pytest.raises(ConfigError):
            CampaignSpec(schemes=["nope"]).validate()
        with pytest.raises(ConfigError):
            CampaignSpec(workloads=["nope"]).validate()
        with pytest.raises(ConfigError):
            CampaignSpec(attack_rate=1.5).validate()
        with pytest.raises(ConfigError):
            CampaignSpec(min_operations=100, max_operations=50).validate()
        with pytest.raises(ConfigError):
            CampaignSpec(defect="nope").validate()


class TestCampaign:
    def test_all_schemes_zero_violations(self):
        """The acceptance gate: every scheme x three workloads survives
        a mixed attack campaign with no oracle violations."""
        spec = CampaignSpec(
            cases=40, seed=1, schemes=sorted(SIT_SCHEMES),
            workloads=["array", "hash", "queue"], attack_rate=0.6,
        )
        result = run_campaign(spec)
        assert result.ok, [f.violations for f in result.failures]
        assert {r.case.scheme for r in result.results} == set(SIT_SCHEMES)
        tampered = [r for r in result.results if r.tampered]
        assert tampered, "campaign never exercised an attack"
        assert all(r.detected_by is not None for r in tampered)

    def test_parallel_matches_serial(self):
        spec = CampaignSpec(cases=12, seed=6, attack_rate=0.5)
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        assert ([r.to_dict() for r in serial.results]
                == [r.to_dict() for r in parallel.results])

    def test_case_replays_identically(self):
        spec = CampaignSpec(cases=8, seed=7, attack_rate=1.0)
        for case in sample_cases(spec):
            assert run_case(case).to_dict() == run_case(case).to_dict()

    def test_counters_populated(self):
        spec = CampaignSpec(cases=10, seed=8)
        result = run_campaign(spec)
        counters = result.stats.snapshot()
        assert counters["fuzz.cases"] == 10
        assert sum(v for k, v in counters.items()
                   if k.startswith("fuzz.scheme.")) == 10


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        spec = CampaignSpec(cases=6, seed=2, attack_rate=1.0)
        campaign = run_campaign(spec)
        path = tmp_path / "corpus.jsonl"
        with CorpusWriter(path) as writer:
            writer.write_header(spec.to_dict())
            for result in campaign.results:  # record everything here
                writer.write_failure(result)
            writer.write_summary(campaign.summary())

        records = list(read_corpus(path))
        assert records[0]["type"] == "campaign"
        assert records[0]["spec"] == spec.to_dict()
        loaded = load_failures(path)
        assert ([r.to_dict() for r in loaded]
                == [r.to_dict() for r in campaign.results])
        assert load_summary(path)["cases"] == 6

    def test_gzip_corpus(self, tmp_path):
        path = tmp_path / "corpus.jsonl.gz"
        with CorpusWriter(path) as writer:
            writer.write_header({"seed": 1})
        assert [r["type"] for r in read_corpus(path)] == ["campaign"]

    def test_malformed_corpus_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "campaign"}\nnot json\n')
        with pytest.raises(CorpusFormatError):
            list(read_corpus(path))
        path.write_text('{"no": "type"}\n')
        with pytest.raises(CorpusFormatError):
            list(read_corpus(path))

    def test_result_roundtrips_with_type_tag(self):
        case = sample_cases(CampaignSpec(cases=1, seed=3))[0]
        result = run_case(case)
        record = result.to_dict()
        record["type"] = "failure"  # as the corpus stores it
        assert CaseResult.from_dict(record).to_dict() == result.to_dict()


class TestCli:
    def test_run_smoke(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        code = fuzz_main([
            "run", "--cases", "8", "--seed", "1",
            "--corpus", str(corpus), "--quiet",
        ])
        assert code == 0
        assert load_summary(corpus)["failures"] == 0

    def test_replay_empty_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        fuzz_main(["run", "--cases", "4", "--seed", "2",
                   "--corpus", str(corpus), "--quiet"])
        assert fuzz_main(["replay", str(corpus)]) == 0
