"""Unit tests for the ADR region and the memory layout."""

from repro.config import sim_config
from repro.mem.adr import AdrRegion
from repro.mem.layout import MemoryLayout, index_layer_counts
from repro.mem.nvm import NVM


class TestAdrRegion:
    def test_load_miss_reads_ra(self):
        nvm = NVM()
        nvm.flush_ra((1, 0), 42)
        adr = AdrRegion(2, nvm)
        assert adr.load((1, 0)) == 42
        assert nvm.stats["nvm.ra_reads"] == 1
        assert nvm.stats["adr.misses"] == 1

    def test_cold_miss_costs_no_nvm_traffic(self):
        """First touch of a never-spilled line: the recovery area holds
        no copy, so no RA read is issued and the line materializes as
        zero (the Table II accounting fix)."""
        nvm = NVM()
        adr = AdrRegion(2, nvm)
        assert adr.load((1, 0)) == 0
        assert nvm.stats["nvm.ra_reads"] == 0
        assert nvm.stats["adr.misses"] == 0
        assert nvm.stats["adr.cold_misses"] == 1
        assert nvm.stats["adr.accesses"] == 1

    def test_spilled_line_reload_is_a_real_miss(self):
        """Once a line has been spilled, reloading it reads the RA."""
        nvm = NVM()
        adr = AdrRegion(1, nvm)
        adr.load((1, 0))
        adr.store((1, 0), 5)
        adr.load((1, 1))          # spills (1, 0)
        assert nvm.stats["adr.spills"] == 1
        assert adr.load((1, 0)) == 5
        assert nvm.stats["adr.misses"] == 1
        assert nvm.stats["nvm.ra_reads"] == 1

    def test_load_hit_costs_nothing(self):
        nvm = NVM()
        adr = AdrRegion(2, nvm)
        adr.load((1, 0))
        reads = nvm.stats["nvm.ra_reads"]
        adr.load((1, 0))
        assert nvm.stats["nvm.ra_reads"] == reads
        assert nvm.stats["adr.hits"] == 1

    def test_overflow_spills_lru_to_ra(self):
        nvm = NVM()
        adr = AdrRegion(2, nvm)
        adr.load((1, 0))
        adr.store((1, 0), 7)
        adr.load((1, 1))
        adr.load((1, 2))  # spills (1, 0)
        assert (1, 0) not in adr
        assert nvm.peek_ra((1, 0)) == 7
        assert nvm.stats["nvm.ra_writes"] == 1

    def test_store_requires_residency(self):
        nvm = NVM()
        adr = AdrRegion(2, nvm)
        try:
            adr.store((1, 0), 1)
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_flush_on_power_failure_persists_residents(self):
        nvm = NVM()
        adr = AdrRegion(2, nvm)
        adr.load((1, 0))
        adr.store((1, 0), 9)
        writes = nvm.stats["nvm.ra_writes"]
        adr.flush_on_power_failure()
        assert nvm.peek_ra((1, 0)) == 9
        assert nvm.stats["nvm.ra_writes"] == writes  # battery, not traffic

    def test_hit_ratio_counts_traffic_free_accesses(self):
        """hit_ratio = accesses that issued no RA read, over accesses.
        A cold miss is traffic-free; a post-spill reload is not."""
        nvm = NVM()
        nvm.flush_ra((1, 0), 3)   # a spilled copy exists: real miss
        adr = AdrRegion(2, nvm)
        adr.load((1, 0))          # miss (RA read)
        adr.load((1, 0))          # hit
        adr.load((1, 1))          # cold miss (free)
        adr.load((1, 1))          # hit
        assert adr.hit_ratio() == 0.75


class TestIndexLayerCounts:
    def test_single_layer(self):
        assert index_layer_counts(100, 512) == [1]

    def test_two_layers(self):
        assert index_layer_counts(1000, 512) == [2, 1]

    def test_three_layers(self):
        counts = index_layer_counts(512 * 512 + 1, 512)
        assert len(counts) == 3
        assert counts[-1] == 1

    def test_each_layer_covers_the_one_below(self):
        counts = index_layer_counts(10 ** 6, 512)
        below = 10 ** 6
        for count in counts:
            assert count == -(-below // 512)
            below = count


class TestMemoryLayout:
    def test_summary_fields(self):
        layout = MemoryLayout.from_config(sim_config())
        summary = layout.summary()
        assert summary["data_lines"] == layout.num_data_lines
        assert summary["metadata_lines"] == layout.total_meta_lines
        assert summary["sit_levels"] == layout.geometry.num_levels

    def test_metadata_is_fraction_of_memory(self):
        layout = MemoryLayout.from_config(sim_config())
        # 8-ary tree: metadata is about 1/7th of the data lines
        ratio = layout.total_meta_lines / layout.num_data_lines
        assert 0.125 <= ratio < 0.15

    def test_recovery_area_is_small(self):
        layout = MemoryLayout.from_config(sim_config())
        assert layout.recovery_area_bytes < layout.metadata_bytes / 32

    def test_paper_scale_recovery_area(self):
        """16 GB -> RA around 1/512 of ~2 GB metadata (Section III-D)."""
        from repro.config import paper_config
        layout = MemoryLayout.from_config(paper_config())
        assert layout.geometry.num_levels == 9
        assert 3 * 1024 ** 2 < layout.recovery_area_bytes < 5 * 1024 ** 2
