"""Tests for the BMT substrate and the Osiris / Triad-NVM baselines."""

import pytest

from repro.bmt import (
    BMTController,
    BMTGeometry,
    BMTHasher,
    BmtWriteBackScheme,
    MINOR_LIMIT,
    MINORS_PER_BLOCK,
    OsirisScheme,
    SplitCounterImage,
    TriadNvmScheme,
    rebuild_tree,
)
from repro.bmt.counters import CachedCounterBlock
from repro.errors import IntegrityError
from repro.mem.nvm import NVM

KEY = b"bmt-test-key"
LINES = 64 * 40  # 40 counter blocks


def make_controller(scheme, lines=LINES):
    nvm = NVM()
    return BMTController(KEY, lines, nvm, scheme)


class TestSplitCounters:
    def test_zero_image(self):
        image = SplitCounterImage.zero()
        assert image.major == 0
        assert image.counter_for(5) == (0, 0)

    def test_bump_increments_minor(self):
        block = CachedCounterBlock(SplitCounterImage.zero())
        assert block.bump(3) is False
        assert block.counter_for(3) == (0, 1)

    def test_minor_overflow_bumps_major_and_resets(self):
        block = CachedCounterBlock(SplitCounterImage.zero())
        for _ in range(MINOR_LIMIT):
            block.bump(3)
        assert block.counter_for(3) == (0, MINOR_LIMIT)
        assert block.bump(3) is True
        assert block.major == 1
        assert block.counter_for(3) == (1, 1)
        assert block.counter_for(0) == (1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SplitCounterImage(major=-1, minors=(0,) * 64)
        with pytest.raises(ValueError):
            SplitCounterImage(major=0, minors=(0,) * 63)
        with pytest.raises(ValueError):
            CachedCounterBlock(SplitCounterImage.zero()).bump(64)


class TestGeometry:
    def test_counter_block_mapping(self):
        geometry = BMTGeometry(LINES)
        assert geometry.num_counter_blocks == 40
        assert geometry.counter_block_for(0) == 0
        assert geometry.counter_block_for(64) == 1
        assert geometry.minor_slot(65) == 1

    def test_page_lines(self):
        geometry = BMTGeometry(LINES)
        assert geometry.page_lines(1) == list(range(64, 128))

    def test_hash_levels_shrink(self):
        geometry = BMTGeometry(64 * 100)
        assert geometry.level_counts[0] == 13
        assert geometry.level_counts[-1] <= 8

    def test_node_meta_index_disjoint_from_blocks(self):
        geometry = BMTGeometry(LINES)
        index = geometry.node_meta_index(0, 0)
        assert index >= geometry.num_counter_blocks


class TestRebuildTree:
    def test_deterministic_root(self):
        geometry = BMTGeometry(LINES)
        hasher = BMTHasher(KEY)
        blocks = [SplitCounterImage.zero()] * geometry.num_counter_blocks
        _l1, root1 = rebuild_tree(geometry, hasher, blocks)
        _l2, root2 = rebuild_tree(geometry, hasher, blocks)
        assert root1 == root2

    def test_any_counter_change_changes_root(self):
        geometry = BMTGeometry(LINES)
        hasher = BMTHasher(KEY)
        blocks = [SplitCounterImage.zero()] * geometry.num_counter_blocks
        _levels, root = rebuild_tree(geometry, hasher, blocks)
        mutated = list(blocks)
        minors = [0] * MINORS_PER_BLOCK
        minors[7] = 1
        mutated[3] = SplitCounterImage(0, tuple(minors))
        _levels, new_root = rebuild_tree(geometry, hasher, mutated)
        assert new_root != root

    def test_requires_all_blocks(self):
        geometry = BMTGeometry(LINES)
        with pytest.raises(ValueError):
            rebuild_tree(geometry, BMTHasher(KEY), [])


class TestControllerDataPath:
    def test_write_read_roundtrip(self):
        controller = make_controller(BmtWriteBackScheme())
        plaintext = bytes(range(64))
        controller.write_data(5, plaintext)
        assert controller.read_data(5) == plaintext

    def test_unwritten_reads_zero(self):
        controller = make_controller(BmtWriteBackScheme())
        assert controller.read_data(5) == bytes(64)

    def test_tamper_detected(self):
        controller = make_controller(BmtWriteBackScheme())
        controller.write_data(5, b"\x01" * 64)
        image = controller.nvm.peek_data(5)
        from dataclasses import replace
        flipped = bytes([image.ciphertext[0] ^ 1])
        controller.nvm.tamper_data(
            5, replace(image, ciphertext=flipped + image.ciphertext[1:])
        )
        with pytest.raises(IntegrityError):
            controller.read_data(5)

    def test_minor_overflow_reencrypts_page(self):
        controller = make_controller(OsirisScheme(persist_stride=8))
        controller.write_data(1, b"\x07" * 64)  # neighbour in the page
        for _ in range(MINOR_LIMIT + 1):
            controller.write_data(0)
        assert controller.stats["bmt.minor_overflows"] == 1
        assert controller.stats["bmt.reencryption_writes"] >= 1
        # the neighbour survived re-encryption under the new major
        assert controller.read_data(1) == b"\x07" * 64


class TestOsiris:
    def test_periodic_persistence(self):
        controller = make_controller(OsirisScheme(persist_stride=4))
        for _ in range(8):
            controller.write_data(0)
        assert controller.stats["bmt.block_persists"] == 2

    def test_fewer_persists_than_writes(self):
        controller = make_controller(OsirisScheme(persist_stride=4))
        for line in range(0, 256):
            controller.write_data(line)
        assert controller.stats["bmt.block_persists"] < \
            controller.stats["bmt.data_writes"]

    def test_crash_recovery_restores_exact_counters(self):
        controller = make_controller(OsirisScheme(persist_stride=4))
        for line in (0, 0, 0, 64, 64, 130, 0, 7):
            controller.write_data(line)
        controller.crash()
        report = controller.recover()
        assert report.verified
        for index, image in controller.pre_crash_blocks.items():
            assert report.restored[index] == \
                (image.major,) + image.minors

    def test_recovery_scans_all_blocks(self):
        """Osiris cannot tell stale from fresh: it probes everything
        (the recovery-time weakness Section II-E notes)."""
        controller = make_controller(OsirisScheme())
        controller.write_data(0)
        controller.crash()
        report = controller.recover()
        assert report.stale_lines == \
            controller.geometry.num_counter_blocks

    def test_replay_detected_by_root(self):
        controller = make_controller(OsirisScheme(persist_stride=2))
        controller.write_data(0, b"\x01" * 64)
        controller.write_data(0, b"\x02" * 64)  # persist boundary
        old_data = controller.nvm.peek_data(0)
        old_block = controller.nvm.peek_meta(0)
        controller.write_data(0, b"\x03" * 64)
        controller.write_data(0, b"\x04" * 64)
        controller.crash()
        controller.nvm.tamper_data(0, old_data)
        controller.nvm.tamper_meta(0, old_block)
        report = controller.recover()
        assert not report.verified

    def test_probe_failure_detected(self):
        """Erasing a data line strands its minor counter: probing fails
        and recovery reports unverified."""
        controller = make_controller(OsirisScheme(persist_stride=4))
        controller.write_data(0)
        controller.write_data(0)
        controller.crash()
        controller.nvm._data.pop(0)
        report = controller.recover()
        assert not report.verified


class TestTriadNvm:
    def test_write_through_traffic(self):
        """Triad-NVM's 2-4x write overhead (Section II-E)."""
        wb = make_controller(BmtWriteBackScheme())
        triad = make_controller(TriadNvmScheme(persisted_levels=1))
        for line in range(0, 512, 3):
            wb.write_data(line)
            triad.write_data(line)
        ratio = triad.nvm.total_writes() / wb.nvm.total_writes()
        assert 2.0 <= ratio <= 4.0

    def test_more_levels_more_traffic(self):
        lines = 64 * 600  # deep enough for three hash levels
        one = make_controller(TriadNvmScheme(persisted_levels=1),
                              lines=lines)
        two = make_controller(TriadNvmScheme(persisted_levels=2),
                              lines=lines)
        assert one.geometry.num_hash_levels >= 2
        for line in range(0, 512, 7):
            one.write_data(line)
            two.write_data(line)
        assert two.nvm.total_writes() > one.nvm.total_writes()

    def test_crash_recovery_verifies(self):
        controller = make_controller(TriadNvmScheme())
        for line in (0, 64, 64, 300, 0):
            controller.write_data(line)
        controller.crash()
        report = controller.recover()
        assert report.verified
        for index, image in controller.pre_crash_blocks.items():
            assert report.restored[index] == \
                (image.major,) + image.minors

    def test_counter_tamper_detected(self):
        controller = make_controller(TriadNvmScheme())
        controller.write_data(0)
        controller.write_data(0)
        controller.crash()
        stale = controller.nvm.peek_meta(0)
        minors = list(stale.minors)
        minors[0] += 1
        controller.nvm.tamper_meta(
            0, SplitCounterImage(stale.major, tuple(minors))
        )
        report = controller.recover()
        assert not report.verified


class TestSuperMem:
    def _machine(self, window=16):
        from repro.bmt import SuperMemScheme
        return make_controller(SuperMemScheme(wpq_window=window))

    def test_write_through_without_coalescing(self):
        controller = self._machine(window=0)
        for line in range(0, 256, 64):  # four distinct pages
            controller.write_data(line)
        assert controller.stats["bmt.block_persists"] == 4
        assert controller.stats["supermem.coalesced_writes"] == 0

    def test_page_bursts_coalesce(self):
        """Consecutive writes to one page merge their counter-block
        writes in the WPQ — SuperMem's CWC observation."""
        controller = self._machine(window=16)
        for line in range(8):  # one page, eight lines
            controller.write_data(line)
        assert controller.stats["bmt.block_persists"] == 1
        assert controller.stats["supermem.coalesced_writes"] == 7

    def test_coalescing_cuts_traffic_vs_naive_write_through(self):
        naive = self._machine(window=0)
        coalescing = self._machine(window=16)
        for step in range(400):
            line = (step // 8) * 64 + step % 8  # page-local bursts
            naive.write_data(line % LINES)
            coalescing.write_data(line % LINES)
        assert coalescing.nvm.total_writes() < naive.nvm.total_writes()

    def test_crash_recovery_exact_even_with_pending_blocks(self):
        """Blocks still in the (ADR-protected) queue at the crash are
        flushed by battery: recovery finds every counter fresh."""
        controller = self._machine(window=16)
        for line in (0, 1, 2, 64, 65, 0):
            controller.write_data(line)
        controller.crash()
        report = controller.recover()
        assert report.verified
        assert report.stale_lines == 0
        for index, image in controller.pre_crash_blocks.items():
            assert report.restored[index] == \
                (image.major,) + image.minors

    def test_window_validation(self):
        from repro.bmt import SuperMemScheme
        with pytest.raises(ValueError):
            SuperMemScheme(wpq_window=-1)


class TestSitCannotRebuildFromLeaves:
    """The structural argument of Section II-E, made executable: a BMT
    is a pure function of its leaves; an SIT node's MAC additionally
    needs its *parent's* counter, so bottom-up reconstruction is
    ambiguous without extra information (what STAR's LSBs provide)."""

    def test_bmt_rebuilds_from_leaves_alone(self):
        geometry = BMTGeometry(LINES)
        hasher = BMTHasher(KEY)
        blocks = [SplitCounterImage.zero()] * geometry.num_counter_blocks
        _levels, root = rebuild_tree(geometry, hasher, blocks)
        assert root != 0

    def test_sit_macs_are_ambiguous_without_the_parent(self):
        from repro.tree.sit import SITAuthenticator

        auth = SITAuthenticator(KEY)
        counters = tuple(range(8))
        # the same node content yields *different* valid images under
        # different parent counters: leaves alone cannot decide
        image_a = auth.make_node_image((0, 0), counters, 5)
        image_b = auth.make_node_image((0, 0), counters, 6)
        assert image_a.mac != image_b.mac
        assert auth.verify_node_image((0, 0), image_a, 5)
        assert auth.verify_node_image((0, 0), image_b, 6)
        # and neither verifies under the other parent counter
        assert not auth.verify_node_image((0, 0), image_a, 6)
        assert not auth.verify_node_image((0, 0), image_b, 5)
