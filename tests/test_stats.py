"""Unit tests for repro.util.stats."""

from repro.util.stats import Stats


class TestCounters:
    def test_default_zero(self):
        assert Stats().get("anything") == 0

    def test_add_default_one(self):
        stats = Stats()
        stats.add("x")
        assert stats.get("x") == 1

    def test_add_amount(self):
        stats = Stats()
        stats.add("x", 5)
        stats.add("x", 2)
        assert stats["x"] == 7

    def test_snapshot_is_copy(self):
        stats = Stats()
        stats.add("x")
        snap = stats.snapshot()
        stats.add("x")
        assert snap == {"x": 1}
        assert stats["x"] == 2

    def test_iter_sorted(self):
        stats = Stats()
        stats.add("b")
        stats.add("a")
        assert [name for name, _ in stats] == ["a", "b"]

    def test_merge(self):
        left, right = Stats(), Stats()
        left.add("x", 1)
        right.add("x", 2)
        right.add("y", 3)
        left.merge(right)
        assert left["x"] == 3
        assert left["y"] == 3

    def test_ratio(self):
        stats = Stats()
        stats.add("hits", 3)
        stats.add("total", 4)
        assert stats.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0

    def test_reset(self):
        stats = Stats()
        stats.add("x")
        stats.reset()
        assert stats["x"] == 0

    def test_repr_contains_counters(self):
        stats = Stats()
        stats.add("x", 2)
        assert "x=2" in repr(stats)
