"""Unit tests for repro.util.stats."""

from repro.util.stats import Stats


class TestCounters:
    def test_default_zero(self):
        assert Stats().get("anything") == 0

    def test_add_default_one(self):
        stats = Stats()
        stats.add("x")
        assert stats.get("x") == 1

    def test_add_amount(self):
        stats = Stats()
        stats.add("x", 5)
        stats.add("x", 2)
        assert stats["x"] == 7

    def test_snapshot_is_copy(self):
        stats = Stats()
        stats.add("x")
        snap = stats.snapshot()
        stats.add("x")
        assert snap == {"x": 1}
        assert stats["x"] == 2

    def test_iter_sorted(self):
        stats = Stats()
        stats.add("b")
        stats.add("a")
        assert [name for name, _ in stats] == ["a", "b"]

    def test_merge(self):
        left, right = Stats(), Stats()
        left.add("x", 1)
        right.add("x", 2)
        right.add("y", 3)
        left.merge(right)
        assert left["x"] == 3
        assert left["y"] == 3

    def test_ratio(self):
        stats = Stats()
        stats.add("hits", 3)
        stats.add("total", 4)
        assert stats.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert Stats().ratio("a", "b") == 0.0

    def test_reset(self):
        stats = Stats()
        stats.add("x")
        stats.reset()
        assert stats["x"] == 0

    def test_repr_contains_counters(self):
        stats = Stats()
        stats.add("x", 2)
        assert "x=2" in repr(stats)

    def test_len_counts_distinct_counters(self):
        stats = Stats()
        assert len(stats) == 0
        stats.add("a")
        stats.add("a")
        stats.add("b")
        assert len(stats) == 2

    def test_prefixed(self):
        stats = Stats()
        stats.add("nvm.data_writes", 3)
        stats.add("nvm.meta_writes", 1)
        stats.add("ctrl.flushes", 9)
        assert stats.prefixed("nvm.") == {
            "nvm.data_writes": 3,
            "nvm.meta_writes": 1,
        }
        assert stats.prefixed("zz.") == {}

    def test_prefixed_is_copy(self):
        stats = Stats()
        stats.add("nvm.x")
        view = stats.prefixed("nvm.")
        view["nvm.x"] = 99
        assert stats["nvm.x"] == 1

    def test_merge_empty_other(self):
        left = Stats()
        left.add("x", 2)
        left.merge(Stats())
        assert left.snapshot() == {"x": 2}

    def test_merge_into_empty(self):
        left, right = Stats(), Stats()
        right.add("x", 4)
        left.merge(right)
        assert left["x"] == 4
        # merge copies values; the source is unaffected afterwards
        left.add("x")
        assert right["x"] == 4

    def test_merge_self_doubles(self):
        stats = Stats()
        stats.add("x", 3)
        stats.merge(stats)
        assert stats["x"] == 6

    def test_snapshot_empty(self):
        assert Stats().snapshot() == {}

    def test_ratio_missing_numerator(self):
        stats = Stats()
        stats.add("total", 5)
        assert stats.ratio("hits", "total") == 0.0

    def test_negative_amounts_allowed(self):
        stats = Stats()
        stats.add("x", 5)
        stats.add("x", -2)
        assert stats["x"] == 3


class TestTelemetryFacade:
    def test_registry_is_exposed(self):
        stats = Stats()
        stats.add("x")
        assert stats.registry.counter("x").value == 1

    def test_observe_feeds_histogram(self):
        stats = Stats()
        stats.observe("depth", 3)
        assert stats.registry.histogram("depth").count == 1

    def test_gauge_set(self):
        stats = Stats()
        stats.gauge_set("level", 7)
        stats.gauge_set("level", 2)
        gauge = stats.registry.gauge("level")
        assert gauge.value == 2 and gauge.high == 7

    def test_event(self):
        stats = Stats()
        stats.event("force_flush", level=2)
        (event,) = stats.registry.events.events()
        assert event["kind"] == "force_flush" and event["level"] == 2

    def test_span(self):
        stats = Stats()
        with stats.span("phase", n=1):
            pass
        assert stats.registry.tracer.roots[0].name == "phase"

    def test_disabled_counters_still_count(self):
        stats = Stats(enabled=False)
        assert not stats.enabled
        stats.add("x", 2)
        stats.observe("h", 1)
        stats.gauge_set("g", 1)
        stats.event("ev")
        with stats.span("s") as span:
            assert span is None
        assert stats["x"] == 2
        assert len(stats.registry) == 1  # only the counter exists
        assert len(stats.registry.events) == 0
        assert stats.registry.tracer.roots == []

    def test_reset_clears_registry(self):
        stats = Stats()
        stats.add("x")
        stats.observe("h", 1)
        stats.event("ev")
        stats.reset()
        assert len(stats) == 0
        assert len(stats.registry) == 0
        assert len(stats.registry.events) == 0
