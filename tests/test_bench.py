"""Tests for the bench harness (runner, experiments, tables, CLI)."""

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.runner import (
    SCALES,
    config_for_scale,
    geometric_mean,
    run_grid,
    run_one,
)
from repro.bench.tables import ExperimentTable, render_table
from repro.bench import experiments


class TestRunner:
    def test_scales_defined(self):
        assert {"smoke", "default", "large"} <= set(SCALES)

    def test_config_for_scale(self):
        config = config_for_scale("smoke")
        assert config.memory_bytes == SCALES["smoke"].memory_bytes

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            config_for_scale("galactic")

    def test_run_one_produces_result(self):
        config = config_for_scale("smoke")
        result = run_one(config, "star", "array", operations=50)
        assert result.scheme == "star"
        assert result.workload == "array"
        assert result.nvm_writes > 0

    def test_run_one_with_recovery(self):
        config = config_for_scale("smoke")
        result = run_one(config, "star", "array", operations=50,
                         crash_and_recover=True)
        assert result.recovery is not None
        assert result.recovery.verified

    def test_run_grid_covers_all_pairs(self):
        config = config_for_scale("smoke")
        grid = run_grid(config, schemes=["wb", "star"],
                        workloads=["array"], scale="smoke",
                        operations={"array": 40})
        assert set(grid) == {("wb", "array"), ("star", "array")}

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)


class TestTables:
    def test_render_contains_rows_and_notes(self):
        table = ExperimentTable(
            experiment_id="T", title="demo",
            columns=["a", "b"], notes=["hello"],
        )
        table.add_row(a=1, b=0.5)
        text = render_table(table)
        assert "T — demo" in text
        assert "0.500" in text
        assert "note: hello" in text

    def test_column_accessor(self):
        table = ExperimentTable("T", "demo", ["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column("a") == [1, 2]


@pytest.fixture(scope="module")
def smoke_grid():
    return experiments.paper_grid(
        "smoke", workloads=["array", "hash"]
    )


class TestExperiments:
    def test_fig10_structure(self, smoke_grid):
        table = experiments.experiment_fig10("smoke", smoke_grid)
        assert table.experiment_id == "Fig. 10"
        workloads = table.column("workload")
        assert "array" in workloads and "hash" in workloads

    def test_fig11_star_beats_anubis(self, smoke_grid):
        table = experiments.experiment_fig11("smoke", smoke_grid)
        for row in table.rows:
            assert row["star"] < row["anubis"] <= row["strict"]

    def test_fig11_wb_is_unity(self, smoke_grid):
        table = experiments.experiment_fig11("smoke", smoke_grid)
        assert all(row["wb"] == pytest.approx(1.0)
                   for row in table.rows)

    def test_fig12_ordering(self, smoke_grid):
        table = experiments.experiment_fig12("smoke", smoke_grid)
        for row in table.rows:
            assert row["star"] >= row["anubis"] >= row["strict"]

    def test_fig13_star_cheapest_secure_scheme(self, smoke_grid):
        table = experiments.experiment_fig13("smoke", smoke_grid)
        for row in table.rows:
            assert row["star"] < row["anubis"] < row["strict"]

    def test_fig14a_fractions_in_range(self, smoke_grid):
        table = experiments.experiment_fig14a("smoke", smoke_grid)
        for row in table.rows:
            assert 0.0 <= row["dirty_fraction"] <= 1.0

    def test_table2_hit_ratio_monotonic(self):
        table = experiments.experiment_table2(
            "smoke", adr_line_counts=(2, 8, 32), workloads=["hash"],
        )
        ratios = table.column("hit_ratio")
        assert ratios == sorted(ratios)

    def test_fig14b_monotonic_in_cache_size(self):
        table = experiments.experiment_fig14b(
            "smoke", cache_sizes_bytes=(4 * 1024, 8 * 1024),
            workload="hash",
        )
        projected = [row for row in table.rows
                     if row["kind"] == "projected"]
        star_times = [row["star_seconds"] for row in projected]
        assert star_times == sorted(star_times)
        # paper shape: STAR is slower to recover than Anubis (it reads
        # 10 lines per stale node) but stays well under a second
        four_mb = projected[-1]
        assert four_mb["star_seconds"] > four_mb["anubis_seconds"]
        assert four_mb["star_seconds"] < 1.0


class TestCli:
    def test_single_experiment(self, capsys):
        assert cli_main(["--experiment", "fig14a",
                         "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 14(a)" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["--experiment", "fig99"])
