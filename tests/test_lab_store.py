"""Result store integrity: corruption is detected, quarantined and
healed, never crashed on — and exports stay deterministic.

Store tests use synthetic payloads (the store is agnostic to payload
content), so they run in milliseconds.
"""

import gzip

from repro.bench.runner import config_for_scale
from repro.lab.spec import bench_spec
from repro.lab.store import ResultStore
from repro.util.stats import Stats

CONFIG = config_for_scale("smoke")


def make_spec(index=0):
    return bench_spec(CONFIG, "star", "hash", 40 + index, seed=7)


def make_payload(index=0):
    return {"version": 1, "stats": {"nvm.data_writes": 100 + index}}


def fill(store, count=2):
    specs = [make_spec(i) for i in range(count)]
    for i, spec in enumerate(specs):
        store.put(spec, make_payload(i), {"git_rev": "abc"},
                  wall_time_s=float(i))
    return specs


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "lab", stats=stats)
        spec = make_spec()
        assert store.get(spec) is None
        store.put(spec, make_payload())
        record = store.get(spec)
        assert record is not None
        assert record.payload == make_payload()
        assert record.spec == spec.to_dict()
        assert stats.get("lab.store.misses") == 1
        assert stats.get("lab.store.hits") == 1
        assert stats.get("lab.store.puts") == 1

    def test_blob_bytes_are_content_addressed(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        spec = make_spec()
        a.put(spec, make_payload(), {"git_rev": "abc"})
        b.put(spec, make_payload(), {"git_rev": "abc"})
        blob = a.blob_path(spec.spec_hash)
        assert blob.read_bytes() == b.blob_path(
            spec.spec_hash
        ).read_bytes()

    def test_maintenance_reads_do_not_count_as_cache_traffic(
            self, tmp_path):
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "lab", stats=stats)
        fill(store)
        assert len(store.export()) == 2
        assert list(store.records())
        assert stats.get("lab.store.hits") == 0


class TestCorruption:
    def test_corrupt_index_is_quarantined_and_rebuilt_from_blobs(
            self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        specs = fill(store)
        store.close()
        store.index_path.write_bytes(b"this is not a sqlite file")

        stats = Stats(enabled=True)
        reopened = ResultStore(tmp_path / "lab", stats=stats)
        assert reopened.get(specs[0]) is not None
        assert len(reopened) == len(specs)
        assert list(reopened.quarantine_path.iterdir())
        assert stats.get("lab.store.quarantined") == 1

    def test_truncated_index_recovers_too(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        specs = fill(store)
        store.close()
        raw = store.index_path.read_bytes()
        store.index_path.write_bytes(raw[: len(raw) // 3])

        reopened = ResultStore(tmp_path / "lab")
        assert sorted(reopened.hashes()) == sorted(
            spec.spec_hash for spec in specs
        )

    def test_corrupt_blob_is_quarantined_and_reported_as_miss(
            self, tmp_path):
        stats = Stats(enabled=True)
        store = ResultStore(tmp_path / "lab", stats=stats)
        spec = fill(store, count=1)[0]
        store.blob_path(spec.spec_hash).write_bytes(b"\x1f\x8bgarbage")

        assert store.get(spec) is None
        assert spec not in store
        assert list(store.quarantine_path.iterdir())
        # the scheduler recomputes the cell and the store heals
        store.put(spec, make_payload())
        assert store.get(spec).payload == make_payload()

    def test_blob_whose_content_mismatches_its_name_is_rejected(
            self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        spec, other = fill(store)
        blob = store.blob_path(spec.spec_hash)
        blob.write_bytes(
            store.blob_path(other.spec_hash).read_bytes()
        )
        assert store.get(spec) is None

    def test_truncated_blob_gzip_stream(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        spec = fill(store, count=1)[0]
        blob = store.blob_path(spec.spec_hash)
        blob.write_bytes(blob.read_bytes()[:-8])
        assert store.get(spec) is None

    def test_blob_missing_records_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        spec = fill(store, count=1)[0]
        blob = store.blob_path(spec.spec_hash)
        with gzip.open(blob, "wt", encoding="ascii") as handle:
            handle.write('{"type":"spec","spec":%s}\n'
                         % '{"kind":"bench"}')
        assert store.get(spec) is None


class TestExportAndGc:
    def test_export_excludes_provenance_and_timing(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        spec = make_spec()
        a.put(spec, make_payload(), {"git_rev": "one"},
              wall_time_s=1.0)
        b.put(spec, make_payload(), {"git_rev": "two"},
              wall_time_s=9.0)
        assert a.export() == b.export()

    def test_export_sorted_and_filterable(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        specs = fill(store, count=3)
        entries = store.export()
        hashes = [entry["spec_hash"] for entry in entries]
        assert hashes == sorted(hashes)
        wanted = specs[0].spec_hash
        only = store.export(spec_hashes=[wanted])
        assert [entry["spec_hash"] for entry in only] == [wanted]
        assert store.export(prefix=wanted[:12]) == only

    def test_gc_drops_unreferenced_records_and_orphans(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        keep, drop = fill(store)
        orphan = store.blob_path("ff" * 32)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"orphan")
        stray = store.blob_path(drop.spec_hash).with_suffix(".tmp")
        stray.write_bytes(b"tmp")

        removed = store.gc(keep_hashes=[keep.spec_hash])
        assert removed["records"] == 1
        assert removed["orphan_blobs"] == 2
        assert store.get(keep) is not None
        assert drop not in store
        assert not orphan.exists() and not stray.exists()

    def test_gc_purges_quarantine_only_on_request(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        spec = fill(store, count=1)[0]
        store.blob_path(spec.spec_hash).write_bytes(b"bad")
        assert store.get(spec) is None  # quarantines the blob
        store.gc()
        assert list(store.quarantine_path.iterdir())
        removed = store.gc(purge_quarantine=True)
        assert removed["quarantined"] == 1
        assert not list(store.quarantine_path.iterdir())

    def test_rebuild_index_recounts_blobs(self, tmp_path):
        store = ResultStore(tmp_path / "lab")
        fill(store, count=3)
        assert store.rebuild_index() == 3
