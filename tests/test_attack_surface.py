"""Property test over STAR's whole recovery attack surface.

Section III-F claims: "no matter attacks occur in the recovery-related
or recovery-unrelated metadata during recovery, the system has the
ability to detect the attacks" — recovery-related ones during recovery
(cache-tree root mismatch), recovery-unrelated ones later, on use.

This test fuzzes the recovery-related surface: for arbitrary write
histories and an arbitrary choice of corruption target — stale-node
MSBs (shifted beyond the reconstruction window), child LSB fields, or
bitmap lines hiding a stale location — verification must fail.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.config import small_config
from repro.core.synergy import LSB_MASK, LSB_SPAN
from repro.sim.machine import Machine


def crashed_machine(writes):
    machine = Machine(small_config(), scheme="star")
    for line in writes:
        machine.controller.write_data(line)
    machine.crash()
    return machine


@given(
    writes=st.lists(st.integers(min_value=0, max_value=511),
                    min_size=3, max_size=60),
    attack=st.sampled_from(["msb", "child_lsbs", "bitmap_hide"]),
    pick=st.integers(min_value=0, max_value=10 ** 6),
    slot=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_every_recovery_input_corruption_is_detected(
    writes, attack, pick, slot
):
    machine = crashed_machine(writes)
    stale = sorted(machine.pre_crash_dirty)
    assume(stale)
    nvm = machine.nvm
    geometry = machine.controller.geometry

    if attack == "msb":
        # shift a stale node's persisted MSBs beyond the LSB window:
        # the reconstruction lands on the wrong counter with certainty
        candidates = [line for line in stale
                      if nvm.meta_is_touched(line)]
        assume(candidates)
        line = candidates[pick % len(candidates)]
        image = nvm.peek_meta(line)
        counters = list(image.counters)
        counters[slot] += LSB_SPAN
        from dataclasses import replace
        nvm.tamper_meta(line, replace(image, counters=tuple(counters)))

    elif attack == "child_lsbs":
        # corrupt the synergized LSBs of a written child of a stale
        # counter block: its parent reconstructs to a wrong counter
        targets = []
        for line in stale:
            node = geometry.node_at(line)
            if node[0] != 0:
                continue
            for child in geometry.children_of(node):
                if nvm.peek_data(child) is not None:
                    targets.append(child)
        assume(targets)
        child = targets[pick % len(targets)]
        image = nvm.peek_data(child)
        flip = 1 + (pick % LSB_MASK)
        from dataclasses import replace
        nvm.tamper_data(child, replace(image, lsbs=image.lsbs ^ flip))

    else:  # bitmap_hide
        index = machine.scheme.bitmap.index
        assume(not index.is_on_chip(1))
        line = stale[pick % len(stale)]
        l1_line, bit = index.l1_position(line)
        value = nvm.peek_ra((1, l1_line))
        nvm.tamper_ra((1, l1_line), value ^ (1 << bit))

    report = machine.recover()
    assert not report.verified, (
        "attack %r on a stale input went undetected" % attack
    )


@given(
    writes=st.lists(st.integers(min_value=0, max_value=511),
                    min_size=1, max_size=60),
)
@settings(max_examples=30, deadline=None)
def test_no_false_positives_without_tampering(writes):
    """The dual: honest recoveries never trip the verifier."""
    machine = crashed_machine(writes)
    report = machine.recover(raise_on_failure=True)
    assert report.verified
    assert machine.oracle_check(report)
