"""End-to-end integration tests: workload -> crash -> recover -> verify,
across schemes, plus cross-scheme metric relations on identical traces."""

import pytest

from repro.config import small_config
from repro.sim.crash import Attacker
from repro.sim.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS, make_workload


def run_machine(scheme: str, workload: str, operations: int = 120,
                seed: int = 9) -> Machine:
    machine = Machine(small_config(), scheme=scheme)
    bench = make_workload(
        workload, machine.config.num_data_lines,
        operations=operations, seed=seed,
    )
    machine.run(bench.ops())
    return machine


RECOVERABLE = ["strict", "anubis", "star"]


class TestCrashRecoveryAcrossSchemes:
    @pytest.mark.parametrize("scheme", RECOVERABLE)
    @pytest.mark.parametrize("workload", ["hash", "btree", "tpcc"])
    def test_recovers_dirty_population(self, scheme, workload):
        operations = 40 if workload == "tpcc" else 120
        machine = run_machine(scheme, workload, operations)
        machine.crash()
        report = machine.recover()
        assert machine.oracle_check(report), (
            "%s failed to restore the dirty metadata for %s"
            % (scheme, workload)
        )

    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_star_data_survives_crash(self, workload):
        """After recovery, every previously written data line decrypts
        and verifies under a rebooted machine."""
        operations = 40 if workload == "tpcc" else 100
        machine = run_machine("star", workload, operations)
        written = sorted({
            line for line in range(machine.config.num_data_lines)
            if machine.nvm.peek_data(line) is not None
        })[:50]
        machine.crash()
        machine.recover(raise_on_failure=True)
        rebooted = Machine(
            machine.config, scheme="star",
            registers=machine.registers, nvm=machine.nvm,
        )
        for line in written:
            rebooted.controller.read_data(line)  # must not raise


class TestCrossSchemeRelations:
    """The Fig. 11/12 orderings on identical traces."""

    @pytest.mark.parametrize("workload", ["hash", "array", "ycsb"])
    def test_write_traffic_ordering(self, workload):
        results = {
            scheme: run_machine(scheme, workload).nvm.total_writes()
            for scheme in ("wb", "strict", "anubis", "star")
        }
        assert results["wb"] <= results["star"]
        assert results["star"] < results["anubis"]
        assert results["anubis"] < results["strict"]

    @pytest.mark.parametrize("workload", ["hash", "array"])
    def test_ipc_ordering(self, workload):
        results = {
            scheme: run_machine(scheme, workload).timing.ipc
            for scheme in ("wb", "strict", "anubis", "star")
        }
        assert results["star"] <= results["wb"]
        assert results["strict"] <= results["anubis"]

    def test_identical_trace_identical_data_writes(self):
        """Schemes must not change what the workload writes."""
        counts = {
            scheme: run_machine(scheme, "hash").stats["ctrl.data_writes"]
            for scheme in ("wb", "strict", "anubis", "star")
        }
        assert len(set(counts.values())) == 1


class TestEndToEndAttack:
    def test_star_detects_post_crash_tampering_end_to_end(self):
        machine = run_machine("star", "btree", operations=150)
        machine.crash()
        attacker = Attacker(machine.nvm)
        tampered = False
        for line in machine.pre_crash_dirty:
            if machine.nvm.meta_is_touched(line):
                # corrupt the stale MSBs recovery will combine with LSBs
                tampered = attacker.corrupt_meta_counter(
                    line, 0, delta=2048
                )
                break
        if not tampered:
            # no stale node has an NVM image yet; attack a written data
            # child of a stale counter block instead
            geometry = machine.controller.geometry
            for line in machine.pre_crash_dirty:
                node = geometry.node_at(line)
                if node[0] != 0:
                    continue
                for child in geometry.children_of(node):
                    if machine.nvm.peek_data(child) is not None:
                        tampered = attacker.corrupt_data_lsbs(child)
                        break
                if tampered:
                    break
        assert tampered, "no tamperable recovery input found"
        report = machine.recover()
        assert not report.verified

    def test_star_recovery_is_silent_about_untouched_regions(self):
        """Tampering recovery-unrelated metadata is not detected during
        recovery (Section III-F) — it is caught later, on use."""
        machine = run_machine("star", "array", operations=80)
        # find a touched, clean (non-stale) metadata line
        stale = set()
        machine.crash()
        stale = set(machine.pre_crash_dirty)
        candidate = None
        for line in range(machine.controller.geometry.total_nodes):
            if line not in stale and machine.nvm.meta_is_touched(line):
                candidate = line
                break
        if candidate is None:
            pytest.skip("trace left no clean touched metadata")
        Attacker(machine.nvm).corrupt_meta_counter(candidate, 0)
        report = machine.recover()
        assert report.verified  # recovery passes...
        rebooted = Machine(
            machine.config, scheme="star",
            registers=machine.registers, nvm=machine.nvm,
        )
        # ...but using the tampered region trips the SIT MAC check
        from repro.errors import IntegrityError
        node = rebooted.controller.geometry.node_at(candidate)
        data_child = None
        if node[0] == 0:
            children = rebooted.controller.geometry.children_of(node)
            written = [
                child for child in children
                if rebooted.nvm.peek_data(child) is not None
            ]
            data_child = written[0] if written else None
        if data_child is None:
            pytest.skip("tampered node has no written data child")
        with pytest.raises(IntegrityError):
            rebooted.controller.read_data(data_child)
