"""Fig. 12 — IPC normalized to the write-back baseline.

Paper result: STAR achieves ~98% of WB's IPC (worst case hash, 8%
overhead); Anubis ~90%. Reproduced shape: STAR ~= WB > Anubis > strict
on every workload.
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_fig12


def test_fig12_ipc(benchmark, smoke_grid):
    table = benchmark(experiment_fig12, SCALE, smoke_grid)
    attach_rows(benchmark, table)
    for row in table.rows:
        if row["workload"] == "gmean":
            continue
        assert row["star"] > 0.85, "STAR IPC stays close to WB"
        assert row["star"] >= row["anubis"] - 0.02, \
            "STAR must not lose to Anubis"
        assert row["strict"] <= row["anubis"], \
            "strict persistence pays the largest IPC penalty"
    gmean = table.rows[-1]
    assert gmean["star"] > 0.93
    assert gmean["anubis"] < 0.99
