"""Fig. 11 — NVM write traffic normalized to the write-back baseline.

Paper result: STAR ~1.08x WB (array 1.21x, hash 1.34x), Anubis 2x WB,
strict persistence up to ~tree-height x. Reproduced shape: for every
workload  STAR < Anubis ~= 2.0 < strict, with STAR within a few percent
of WB.
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_fig11


def test_fig11_write_traffic(benchmark, smoke_grid):
    table = benchmark(experiment_fig11, SCALE, smoke_grid)
    attach_rows(benchmark, table)
    for row in table.rows:
        if row["workload"] == "gmean":
            continue
        assert row["wb"] == 1.0
        assert row["star"] < 1.6, "STAR must stay near the WB baseline"
        assert 1.9 <= row["anubis"] <= 2.05, \
            "Anubis doubles the write traffic"
        assert row["strict"] > row["anubis"], \
            "strict persistence is the most write-hungry"
    gmean = table.rows[-1]
    assert gmean["star"] < 1.3
    assert gmean["anubis"] > 1.9


def test_fig11_star_reduces_extra_traffic_vs_anubis(benchmark,
                                                    smoke_grid):
    """The headline claim: ~92% of Anubis' extra writes eliminated."""
    def measure():
        reductions = []
        for (scheme, workload), result in smoke_grid.items():
            if scheme != "star":
                continue
            wb = smoke_grid[("wb", workload)]
            anubis = smoke_grid[("anubis", workload)]
            extra_star = result.nvm_writes - wb.nvm_writes
            extra_anubis = anubis.nvm_writes - wb.nvm_writes
            assert extra_anubis > 0
            reductions.append(1.0 - extra_star / extra_anubis)
        return sum(reductions) / len(reductions)

    average = benchmark(measure)
    benchmark.extra_info["extra_write_reduction"] = round(average, 4)
    assert average > 0.70, (
        "STAR should eliminate most of Anubis' extra write traffic "
        "(paper: 92%%), got %.0f%%" % (average * 100)
    )
