"""Fig. 13 — NVM energy normalized to the write-back baseline.

Paper result: STAR adds ~4% energy over WB; Anubis ~46%. Reproduced
shape: STAR within a few percent of WB, Anubis tens of percent above,
strict persistence far above both.
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_fig13


def test_fig13_energy(benchmark, smoke_grid):
    table = benchmark(experiment_fig13, SCALE, smoke_grid)
    attach_rows(benchmark, table)
    for row in table.rows:
        if row["workload"] == "gmean":
            continue
        assert row["star"] < 1.30, "STAR energy stays near WB"
        assert row["anubis"] > 1.15, \
            "Anubis pays a significant energy premium"
        assert row["star"] < row["anubis"] < row["strict"]
    gmean = table.rows[-1]
    assert gmean["star"] < 1.15
    assert 1.2 < gmean["anubis"] < 1.8
