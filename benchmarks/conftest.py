"""Shared helpers for the benchmark suite.

Each ``bench_*`` file regenerates one table/figure of the paper's
evaluation (see DESIGN.md's experiment index). The pytest-benchmark
fixture times the regeneration; the assertions check the *shape* of the
result against the paper (who wins, by roughly what factor), and the
measured series is attached to ``benchmark.extra_info`` so the JSON
output carries the reproduced numbers.
"""

from __future__ import annotations

import pytest

SCALE = "smoke"
"""Benchmarks run at smoke scale to keep the suite quick; run
``star-bench --scale default`` (or ``large``) for the fidelity runs
recorded in EXPERIMENTS.md."""


@pytest.fixture(scope="session")
def smoke_grid():
    """One scheme x workload grid shared by the traffic/IPC/energy
    benches (regenerating it per bench would only re-time the same
    simulation)."""
    from repro.bench.experiments import paper_grid

    return paper_grid(SCALE)


def attach_rows(benchmark, table) -> None:
    """Record a reproduced table in the benchmark's extra info."""
    benchmark.extra_info["experiment"] = table.experiment_id
    benchmark.extra_info["rows"] = [
        {key: (round(value, 4) if isinstance(value, float) else value)
         for key, value in row.items()}
        for row in table.rows
    ]
