"""Fig. 14(a) — dirty share of the metadata cache at crash time.

Paper result: ~78% of the cached metadata are dirty on average, which
is why STAR (restoring only those) reads less state than Anubis
(restoring 100% of the cache). Reproduced shape: a substantial but
sub-100% dirty fraction for every workload.
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_fig14a


def test_fig14a_dirty_fraction(benchmark, smoke_grid):
    table = benchmark(experiment_fig14a, SCALE, smoke_grid)
    attach_rows(benchmark, table)
    rows = [row for row in table.rows if row["workload"] != "average"]
    assert len(rows) == 7
    for row in rows:
        assert 0.2 <= row["dirty_fraction"] <= 1.0
    average = table.rows[-1]["dirty_fraction"]
    assert 0.5 <= average <= 0.95, (
        "average dirty fraction should sit near the paper's 78%%, "
        "got %.0f%%" % (average * 100)
    )
