"""Endurance ablation (extension beyond the paper's figures).

The paper motivates low write traffic with PCM's limited cell endurance
(Section I). This bench turns that motivation into a measurement: the
per-line wear each scheme inflicts on identical traces. Expected shape:

* Anubis' hottest line (a shadow-table slot mirroring a hot cache way)
  wears far faster than any line under STAR,
* strict persistence concentrates wear on the tree's upper levels,
* STAR's wear profile is essentially the baseline's.
"""

from conftest import SCALE

from repro.bench.runner import config_for_scale
from repro.sim.endurance import wear_report
from repro.sim.machine import Machine
from repro.workloads.registry import make_workload


def _wear_for(scheme: str, workload: str = "queue",
              operations: int = 400):
    config = config_for_scale(SCALE)
    machine = Machine(config, scheme=scheme)
    bench = make_workload(workload, config.num_data_lines,
                          operations=operations, seed=42)
    machine.run(bench.ops())
    return wear_report(machine.nvm)


def test_endurance_scheme_contrast(benchmark):
    def measure():
        return {
            scheme: _wear_for(scheme)
            for scheme in ("wb", "strict", "anubis", "star")
        }

    reports = benchmark(measure)
    benchmark.extra_info["max_wear"] = {
        scheme: report.max_wear for scheme, report in reports.items()
    }
    # STAR's hottest line is no hotter than a small factor over WB
    assert reports["star"].max_wear <= 2 * reports["wb"].max_wear
    # Anubis concentrates wear on its shadow-table slots
    assert reports["anubis"].max_wear > reports["star"].max_wear
    # strict persistence hammers the metadata region hardest of all
    assert reports["strict"].max_wear >= reports["anubis"].max_wear
    assert reports["strict"].hottest_line[0] == "meta"


def test_endurance_lifetime_ordering(benchmark):
    """Lifetime consumed per unit of work orders the schemes exactly
    as Fig. 11 orders their write traffic."""
    def measure():
        return {
            scheme: _wear_for(scheme, workload="array")
            for scheme in ("wb", "anubis", "star")
        }

    reports = benchmark(measure)
    wb = reports["wb"].lifetime_fraction_consumed()
    star = reports["star"].lifetime_fraction_consumed()
    anubis = reports["anubis"].lifetime_fraction_consumed()
    assert wb <= star < anubis
