#!/usr/bin/env python
"""Hot-path benchmark runner and perf-regression gate.

Not a pytest-benchmark module on purpose: CI invokes it directly
(``python benchmarks/bench_hotpath.py --check``) and fails the build
when any scenario's calibration-normalized score regresses more than
the threshold against the committed baseline in ``BENCH_hotpath.json``.

Usage:
    python benchmarks/bench_hotpath.py                 # measure + print
    python benchmarks/bench_hotpath.py --check         # gate against baseline
    python benchmarks/bench_hotpath.py --update-baseline
    python benchmarks/bench_hotpath.py --json out.json

Scenario definitions and the score normalization live in
:mod:`repro.bench.hotpath`; ``star-bench --perf`` reuses them to append
trajectory entries to the same file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.bench.hotpath import (  # noqa: E402
    DEFAULT_REPEATS,
    DEFAULT_THRESHOLD,
    check_regression,
    load_bench_file,
    run_hotpath,
    update_baseline,
)

DEFAULT_BASELINE = os.path.join(_REPO_ROOT, "BENCH_hotpath.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help="baseline file (default: BENCH_hotpath.json at repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when a scenario regresses past the threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        metavar="FRAC",
        help="tolerated relative slowdown for --check (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's scores as the new committed baseline",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, metavar="N",
        help="best-of-N per scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--json", metavar="PATH", dest="json_path",
        help="also dump this run's result to PATH",
    )
    args = parser.parse_args(argv)

    result = run_hotpath(repeats=args.repeats)

    print("calibration: %.4f s" % result["calibration_s"])
    print("%-16s %10s %10s" % ("scenario", "seconds", "score"))
    for name in result["seconds"]:
        print("%-16s %10.4f %10.2f"
              % (name, result["seconds"][name], result["scores"][name]))

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json_path)

    if args.update_baseline:
        update_baseline(args.baseline, result)
        print("baseline updated: %s" % args.baseline)
        return 0

    if args.check:
        payload = load_bench_file(args.baseline)
        if not payload or not payload.get("baseline"):
            print("no baseline in %s — run with --update-baseline first"
                  % args.baseline, file=sys.stderr)
            return 2
        failures = check_regression(
            result, payload["baseline"], args.threshold
        )
        if failures:
            print("\nPERF REGRESSION (vs %s):" % args.baseline,
                  file=sys.stderr)
            for line in failures:
                print("  " + line, file=sys.stderr)
            print(
                "\nIf the slowdown is intended, refresh the baseline:\n"
                "  python benchmarks/bench_hotpath.py --update-baseline\n"
                "and commit BENCH_hotpath.json with a note explaining why.",
                file=sys.stderr,
            )
            return 1
        print("perf gate passed (threshold %.0f%%)"
              % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
