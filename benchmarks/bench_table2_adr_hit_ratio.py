"""Table II — bitmap-line hit ratio vs the number of lines in ADR.

Paper result: 2 lines -> 32.85%, 4 -> 47.44%, 8 -> 64.37%,
16 -> 74.75%, 32 -> 82.19%. Reproduced shape: strictly increasing hit
ratio with diminishing returns; 16 lines already lands in the 60-95%
band, justifying the paper's choice of 16.
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_table2

ADR_LINE_COUNTS = (2, 4, 8, 16, 32)


def test_table2_adr_hit_ratio(benchmark):
    table = benchmark(
        experiment_table2, SCALE, ADR_LINE_COUNTS, ["array", "hash",
                                                    "tpcc"],
    )
    attach_rows(benchmark, table)
    ratios = table.column("hit_ratio")
    assert ratios == sorted(ratios), "more ADR lines -> higher hit ratio"
    assert ratios[0] < ratios[-1]
    by_lines = dict(zip(table.column("adr_lines"), ratios))
    assert 0.40 <= by_lines[16] <= 0.98
    # diminishing returns: the 16 -> 32 step gains less than 2 -> 4
    assert (by_lines[32] - by_lines[16]) <= (by_lines[4] - by_lines[2]) \
        + 0.05
