"""Sensitivity sweeps (extensions of the paper's Table II / Fig. 14b
methodology to the remaining design parameters)."""

from conftest import SCALE, attach_rows

from repro.bench.sweeps import (
    sweep_bitmap_fanout,
    sweep_metadata_cache,
    sweep_phoenix_stride,
)


def test_metadata_cache_sweep(benchmark):
    table = benchmark(
        sweep_metadata_cache, SCALE,
        (4 * 1024, 8 * 1024, 16 * 1024), "hash",
    )
    attach_rows(benchmark, table)
    wb_writes = table.column("wb_writes")
    assert wb_writes == sorted(wb_writes, reverse=True), \
        "a larger cache absorbs evictions"
    for row in table.rows:
        assert row["star_norm_writes"] < 2.0
        assert 0.0 <= row["dirty_fraction"] <= 1.0


def test_phoenix_stride_sweep(benchmark):
    table = benchmark(sweep_phoenix_stride, (1, 4, 16), "hash", 250)
    attach_rows(benchmark, table)
    persists = table.column("periodic_persists")
    assert persists == sorted(persists, reverse=True), \
        "longer strides persist less often"
    assert all(table.column("recovery_exact")), \
        "every stride must still recover exactly"


def test_bitmap_fanout_sweep(benchmark):
    table = benchmark(
        sweep_bitmap_fanout, SCALE, (32, 128, 512), "hash",
    )
    attach_rows(benchmark, table)
    spills = table.column("bitmap_writes")
    assert spills == sorted(spills, reverse=True), \
        "wider coverage -> fewer bitmap spills"
    hit_ratios = [ratio for ratio in table.column("adr_hit_ratio")
                  if ratio > 0]
    assert hit_ratios == sorted(hit_ratios), \
        "wider coverage -> higher ADR hit ratio"
