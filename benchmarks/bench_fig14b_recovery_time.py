"""Fig. 14(b) — recovery time after a crash vs metadata cache size.

Paper result: for a 4 MB metadata cache STAR needs ~0.05 s and Anubis
~0.02 s (Anubis reads its whole shadow table; STAR reads ~10 lines per
stale node but only for the ~78% dirty share). Both are negligible next
to the 10-100 s platform self-test. Reproduced shape: recovery time
grows linearly with cache size, STAR is a small constant factor slower
than Anubis, and the projected 4 MB times land well under a second.
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_fig14b

CACHE_SIZES = (4 * 1024, 8 * 1024, 16 * 1024)


def test_fig14b_recovery_time(benchmark):
    table = benchmark(
        experiment_fig14b, SCALE, CACHE_SIZES, "hash",
    )
    attach_rows(benchmark, table)
    projected = [row for row in table.rows if row["kind"] == "projected"]
    star = [row["star_seconds"] for row in projected]
    anubis = [row["anubis_seconds"] for row in projected]
    assert star == sorted(star), "recovery time grows with cache size"
    assert anubis == sorted(anubis)
    four_mb = projected[-1]
    assert four_mb["cache"] == "4.0MB"
    # the paper's contrast: STAR pays ~2-3x Anubis' recovery time...
    assert four_mb["star_seconds"] > four_mb["anubis_seconds"]
    assert four_mb["star_seconds"] < 6 * four_mb["anubis_seconds"]
    # ...but both remain negligible against the 10-100s self-test
    assert four_mb["star_seconds"] < 0.5


def test_fig14b_star_reads_scale_with_dirty_lines_not_cache(benchmark):
    """STAR's defining property: recovery cost tracks the number of
    dirty lines, not the cache or memory size."""
    from repro.bench.runner import config_for_scale, run_one

    def measure():
        costs = {}
        for size in (4 * 1024, 16 * 1024):
            config = config_for_scale(SCALE)
            config = config.with_metadata_cache_bytes(size)
            result = run_one(config, "star", "hash", operations=300,
                             crash_and_recover=True)
            assert result.recovery is not None
            costs[size] = result.recovery
        return costs

    costs = benchmark(measure)
    for recovery in costs.values():
        if recovery.stale_lines:
            per_node = recovery.line_accesses / recovery.stale_lines
            assert per_node < 13
