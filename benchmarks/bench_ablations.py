"""Ablations of STAR's design choices (Section IV-G).

The paper attributes its gains to three mechanisms; these benches
isolate each one:

* **counter-MAC synergization** removes the extra per-write persistence
  write that Anubis pays — ablated by comparing STAR's and Anubis'
  *extra* traffic over WB on identical traces;
* **bitmap lines / multi-layer index** bound recovery to the stale
  lines — ablated by comparing the index-guided walk against a full
  metadata-space scan;
* **ADR capacity** trades on-chip space for spill traffic — ablated by
  sweeping the ADR line budget and measuring the spill writes.
"""

from conftest import SCALE

from repro.bench.runner import config_for_scale, run_one
from repro.core.index import MultiLayerIndex
from repro.sim.machine import Machine
from repro.workloads.registry import make_workload


def _run(scheme, config, workload="hash", operations=300, crash=False):
    return run_one(config, scheme, workload, operations,
                   crash_and_recover=crash)


def test_ablation_synergization_removes_persistence_writes(benchmark):
    """Without synergization every modification needs its own write
    (Anubis); with it, the modification rides the payload write."""
    def measure():
        config = config_for_scale(SCALE)
        star = _run("star", config)
        anubis = _run("anubis", config)
        wb = _run("wb", config)
        return star, anubis, wb

    star, anubis, wb = benchmark(measure)
    star_extra = star.nvm_writes - wb.nvm_writes
    anubis_extra = anubis.nvm_writes - wb.nvm_writes
    assert star_extra < 0.3 * anubis_extra


def test_ablation_index_guided_walk_vs_full_scan(benchmark):
    """Recovery without the multi-layer index would read the entire
    recovery area; with it, only non-zero lines are read."""
    def measure():
        config = config_for_scale(SCALE)
        machine = Machine(config, scheme="star")
        bench = make_workload("hash", config.num_data_lines,
                              operations=300, seed=42)
        machine.run(bench.ops())
        machine.crash()
        report = machine.recover(raise_on_failure=True)
        index = MultiLayerIndex(
            machine.controller.geometry.total_nodes,
            config.star.bitmap_fanout,
        )
        full_scan_reads = sum(index.layer_counts)
        walk_reads = machine.recovery_stats["nvm.ra_reads"]
        return walk_reads, full_scan_reads, report

    walk_reads, full_scan_reads, report = benchmark(measure)
    assert report.verified
    assert walk_reads <= full_scan_reads
    # at paper scale (2 GB metadata, 3 layers) the gap is ~1000x; at
    # smoke scale the index still never loses to the scan
    if report.stale_lines == 0:
        assert walk_reads == 0


def test_ablation_adr_budget_vs_spill_traffic(benchmark):
    """More ADR lines -> fewer recovery-area spills (Table II's dual)."""
    def measure():
        spills = {}
        for lines in (2, 8, 32):
            config = config_for_scale(SCALE, adr_bitmap_lines=lines)
            result = _run("star", config)
            spills[lines] = result.bitmap_writes
        return spills

    spills = benchmark(measure)
    assert spills[2] >= spills[8] >= spills[32]


def test_ablation_recovery_cost_tracks_dirty_count(benchmark):
    """Crashing earlier (fewer dirty lines) must shorten recovery —
    the property Anubis lacks (its cost is fixed by the cache size)."""
    def measure():
        config = config_for_scale(SCALE)
        costs = []
        for operations in (50, 400):
            machine = Machine(config, scheme="star")
            bench = make_workload("hash", config.num_data_lines,
                                  operations=operations, seed=42)
            machine.run(bench.ops())
            machine.crash()
            report = machine.recover(raise_on_failure=True)
            costs.append(report)
        return costs

    early, late = benchmark(measure)
    assert early.stale_lines <= late.stale_lines
    assert early.line_accesses <= late.line_accesses
