"""Device-timing ablation: flat latency + WPQ vs the bank-level model.

The default experiments use the flat timing model (DESIGN.md §6); this
bench checks that upgrading to the NVMain-lite bank/row/tFAW device
does not change any *relative* conclusion — the substitution argument
made executable.
"""

from dataclasses import replace

from conftest import SCALE

from repro.bench.runner import config_for_scale
from repro.sim.machine import Machine
from repro.workloads.registry import make_workload


def _ipcs(device_timing: bool, workload: str = "hash",
          operations: int = 400):
    config = config_for_scale(SCALE)
    if device_timing:
        config = replace(config, device_timing=True)
    ipcs = {}
    for scheme in ("wb", "anubis", "star", "strict"):
        machine = Machine(config, scheme=scheme)
        bench = make_workload(workload, config.num_data_lines,
                              operations=operations, seed=42)
        machine.run(bench.ops())
        ipcs[scheme] = machine.timing.ipc
    return ipcs


def test_device_timing_preserves_scheme_ordering(benchmark):
    def measure():
        return _ipcs(device_timing=False), _ipcs(device_timing=True)

    flat, banked = benchmark(measure)
    for ipcs in (flat, banked):
        normalized = {
            scheme: value / ipcs["wb"] for scheme, value in ipcs.items()
        }
        assert normalized["star"] >= normalized["anubis"] - 0.02
        assert normalized["anubis"] >= normalized["strict"]
    benchmark.extra_info["flat"] = {k: round(v, 3)
                                    for k, v in flat.items()}
    benchmark.extra_info["banked"] = {k: round(v, 3)
                                      for k, v in banked.items()}


def test_device_row_locality_visible(benchmark):
    """Sequential workloads enjoy higher row-hit ratios than random
    ones — the banked model actually models something."""
    def measure():
        ratios = {}
        for workload in ("array", "hash"):
            config = replace(config_for_scale(SCALE),
                             device_timing=True)
            machine = Machine(config, scheme="wb")
            bench = make_workload(workload, config.num_data_lines,
                                  operations=400, seed=42)
            machine.run(bench.ops())
            ratios[workload] = machine.timing.device.row_hit_ratio()
        return ratios

    ratios = benchmark(measure)
    assert ratios["array"] > ratios["hash"]
