"""Fig. 10 — bitmap-line write traffic vs WB write traffic.

Paper result: WB issues on average ~461x more NVM writes than STAR
issues bitmap-line writes; the ratio varies with workload locality.
Reproduced shape: for every workload the bitmap-line traffic is a small
fraction of the baseline write traffic (ratios of tens to thousands at
the scaled machine, infinity when the working set never spills ADR).
"""

from conftest import SCALE, attach_rows

from repro.bench.experiments import experiment_fig10


def test_fig10_bitmap_write_traffic(benchmark, smoke_grid):
    table = benchmark(experiment_fig10, SCALE, smoke_grid)
    attach_rows(benchmark, table)
    data_rows = [row for row in table.rows
                 if row["workload"] != "average"]
    assert len(data_rows) == 7
    for row in data_rows:
        ratio = row["wb_to_bitmap_ratio"]
        # bitmap-line writes are always a small fraction of WB traffic
        assert ratio > 5.0, (
            "bitmap traffic should be negligible, got 1/%s of WB for %s"
            % (ratio, row["workload"])
        )
