#!/usr/bin/env python3
"""Attack detection during recovery (Sections III-E / III-F).

The subtle attack the cache-tree exists for: after a crash, an attacker
with physical access replays an *old but internally consistent*
(data, MAC, LSB) tuple. Plain MAC checking cannot catch it — the old
MAC matches the old data and the old LSBs — but the reconstructed
parent counter is then stale, and the rebuilt cache-tree root no longer
matches the on-chip register.

Run with::

    python examples/attack_detection.py
"""

from repro import Attacker, Machine, VerificationError, sim_config


def build_victim():
    config = sim_config()
    machine = Machine(config, scheme="star")
    attacker = Attacker(machine.nvm)
    # version 1 of the data goes to NVM; the attacker records the tuple
    machine.controller.write_data(0, b"balance: $100".ljust(64, b"\0"))
    attacker.snapshot_data_line(0)
    # version 2 supersedes it (counter bumped, new LSBs, new MAC)
    machine.controller.write_data(0, b"balance: $0".ljust(64, b"\0"))
    return machine, attacker


print("scenario 1: crash + honest recovery")
machine, _attacker = build_victim()
machine.crash()
report = machine.recover(raise_on_failure=True)
print("  recovery verified:", report.verified,
      "| stale lines restored:", report.stale_lines)

print("\nscenario 2: crash + replay of the old (data, MAC, LSB) tuple")
machine, attacker = build_victim()
machine.crash()
replayed = attacker.replay_data_line(0)
print("  attacker replayed line 0:", replayed)
try:
    machine.recover(raise_on_failure=True)
except VerificationError as error:
    print("  VerificationError:", error)
else:
    raise SystemExit("the replay attack went undetected!")

print("\nscenario 3: crash + tampered bitmap line (hiding a stale node)")
machine, attacker = build_victim()
scheme = machine.scheme
machine.crash()
line = next(iter(machine.pre_crash_dirty))
l1_line, bit = scheme.bitmap.index.l1_position(line)
if scheme.bitmap.index.is_on_chip(1):
    print("  (single-layer index lives on chip; bitmap is unreachable)")
else:
    attacker.corrupt_bitmap_line((1, l1_line), flip_bit=bit)
    report = machine.recover()
    print("  recovery verified:", report.verified,
          "(False = the hidden stale line was detected)")

print("\nevery recovery-related tamper path flips the cache-tree root.")
