#!/usr/bin/env python3
"""Crash-recovery deep dive: STAR vs Anubis on a persistent B-tree.

Runs the same B-tree workload under both recoverable schemes, crashes
each machine mid-flight and compares what recovery has to do:

* STAR walks the multi-layer bitmap index and restores only the *stale*
  lines (~10 NVM reads per line);
* Anubis scans its whole shadow-table region (sized like the cache).

Run with::

    python examples/crash_recovery_demo.py
"""

from repro import Machine, make_workload, sim_config


def crash_and_recover(scheme: str):
    config = sim_config()
    machine = Machine(config, scheme=scheme)
    workload = make_workload("btree", config.num_data_lines,
                             operations=1200, seed=1)
    machine.run(workload.ops())
    dirty = machine.controller.meta_cache.dirty_count()
    resident = len(machine.controller.meta_cache)
    machine.crash()
    report = machine.recover()
    assert machine.oracle_check(report), "recovery must be exact"
    return machine, report, dirty, resident


print("running 1200 B-tree inserts under each scheme...\n")
for scheme in ("star", "anubis"):
    machine, report, dirty, resident = crash_and_recover(scheme)
    print("%s:" % scheme.upper())
    print("  metadata cache at crash: %d resident, %d dirty (%.0f%%)"
          % (resident, dirty, 100 * dirty / max(resident, 1)))
    print("  restored lines:          %d" % report.restored_lines)
    print("  NVM accesses:            %d reads + %d writes"
          % (report.nvm_reads, report.nvm_writes))
    if report.stale_lines:
        print("  per restored line:       %.1f accesses"
              % (report.line_accesses / report.restored_lines))
    print("  modeled recovery time:   %.1f us (100 ns per line access)"
          % (report.recovery_time_ns / 1000))
    print()

print("STAR touches only the dirty share of the cache; Anubis always")
print("rescans a shadow table the size of the whole cache (Fig. 14).")
