#!/usr/bin/env python3
"""Quickstart: a secure NVM machine under STAR in ~30 lines.

Builds a scaled machine, writes and reads encrypted, integrity-protected
data, then pulls the power and recovers the security metadata.

Run with::

    python examples/quickstart.py
"""

from repro import Machine, sim_config

config = sim_config()
machine = Machine(config, scheme="star")
controller = machine.controller

print("machine:", config.memory_bytes // 1024 ** 2, "MB NVM,",
      config.metadata_cache.size_bytes // 1024, "KB metadata cache,",
      controller.geometry.num_levels, "SIT levels")

# write some user data: each line is encrypted under counter-mode and
# its MAC side-band carries the parent counter's LSBs (synergization)
secret = b"attack at dawn".ljust(64, b"\x00")
for line in range(0, 80, 8):
    controller.write_data(line, secret)

assert controller.read_data(0) == secret
print("wrote and verified", 10, "lines;",
      controller.meta_cache.dirty_count(), "metadata lines are dirty")

# power failure: volatile caches vanish, NVM + on-chip registers survive
machine.crash()
print("crash! stale metadata lines:", len(machine.pre_crash_dirty))

# STAR recovery: walk the bitmap index, rebuild counters from child
# LSBs, recompute MACs, verify via the cache-tree root
report = machine.recover(raise_on_failure=True)
print("recovered %d stale lines in %.1f us (%.0f NVM line accesses), "
      "verification %s"
      % (report.stale_lines, report.recovery_time_ns / 1000,
         report.line_accesses, "OK" if report.verified else "FAILED"))
assert machine.oracle_check(report), "recovery must be exact"

# the data is still there for a rebooted machine
rebooted = Machine(config, scheme="star",
                   registers=machine.registers, nvm=machine.nvm)
assert rebooted.controller.read_data(0) == secret
print("rebooted machine decrypted and verified the data — done")
