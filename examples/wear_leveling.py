#!/usr/bin/env python3
"""Endurance: why write amplification matters, and what wear leveling
adds on top.

The paper's opening argument is that PCM cells endure only 1e7-1e9
writes, so a persistence scheme that doubles write traffic (Anubis) or
multiplies it by the tree height (strict persistence) eats device
lifetime. This example measures per-line wear for each scheme on the
same trace, then shows the orthogonal fix production controllers pair
with low-traffic schemes: start-gap wear leveling (the paper's
reference [26]) migrating a hot line across physical slots.

Run with::

    python examples/wear_leveling.py
"""

from repro import Machine, make_workload, sim_config
from repro.mem.wearlevel import WearLevelingNVM
from repro.sim.endurance import wear_report

config = sim_config()

print("per-scheme wear on the same queue workload "
      "(hot header line + ring):\n")
print("%-8s %12s %10s %12s %10s" % (
    "scheme", "NVM writes", "max wear", "imbalance", "hottest"))
for scheme in ("wb", "strict", "anubis", "star"):
    machine = Machine(config, scheme=scheme)
    workload = make_workload("queue", config.num_data_lines,
                             operations=1200, seed=2)
    machine.run(workload.ops())
    report = wear_report(machine.nvm)
    print("%-8s %12d %10d %11.1fx %10s" % (
        scheme, machine.nvm.total_writes(), report.max_wear,
        report.imbalance, report.hottest_line[0]))

print("""
Anubis' hottest line is the shadow-table slot mirroring the hot queue
header; strict persistence hammers the SIT's upper levels. STAR's wear
profile is the write-back baseline's.

Start-gap wear leveling (ref [26]) is the orthogonal fix: the hot line
slowly migrates across physical slots. On a small device the rotation
is visible quickly — hammering one logical line of a 64-line device:
""")
from repro.tree.node import DataLineImage  # noqa: E402

for interval in (10 ** 9, 16, 4):
    device = WearLevelingNVM(64, gap_write_interval=interval)
    for _ in range(2000):
        device.write_data(3, DataLineImage(bytes(64), 0, 0))
    report = wear_report(device)
    label = ("off" if interval == 10 ** 9
             else "every %d writes" % interval)
    print("  gap move %-16s max physical wear %5d (of 2000 writes)"
          % (label + ":", report.max_wear))

print("""
And the remapping layer is invisible to the security machinery — the
full machine still crash-recovers on a wear-leveled device:
""")
nvm = WearLevelingNVM(config.num_data_lines, gap_write_interval=50)
machine = Machine(config, scheme="star", nvm=nvm)
workload = make_workload("queue", config.num_data_lines,
                         operations=1200, seed=2)
machine.run(workload.ops())
machine.crash()
report = machine.recover(raise_on_failure=True)
print("  crash-recovery: verified=%s, exact=%s (gap moves during the "
      "run: %d)" % (report.verified, machine.oracle_check(report),
                    nvm.stats["wearlevel.gap_moves"]))
