#!/usr/bin/env python3
"""Scheme comparison on one workload: traffic, IPC, energy, recovery.

A miniature of the paper's whole evaluation on a single workload of
your choice — handy for exploring how the schemes respond to different
access patterns.

Run with::

    python examples/write_traffic_comparison.py [workload]

where workload is one of: array btree hash queue rbtree tpcc ycsb
(default: hash).
"""

import sys

from repro import ALL_WORKLOADS, Machine, make_workload, sim_config

workload_name = sys.argv[1] if len(sys.argv) > 1 else "hash"
if workload_name not in ALL_WORKLOADS:
    raise SystemExit("unknown workload %r (choose from %s)"
                     % (workload_name, ", ".join(ALL_WORKLOADS)))

config = sim_config()
operations = 300 if workload_name == "tpcc" else 1500
results = {}
for scheme in ("wb", "strict", "anubis", "star"):
    machine = Machine(config, scheme=scheme)
    workload = make_workload(workload_name, config.num_data_lines,
                             operations=operations, seed=42)
    machine.run(workload.ops())
    if machine.scheme.supports_sit_recovery:
        machine.crash()
        recovery = machine.recover()
        assert machine.oracle_check(recovery)
    else:
        recovery = None
    results[scheme] = machine.result(workload_name, recovery=recovery)

baseline = results["wb"]
print("workload: %s (%d operations)\n" % (workload_name, operations))
header = "%-8s %12s %9s %8s %9s %16s" % (
    "scheme", "NVM writes", "vs WB", "IPC", "energy", "recovery",
)
print(header)
print("-" * len(header))
for scheme, result in results.items():
    if result.recovery is None:
        recovery = "unsupported"
    else:
        recovery = "%d lines, %.0f us" % (
            result.recovery.restored_lines,
            result.recovery.recovery_time_ns / 1000,
        )
    print("%-8s %12d %8.2fx %8.3f %8.2fx %16s" % (
        scheme,
        result.nvm_writes,
        result.normalized_writes(baseline),
        result.normalized_ipc(baseline),
        result.normalized_energy(baseline),
        recovery,
    ))

star = results["star"]
anubis = results["anubis"]
extra_star = star.nvm_writes - baseline.nvm_writes
extra_anubis = anubis.nvm_writes - baseline.nvm_writes
if extra_anubis:
    print("\nSTAR eliminates %.0f%% of Anubis' extra write traffic "
          "(paper: 92%%)" % (100 * (1 - extra_star / extra_anubis)))
