#!/usr/bin/env python3
"""Why the paper needed STAR: Osiris and Triad-NVM on BMT, and why
neither transfers to the SGX integrity tree (Section II-E).

Part 1 runs the two prior-work baselines on the Bonsai-Merkle-tree
substrate they were designed for and shows their trade-off: Osiris is
write-cheap but probes *every* counter block on recovery; Triad-NVM
recovers from always-fresh counter blocks but pays 2-4x writes.

Part 2 makes the incompatibility executable: a BMT rebuilds from its
leaves alone, while an SIT node's MAC needs its parent's counter — the
same node content yields different valid MACs under different parents,
so a bottom-up rebuild is ambiguous. STAR's counter-MAC synergization
is exactly the missing information, persisted for free.

Run with::

    python examples/bmt_baselines.py
"""

from repro.bmt import (
    BMTController,
    BmtWriteBackScheme,
    OsirisScheme,
    TriadNvmScheme,
)
from repro.mem.nvm import NVM
from repro.tree.sit import SITAuthenticator

KEY = b"bmt-example-key"
LINES = 64 * 128  # 128 counter blocks


def run(scheme):
    controller = BMTController(KEY, LINES, NVM(), scheme)
    for line in range(0, LINES, 5):
        controller.write_data(line)
    writes = controller.nvm.total_writes()
    controller.crash()
    report = controller.recover()
    exact = all(
        report.restored[index] == (image.major,) + image.minors
        for index, image in controller.pre_crash_blocks.items()
    )
    return writes, report, exact


print("part 1: prior-work baselines on their native BMT substrate\n")
baseline_writes = None
for scheme in (BmtWriteBackScheme(), OsirisScheme(persist_stride=4),
               TriadNvmScheme(persisted_levels=1)):
    if scheme.name == "bmt-wb":
        controller = BMTController(KEY, LINES, NVM(), scheme)
        for line in range(0, LINES, 5):
            controller.write_data(line)
        baseline_writes = controller.nvm.total_writes()
        print("%-8s writes=%5d (baseline, unrecoverable)"
              % (scheme.name, baseline_writes))
        continue
    writes, report, exact = run(scheme)
    print("%-8s writes=%5d (%.2fx)  recovery: %d blocks probed, "
          "%d NVM reads, verified=%s, exact=%s"
          % (scheme.name, writes, writes / baseline_writes,
             report.stale_lines, report.nvm_reads, report.verified,
             exact))

print("""
part 2: the SIT incompatibility, demonstrated
""")
auth = SITAuthenticator(KEY)
counters = tuple(range(8))
image_5 = auth.make_node_image((0, 0), counters, parent_counter=5)
image_6 = auth.make_node_image((0, 0), counters, parent_counter=6)
print("same SIT node content, parent counter 5 -> MAC %014x"
      % image_5.mac)
print("same SIT node content, parent counter 6 -> MAC %014x"
      % image_6.mac)
print("both verify under their own parent counter:",
      auth.verify_node_image((0, 0), image_5, 5),
      auth.verify_node_image((0, 0), image_6, 6))
print("neither verifies under the other:",
      not auth.verify_node_image((0, 0), image_5, 6),
      not auth.verify_node_image((0, 0), image_6, 5))
print("""
=> rebuilding SIT bottom-up is ambiguous without the parent counters;
   STAR ships their 10 LSBs inside the child's spare MAC bits, which is
   what makes SIT recoverable at zero extra writes.""")
