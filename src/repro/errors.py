"""Exception hierarchy for the STAR reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class IntegrityError(ReproError):
    """Integrity verification failed during normal operation.

    Raised when a MAC check on a fetched node or user-data line fails,
    which in a real system indicates tampering or corruption.
    """


class RecoveryError(ReproError):
    """Crash recovery could not be completed.

    Raised when the recovery process itself cannot proceed (for example
    the scheme does not support recovery at all).
    """


class VerificationError(RecoveryError):
    """The recovery process completed but failed verification.

    For STAR this means the reconstructed cache-tree root did not match
    the root stored in the on-chip register: an attack occurred during
    recovery (Section III-E/III-F of the paper).
    """


class AllocationError(ReproError):
    """The simulated persistent heap ran out of address space."""


class TraceFormatError(ReproError, ValueError):
    """A captured trace file could not be parsed.

    Derives from :class:`ValueError` as well so pre-existing callers
    that guarded ``parse_op`` with ``except ValueError`` keep working.
    Carries the offending line number and source label when the parse
    failure surfaced while streaming a file.
    """

    def __init__(self, message: str, line_number: int = 0,
                 source: str = "") -> None:
        prefix = ""
        if source:
            prefix += "%s: " % source
        if line_number:
            prefix += "line %d: " % line_number
        super().__init__(prefix + message)
        self.line_number = line_number
        self.source = source
