"""Read-through lab cache for the figure reproductions.

``star-bench --lab DIR`` hands one :class:`LabCache` down through
:func:`repro.bench.runner.run_one` / ``run_grid``. Each cell is keyed
by its :class:`~repro.lab.spec.RunSpec` hash: a stored cell is
deserialized instead of re-simulated, a missing cell is computed once
and committed. The returned :class:`~repro.sim.results.RunResult` is
*always* the payload reconstruction — also on the compute path — so a
figure renders identically whether its cells were cached or fresh.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import SystemConfig
from repro.lab.executor import execute, payload_to_run_result
from repro.lab.spec import bench_spec
from repro.lab.store import PathLike, ResultStore
from repro.sim.results import RunResult
from repro.util.stats import Stats


class LabCache:
    """Cache bench cells in (and serve them from) a lab store."""

    def __init__(self, store: Union[ResultStore, PathLike],
                 stats: Optional[Stats] = None) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store, stats=stats)
        self.store = store
        self.stats = stats if stats is not None else store.stats

    def run_one(self, config: SystemConfig, scheme: str,
                workload: str, operations: int, seed: int = 42,
                crash_and_recover: bool = False) -> RunResult:
        """The cell's ``RunResult``, computed at most once per store."""
        spec = bench_spec(
            config, scheme, workload, operations, seed=seed,
            crash_and_recover=crash_and_recover,
        )
        record = self.store.get(spec)
        if record is None:
            payload = execute(spec)
            record = self.store.put(spec, payload)
        return payload_to_run_result(record.payload)
