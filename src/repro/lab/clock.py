# lint: disable-file=STAR003
#   this module IS the sanctioned wall-clock seam for repro.lab: every
#   timeout/backoff decision in the scheduler goes through a Clock
#   instance so tests substitute FakeClock and the rest of the lab
#   package stays free of wall-clock reads (STAR003 covers repro/lab).
"""Wall-clock seam for the lab scheduler.

Job timeouts, retry backoff and shard wall-time measurement all need a
clock, but wall-clock reads are banned from deterministic paths
(STAR003) and make scheduler tests slow and flaky. This module is the
single place the lab package touches real time:

* :class:`Clock` — the production clock (monotonic ``perf_counter`` and
  a real ``sleep``),
* :class:`FakeClock` — a manually-advanced test double whose ``sleep``
  returns instantly, so timeout/backoff tests run in microseconds,
* :class:`BackoffPolicy` — the pure delay schedule (linear or capped
  exponential) that every retry wait in the lab derives from. The
  policy only *computes* delays; waiting them out always goes through
  a ``Clock`` instance, so FakeClock tests stay deterministic.

Everything else in ``repro.lab`` receives a clock instance; nothing
else may import :mod:`time`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigError

BACKOFF_POLICIES = ("linear", "exponential")


@dataclass(frozen=True)
class BackoffPolicy:
    """A retry delay schedule: attempt number in, seconds out.

    ``linear`` waits ``base_s * attempt`` (the scheduler's historical
    behaviour); ``exponential`` waits ``base_s * 2**(attempt-1)``.
    Both are capped at ``cap_s`` so a long retry chain cannot grow an
    unbounded sleep. Shared by :class:`~repro.lab.scheduler.Scheduler`
    retries and the farm workers' lease re-claim pacing
    (:mod:`repro.lab.farm`).
    """

    policy: str = "linear"
    base_s: float = 0.5
    cap_s: float = 30.0

    def __post_init__(self) -> None:
        if self.policy not in BACKOFF_POLICIES:
            raise ConfigError(
                "unknown backoff policy %r (choose from %s)"
                % (self.policy, ", ".join(BACKOFF_POLICIES))
            )
        if self.base_s < 0 or self.cap_s < 0:
            raise ConfigError("backoff base/cap must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        if self.policy == "exponential":
            raw = self.base_s * (2.0 ** (attempt - 1))
        else:
            raw = self.base_s * attempt
        return min(raw, self.cap_s)


class Clock:
    """Monotonic wall clock + sleep, injectable for tests."""

    def now(self) -> float:
        """Seconds on a monotonic clock (zero point is arbitrary)."""
        return time.perf_counter()

    def wall(self) -> float:
        """Seconds since the epoch.

        Heartbeat files written by worker processes must carry
        timestamps a *different* process can compare against its own
        clock (``perf_counter`` zero points are per-process), so the
        live-telemetry plane stamps snapshots with epoch time through
        this seam.
        """
        return time.time()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (the scheduler's poll/backoff waits)."""
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A deterministic clock for scheduler tests.

    ``sleep`` advances simulated time instead of blocking, so a test
    exercising a 30s timeout plus exponential backoff completes
    immediately while the scheduler observes exactly the elapsed time
    it expects.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.sleeps.append(seconds)
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += seconds
