# lint: disable-file=STAR003
#   this module IS the sanctioned wall-clock seam for repro.lab: every
#   timeout/backoff decision in the scheduler goes through a Clock
#   instance so tests substitute FakeClock and the rest of the lab
#   package stays free of wall-clock reads (STAR003 covers repro/lab).
"""Wall-clock seam for the lab scheduler.

Job timeouts, retry backoff and shard wall-time measurement all need a
clock, but wall-clock reads are banned from deterministic paths
(STAR003) and make scheduler tests slow and flaky. This module is the
single place the lab package touches real time:

* :class:`Clock` — the production clock (monotonic ``perf_counter`` and
  a real ``sleep``),
* :class:`FakeClock` — a manually-advanced test double whose ``sleep``
  returns instantly, so timeout/backoff tests run in microseconds.

Everything else in ``repro.lab`` receives a clock instance; nothing
else may import :mod:`time`.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic wall clock + sleep, injectable for tests."""

    def now(self) -> float:
        """Seconds on a monotonic clock (zero point is arbitrary)."""
        return time.perf_counter()

    def wall(self) -> float:
        """Seconds since the epoch.

        Heartbeat files written by worker processes must carry
        timestamps a *different* process can compare against its own
        clock (``perf_counter`` zero points are per-process), so the
        live-telemetry plane stamps snapshots with epoch time through
        this seam.
        """
        return time.time()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (the scheduler's poll/backoff waits)."""
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A deterministic clock for scheduler tests.

    ``sleep`` advances simulated time instead of blocking, so a test
    exercising a 30s timeout plus exponential backoff completes
    immediately while the scheduler observes exactly the elapsed time
    it expects.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.sleeps.append(seconds)
            self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += seconds
