"""Grid files: declarative campaign definitions over spec axes.

A grid is a small JSON document describing a cartesian product of lab
cells. The bench grids re-express the paper's evaluation sweeps
(Figs. 10-14, Table II of EXPERIMENTS.md) as cacheable cell sets; fuzz
grids express a seeded crash-consistency campaign as individually
resumable jobs.

Bench grid::

    {"name": "table2", "kind": "bench", "scale": "default",
     "schemes": ["star"], "workloads": ["array", "hash"],
     "seed": 42, "crash_and_recover": false,
     "axes": {"adr_bitmap_lines": [2, 4, 8, 16, 32]},
     "bitmap_fanout": 64}

Recognized axes: ``adr_bitmap_lines``, ``bitmap_fanout`` and
``metadata_cache_bytes`` — the three structural sweeps the paper
performs. ``operations`` defaults to the scale's per-workload count.

Fuzz grid::

    {"name": "fuzz-nightly", "kind": "fuzz", "cases": 64, "seed": 3,
     "schemes": ["star", "anubis"], "workloads": ["array", "hash"],
     "min_operations": 40, "max_operations": 160, "attack_rate": 0.5}

``expand`` turns either into an ordered, deterministic
:class:`~repro.lab.spec.RunSpec` list; ``campaign_id`` derives the
stable checkpoint identity of that list.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.lab.spec import RunSpec, bench_spec, canonical_json, fuzz_spec
from repro.workloads.registry import ALL_WORKLOADS

PathLike = Union[str, Path]

BENCH_AXES = ("adr_bitmap_lines", "bitmap_fanout",
              "metadata_cache_bytes")


# ----------------------------------------------------------------------
# built-in grids (the paper's sweeps as lab campaigns)
# ----------------------------------------------------------------------
def _paper_grid(scale: str) -> Dict:
    return {
        "name": "paper-%s" % scale,
        "kind": "bench",
        "scale": scale,
        "schemes": ["wb", "strict", "anubis", "star"],
        "workloads": list(ALL_WORKLOADS),
        "seed": 42,
    }


BUILTIN_GRIDS: Dict[str, Dict] = {
    # the shared scheme x workload grid behind Figs. 10-13 and 14(a)
    "paper": _paper_grid("default"),
    "paper-smoke": _paper_grid("smoke"),
    # Table II: ADR bitmap-line hit ratio vs lines held in ADR
    "table2": {
        "name": "table2",
        "kind": "bench",
        "scale": "default",
        "schemes": ["star"],
        "workloads": list(ALL_WORKLOADS),
        "seed": 42,
        "bitmap_fanout": 64,
        "axes": {"adr_bitmap_lines": [2, 4, 8, 16, 32]},
    },
    # Fig. 14(b): recovery time vs metadata cache size
    "fig14b": {
        "name": "fig14b",
        "kind": "bench",
        "scale": "default",
        "schemes": ["star", "anubis"],
        "workloads": ["hash"],
        "seed": 42,
        "crash_and_recover": True,
        "axes": {"metadata_cache_bytes": [4096, 8192, 16384, 32768]},
    },
    # a seeded fuzz campaign as resumable lab jobs
    "fuzz-smoke": {
        "name": "fuzz-smoke",
        "kind": "fuzz",
        "cases": 16,
        "seed": 1,
        "schemes": ["anubis", "phoenix", "star"],
        "workloads": ["array", "hash", "queue"],
        "attack_rate": 0.5,
    },
}


def load_grid(name_or_path: PathLike) -> Dict:
    """A grid by built-in name or JSON file path."""
    key = str(name_or_path)
    if key in BUILTIN_GRIDS:
        return dict(BUILTIN_GRIDS[key])
    path = Path(name_or_path)
    if not path.exists():
        raise ConfigError(
            "no grid named %r (built-ins: %s) and no such file"
            % (key, ", ".join(sorted(BUILTIN_GRIDS)))
        )
    with open(path) as handle:
        try:
            grid = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError("grid %s: %s" % (path, exc)) from None
    if not isinstance(grid, dict):
        raise ConfigError("grid %s: not a JSON object" % path)
    grid.setdefault("name", path.stem)
    return grid


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------
def _expand_bench(grid: Dict) -> List[RunSpec]:
    from repro.bench.runner import SCALES, config_for_scale

    scale = grid.get("scale", "default")
    if scale not in SCALES:
        raise ConfigError("grid %r: unknown scale %r"
                          % (grid.get("name"), scale))
    spec_scale = SCALES[scale]
    schemes = grid.get("schemes") or ["star"]
    workloads = grid.get("workloads") or ["hash"]
    seed = grid.get("seed", 42)
    crash = bool(grid.get("crash_and_recover", False))
    metrics = tuple(grid.get("metrics", ()))
    axes = dict(grid.get("axes", {}))
    for key in axes:
        if key not in BENCH_AXES:
            raise ConfigError(
                "grid %r: unknown axis %r (choose from %s)"
                % (grid.get("name"), key, ", ".join(BENCH_AXES))
            )
    axis_keys = sorted(axes)
    axis_values = [list(axes[key]) for key in axis_keys]
    combos = (
        list(itertools.product(*axis_values)) if axis_keys else [()]
    )

    specs: List[RunSpec] = []
    for combo in combos:
        point = dict(zip(axis_keys, combo))
        config = config_for_scale(
            scale,
            adr_bitmap_lines=point.get(
                "adr_bitmap_lines", grid.get("adr_bitmap_lines", 16)
            ),
            bitmap_fanout=point.get(
                "bitmap_fanout", grid.get("bitmap_fanout", 128)
            ),
        )
        if "metadata_cache_bytes" in point:
            config = config.with_metadata_cache_bytes(
                point["metadata_cache_bytes"]
            )
        for workload in workloads:
            operations = grid.get(
                "operations", spec_scale.operations_for(workload)
            )
            for scheme in schemes:
                specs.append(bench_spec(
                    config, scheme, workload, operations, seed=seed,
                    crash_and_recover=crash, metrics=metrics,
                ))
    return specs


def _expand_fuzz(grid: Dict) -> List[RunSpec]:
    from repro.fuzz.sampling import CampaignSpec, sample_cases

    campaign = CampaignSpec(
        cases=grid.get("cases", 32),
        seed=grid.get("seed", 0),
        schemes=list(grid.get("schemes")
                     or CampaignSpec().schemes),
        workloads=list(grid.get("workloads")
                       or CampaignSpec().workloads),
        min_operations=grid.get("min_operations", 40),
        max_operations=grid.get("max_operations", 160),
        attack_rate=grid.get("attack_rate", 0.5),
    )
    return [fuzz_spec(case) for case in sample_cases(campaign)]


def expand(grid: Dict) -> List[RunSpec]:
    """The grid's ordered, deterministic spec list."""
    kind = grid.get("kind", "bench")
    if kind == "bench":
        return _expand_bench(grid)
    if kind == "fuzz":
        return _expand_fuzz(grid)
    raise ConfigError("grid %r: unknown kind %r"
                      % (grid.get("name"), kind))


def campaign_id(specs: List[RunSpec]) -> str:
    """Stable identity of a spec list (the checkpoint/journal key)."""
    encoded = canonical_json(
        sorted(spec.spec_hash for spec in specs)
    ).encode("ascii")
    return hashlib.sha256(encoded).hexdigest()[:12]


def resolve_specs(grid_names: List[PathLike]) -> List[RunSpec]:
    """Expand several grids into one deduplicated spec list."""
    specs: List[RunSpec] = []
    seen = set()
    for name in grid_names:
        for spec in expand(load_grid(name)):
            if spec.spec_hash in seen:
                continue
            seen.add(spec.spec_hash)
            specs.append(spec)
    return specs


def grid_title(grid: Dict, specs: Optional[List[RunSpec]] = None
               ) -> str:
    count = "?" if specs is None else str(len(specs))
    return "%s (%s, %s cells)" % (
        grid.get("name", "grid"), grid.get("kind", "bench"), count
    )
