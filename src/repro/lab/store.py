"""The persistent experiment store: SQLite index + gzip-JSONL blobs.

Layout under one store root (conventionally ``.starlab/``)::

    .starlab/
      index.sqlite              # spec_hash -> row (the query surface)
      blobs/ab/abcdef....jsonl.gz   # the record of one cell
      campaigns/<id>.json       # scheduler checkpoints (journal)
      quarantine/               # corrupt files moved aside, never read

Each blob is a self-contained gzip JSONL file holding the spec, the
result payload and the provenance record, so the SQLite index is pure
acceleration: a corrupt or truncated index is quarantined and rebuilt
from the blobs, and a corrupt blob is quarantined and its row dropped,
which turns the damage into a cache miss (the cell is recomputed)
rather than a crash.

Record equality rule: ``payload`` is the deterministic result of the
spec and is what :meth:`ResultStore.export` emits; ``provenance``
(git revision, config digest, schema version) and ``wall_time_s`` are
environment facts and stay out of exports, so a resumed campaign
exports bit-identically to a serial one.
"""

from __future__ import annotations

import gzip
import json
import os
import sqlite3
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.lab.spec import (
    SCHEMA_VERSION,
    RunSpec,
    canonical_json,
)
from repro.util.stats import Stats

PathLike = Union[str, Path]

INDEX_NAME = "index.sqlite"
BLOBS_DIR = "blobs"
CAMPAIGNS_DIR = "campaigns"
QUARANTINE_DIR = "quarantine"

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS results (
    spec_hash      TEXT PRIMARY KEY,
    schema_version INTEGER NOT NULL,
    kind           TEXT NOT NULL,
    scheme         TEXT NOT NULL,
    workload       TEXT NOT NULL,
    seed           INTEGER NOT NULL,
    wall_time_s    REAL NOT NULL,
    spec_json      TEXT NOT NULL
)
"""

_BLOB_ERRORS = (
    OSError, EOFError, ValueError, KeyError, UnicodeDecodeError,
)


class StoreError(ReproError):
    """The store root is unusable (not a directory, unwritable, ...)."""


def git_revision() -> str:
    """The working tree's revision for provenance, or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass
class ResultRecord:
    """One stored cell: spec + deterministic payload + environment."""

    spec_hash: str
    spec: Dict
    payload: Dict
    provenance: Dict
    wall_time_s: float = 0.0

    def export_entry(self) -> Dict:
        """The equality-relevant projection (no provenance/timing)."""
        return {
            "spec_hash": self.spec_hash,
            "spec": self.spec,
            "result": self.payload,
        }


def _spec_key(spec_or_hash: Union[RunSpec, str]) -> str:
    if isinstance(spec_or_hash, RunSpec):
        return spec_or_hash.spec_hash
    return spec_or_hash


class ResultStore:
    """Content-addressed result store under one ``.starlab`` root."""

    def __init__(self, root: PathLike,
                 stats: Optional[Stats] = None,
                 cross_thread: bool = False) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError("store root %s is not a directory"
                             % self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / BLOBS_DIR).mkdir(exist_ok=True)
        (self.root / CAMPAIGNS_DIR).mkdir(exist_ok=True)
        self.stats = stats if stats is not None else Stats(enabled=False)
        # cross_thread: the HTTP lease server's ingestion store is
        # touched from handler threads; its lock serializes access,
        # and stock SQLite builds are serialized (threadsafety 3)
        self._cross_thread = cross_thread
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    @property
    def campaigns_path(self) -> Path:
        return self.root / CAMPAIGNS_DIR

    @property
    def quarantine_path(self) -> Path:
        return self.root / QUARANTINE_DIR

    def blob_path(self, spec_hash: str) -> Path:
        return (self.root / BLOBS_DIR / spec_hash[:2]
                / (spec_hash + ".jsonl.gz"))

    # ------------------------------------------------------------------
    # index lifecycle (with corruption recovery)
    # ------------------------------------------------------------------
    def _open_index(self) -> sqlite3.Connection:
        # a busy timeout because two connections may share the index:
        # the coordinator's own store plus the HTTP lease server's
        # ingestion store both point at the same root during a farm
        conn = sqlite3.connect(
            str(self.index_path), timeout=10.0,
            check_same_thread=not self._cross_thread,
        )
        conn.execute("PRAGMA busy_timeout = 10000")
        conn.execute(_TABLE_SQL)
        conn.commit()
        return conn

    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None:
            return self._conn
        try:
            conn = self._open_index()
        except sqlite3.DatabaseError:
            self._quarantine(self.index_path, "index")
            conn = self._open_index()
            self._conn = conn
            self._rebuild_into(conn)
            return conn
        self._conn = conn
        return conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _quarantine(self, path: Path, what: str) -> None:
        """Move a damaged file aside; never delete evidence."""
        if path == self.index_path:
            self.close()
        self.quarantine_path.mkdir(exist_ok=True)
        target = self.quarantine_path / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_path / (
                "%s.%d" % (path.name, suffix)
            )
        try:
            os.replace(path, target)
        except OSError:
            pass
        self.stats.add("lab.store.quarantined")
        self.stats.event("lab.quarantine", what=what, path=str(path))

    def _rebuild_into(self, conn: sqlite3.Connection) -> None:
        """Re-index every readable blob (after index corruption)."""
        for blob in sorted((self.root / BLOBS_DIR).glob("*/*.jsonl.gz")):
            try:
                record = self._read_blob_file(blob)
            except _BLOB_ERRORS:
                self._quarantine(blob, "blob")
                continue
            self._insert(conn, record)
        conn.commit()

    def _insert(self, conn: sqlite3.Connection,
                record: ResultRecord) -> None:
        spec = record.spec
        conn.execute(
            "INSERT OR REPLACE INTO results VALUES (?,?,?,?,?,?,?,?)",
            (
                record.spec_hash,
                record.provenance.get("schema", SCHEMA_VERSION),
                spec.get("kind", "?"),
                spec.get("scheme", "?"),
                spec.get("workload", "?"),
                spec.get("seed", 0),
                record.wall_time_s,
                canonical_json(spec),
            ),
        )

    # ------------------------------------------------------------------
    # blobs
    # ------------------------------------------------------------------
    def _read_blob_file(self, path: Path) -> ResultRecord:
        spec: Optional[Dict] = None
        payload: Optional[Dict] = None
        provenance: Dict = {}
        wall_time_s = 0.0
        with gzip.open(path, "rt", encoding="ascii") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("type")
                if kind == "spec":
                    spec = record["spec"]
                elif kind == "result":
                    payload = record["payload"]
                elif kind == "provenance":
                    provenance = record.get("provenance", {})
                    wall_time_s = record.get("wall_time_s", 0.0)
        if spec is None or payload is None:
            raise ValueError("blob %s is missing records" % path)
        spec_hash = RunSpec.from_dict(spec).spec_hash
        stem = path.name[: -len(".jsonl.gz")]
        if stem != spec_hash:
            raise ValueError(
                "blob %s does not hash to its file name" % path
            )
        return ResultRecord(
            spec_hash=spec_hash, spec=spec, payload=payload,
            provenance=provenance, wall_time_s=wall_time_s,
        )

    def _write_blob(self, record: ResultRecord) -> Path:
        path = self.blob_path(record.spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        # mtime=0 keeps blob bytes content-addressed (no timestamp in
        # the gzip header), so identical cells produce identical files
        with open(tmp, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb",
                               filename="", mtime=0) as handle:
                for line in (
                    {"type": "spec", "spec": record.spec},
                    {"type": "result", "payload": record.payload},
                    {"type": "provenance",
                     "provenance": record.provenance,
                     "wall_time_s": record.wall_time_s},
                ):
                    handle.write(
                        (canonical_json(line) + "\n").encode("ascii")
                    )
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # the public cache surface
    # ------------------------------------------------------------------
    def get(self, spec_or_hash: Union[RunSpec, str]
            ) -> Optional[ResultRecord]:
        """The stored record for a spec, else ``None`` (a miss).

        Counts ``lab.store.hits`` / ``lab.store.misses``; a blob that
        fails to parse is quarantined and reported as a miss so the
        scheduler recomputes the cell.
        """
        return self._load(_spec_key(spec_or_hash), count=True)

    def _load(self, spec_hash: str, count: bool = False
              ) -> Optional[ResultRecord]:
        """Fetch one record; ``count`` marks cache (not maintenance)
        reads, so exports and status scans don't inflate hit ratios."""
        conn = self._connect()
        row = conn.execute(
            "SELECT spec_hash FROM results WHERE spec_hash = ?",
            (spec_hash,),
        ).fetchone()
        if row is None:
            if count:
                self.stats.add("lab.store.misses")
            return None
        blob = self.blob_path(spec_hash)
        try:
            record = self._read_blob_file(blob)
        except _BLOB_ERRORS:
            self._quarantine(blob, "blob")
            conn.execute("DELETE FROM results WHERE spec_hash = ?",
                         (spec_hash,))
            conn.commit()
            if count:
                self.stats.add("lab.store.misses")
            return None
        if count:
            self.stats.add("lab.store.hits")
        return record

    def __contains__(self, spec_or_hash: Union[RunSpec, str]) -> bool:
        conn = self._connect()
        row = conn.execute(
            "SELECT 1 FROM results WHERE spec_hash = ?",
            (_spec_key(spec_or_hash),),
        ).fetchone()
        return row is not None

    def put(self, spec: RunSpec, payload: Dict,
            provenance: Optional[Dict] = None,
            wall_time_s: float = 0.0) -> ResultRecord:
        """Commit one computed cell (blob first, then the index row)."""
        if provenance is None:
            provenance = {}
        provenance = dict(provenance)
        provenance.setdefault("schema", SCHEMA_VERSION)
        record = ResultRecord(
            spec_hash=spec.spec_hash,
            spec=spec.to_dict(),
            payload=payload,
            provenance=provenance,
            wall_time_s=wall_time_s,
        )
        self._write_blob(record)
        conn = self._connect()
        self._insert(conn, record)
        conn.commit()
        self.stats.add("lab.store.puts")
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def hashes(self, prefix: str = "") -> List[str]:
        """All stored spec hashes (optionally by hash prefix), sorted."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT spec_hash FROM results WHERE spec_hash LIKE ? "
            "ORDER BY spec_hash",
            (prefix + "%",),
        ).fetchall()
        return [row[0] for row in rows]

    def records(self, prefix: str = "") -> Iterator[ResultRecord]:
        """Every readable record, in spec-hash order."""
        for spec_hash in self.hashes(prefix):
            record = self._load(spec_hash)
            if record is not None:
                yield record

    def __len__(self) -> int:
        conn = self._connect()
        return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def export(self, spec_hashes: Optional[List[str]] = None,
               prefix: str = "") -> List[Dict]:
        """Deterministic export of result records.

        Sorted by spec hash; provenance and timing excluded, so two
        stores holding the same computed cells export byte-identically
        regardless of how (or in how many sittings) they were filled.
        """
        wanted = None if spec_hashes is None else set(spec_hashes)
        entries = []
        for record in self.records(prefix):
            if wanted is not None and record.spec_hash not in wanted:
                continue
            entries.append(record.export_entry())
        return entries

    def import_from(self,
                    source: Union["ResultStore", "ExportSource"],
                    spec_hashes: Optional[List[str]] = None) -> int:
        """Copy records this store is missing from another source.

        The deterministic half of the farm merge path: records are
        pulled in spec-hash order, already-present hashes are skipped,
        and each imported record keeps its original payload and
        provenance. Because a payload is a pure function of its spec,
        two stores that computed the same cell independently hold
        byte-identical payloads — so merging N worker stores in any
        order converges on the same :meth:`export`. The source can be
        another store on a shared filesystem or an
        :class:`ExportSource` wrapping an uploaded export payload (the
        HTTP farm path) — both feed the same ``put``. Returns how many
        records were imported.
        """
        wanted = None if spec_hashes is None else set(spec_hashes)
        imported = 0
        for spec_hash in source.hashes():
            if wanted is not None and spec_hash not in wanted:
                continue
            if spec_hash in self:
                continue
            record = source._load(spec_hash)
            if record is None:
                continue
            self.put(RunSpec.from_dict(record.spec), record.payload,
                     provenance=record.provenance,
                     wall_time_s=record.wall_time_s)
            imported += 1
        return imported

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def rebuild_index(self) -> int:
        """Drop and re-derive the index from blobs; returns row count."""
        conn = self._connect()
        conn.execute("DELETE FROM results")
        self._rebuild_into(conn)
        return len(self)

    def gc(self, keep_hashes: Optional[List[str]] = None,
           purge_quarantine: bool = False) -> Dict[str, int]:
        """Garbage-collect the store.

        With ``keep_hashes``, drop every record not in the set; always
        remove orphan blobs (no index row) and stray temp files.
        Returns counts of what was removed.
        """
        conn = self._connect()
        removed = {"records": 0, "orphan_blobs": 0, "quarantined": 0}
        if keep_hashes is not None:
            keep = set(keep_hashes)
            for spec_hash in self.hashes():
                if spec_hash in keep:
                    continue
                conn.execute(
                    "DELETE FROM results WHERE spec_hash = ?",
                    (spec_hash,),
                )
                blob = self.blob_path(spec_hash)
                if blob.exists():
                    blob.unlink()
                removed["records"] += 1
            conn.commit()
        indexed = set(self.hashes())
        for blob in sorted((self.root / BLOBS_DIR).glob("*/*")):
            stem = blob.name.split(".", 1)[0]
            if blob.name.endswith(".tmp") or stem not in indexed:
                blob.unlink()
                removed["orphan_blobs"] += 1
        if purge_quarantine and self.quarantine_path.exists():
            for path in sorted(self.quarantine_path.iterdir()):
                path.unlink()
                removed["quarantined"] += 1
        return removed


class ExportSource:
    """A read-only :meth:`ResultStore.import_from` source over
    export-shaped entries.

    The HTTP farm ships results as :meth:`ResultStore.export` payloads
    (``spec_hash`` / ``spec`` / ``result``); this adapter lets the
    coordinator ingest such a payload through the exact ``import_from``
    path a filesystem merge uses. Every entry's hash is recomputed
    from its spec and mismatches are rejected, so a corrupted or
    forged upload cannot land a payload under the wrong key.
    """

    def __init__(self, entries: List[Dict],
                 provenance: Optional[Dict] = None) -> None:
        base = dict(provenance or {})
        base.setdefault("schema", SCHEMA_VERSION)
        self._records: Dict[str, ResultRecord] = {}
        for entry in entries:
            if not isinstance(entry, dict):
                raise StoreError(
                    "malformed export entry: %r" % (entry,)
                )
            try:
                spec = entry["spec"]
                payload = entry["result"]
                claimed = entry["spec_hash"]
            except (KeyError, TypeError):
                raise StoreError(
                    "export entry is missing spec/result/spec_hash: "
                    "%r" % sorted(entry)
                ) from None
            try:
                spec_hash = RunSpec.from_dict(spec).spec_hash
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                raise StoreError(
                    "export entry %r carries an unusable spec: %s"
                    % (claimed, exc)
                ) from exc
            if spec_hash != claimed:
                raise StoreError(
                    "export entry claims hash %r but its spec hashes "
                    "to %r" % (claimed, spec_hash)
                )
            self._records[spec_hash] = ResultRecord(
                spec_hash=spec_hash, spec=spec, payload=payload,
                provenance=dict(base),
            )

    def __len__(self) -> int:
        return len(self._records)

    def hashes(self, prefix: str = "") -> List[str]:
        return sorted(spec_hash for spec_hash in self._records
                      if spec_hash.startswith(prefix))

    def _load(self, spec_hash: str, count: bool = False
              ) -> Optional[ResultRecord]:
        return self._records.get(spec_hash)
