"""The farm's lease board: SQLite cell leases with fencing tokens.

A farm campaign is a set of :class:`~repro.lab.spec.RunSpec` cells
that many worker processes (possibly on many hosts sharing a
filesystem) race to execute. The board is the single source of truth
for who owns which cell:

* every cell is one row keyed by ``spec_hash``, in one of four states
  — ``pending`` (claimable), ``leased`` (owned until a deadline),
  ``done``, ``failed``;
* a **claim** atomically moves a row to ``leased`` for one owner,
  stamps a deadline, and bumps the row's **fencing token** — a
  per-cell monotonic counter;
* a lease whose deadline has passed (``now >= deadline``, inclusive:
  expiry happens *exactly at* the deadline) is claimable again by any
  worker — that is the work-stealing path, and the steal bumps the
  fence, so the previous owner's token goes stale;
* **complete**/**renew**/**fail** only succeed when state, owner *and*
  fence all still match — a zombie worker (SIGKILLed, paused past its
  deadline, partitioned) that comes back after its cell was stolen is
  rejected instead of overwriting the thief's progress. Its computed
  payload is not wasted either: payloads are pure functions of the
  spec, so the merge path converges regardless of which owner's copy
  ships.

``deadline`` doubles as a *not-claimable-before* stamp for ``pending``
rows, which is how failed cells re-enter the queue under a
:class:`~repro.lab.clock.BackoffPolicy` delay without a separate
column or a sleeping coordinator.

All timestamps are epoch seconds through the injected
:class:`~repro.lab.clock.Clock` (``clock.wall()`` — the same
cross-process-comparable seam the heartbeat plane uses), so FakeClock
tests drive expiry and backoff deterministically. Writes use
``BEGIN IMMEDIATE`` transactions with a busy timeout, which is what
makes concurrent claims from separate processes race-safe on one
SQLite file.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.lab.clock import BackoffPolicy, Clock
from repro.lab.spec import RunSpec, canonical_json

PathLike = Union[str, Path]

STATES = ("pending", "leased", "done", "failed")

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS leases (
    spec_hash TEXT PRIMARY KEY,
    spec_json TEXT NOT NULL,
    state     TEXT NOT NULL,
    owner     TEXT,
    deadline  REAL NOT NULL DEFAULT 0,
    fence     INTEGER NOT NULL DEFAULT 0,
    attempts  INTEGER NOT NULL DEFAULT 0,
    error     TEXT
)
"""

_CLAIMABLE_SQL = (
    "SELECT spec_hash, spec_json, state, owner, fence, attempts "
    "FROM leases WHERE state IN ('pending', 'leased') "
    "AND deadline <= ? ORDER BY spec_hash LIMIT ?"
)


@dataclass(frozen=True)
class Lease:
    """One claimed cell: the spec plus the claim's fencing credentials."""

    spec: RunSpec
    fence: int
    deadline: float
    stolen: bool = False
    attempts: int = 0

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash


class LeaseBoard:
    """The shared lease table one farm campaign coordinates through."""

    def __init__(self, path: PathLike, clock: Optional[Clock] = None,
                 busy_timeout_s: float = 10.0,
                 cross_thread: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.clock = clock if clock is not None else Clock()
        # autocommit mode: transactions are opened explicitly with
        # BEGIN IMMEDIATE so claim's read-then-update is atomic across
        # processes. ``cross_thread`` lets the HTTP lease server share
        # one board across handler threads — the server serializes every
        # verb behind its own lock, so sqlite's same-thread check would
        # only get in the way.
        self._conn = sqlite3.connect(
            str(self.path), timeout=busy_timeout_s,
            isolation_level=None,
            check_same_thread=not cross_thread,
        )
        self._conn.execute(
            "PRAGMA busy_timeout = %d" % int(busy_timeout_s * 1000)
        )
        self._conn.execute(_TABLE_SQL)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "LeaseBoard":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        self._conn.execute("BEGIN IMMEDIATE")

    # ------------------------------------------------------------------
    # seeding / adoption
    # ------------------------------------------------------------------
    def seed(self, specs: List[RunSpec]) -> int:
        """Add cells as ``pending``; existing rows are left untouched.

        Idempotent by construction (``INSERT OR IGNORE``), which is
        what makes a restarted coordinator *re-adopt* a board instead
        of resetting it: in-flight leases keep their owner, deadline
        and fence, and finished cells stay finished. Returns how many
        rows are new.
        """
        self._begin()
        try:
            added = 0
            for spec in specs:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO leases "
                    "(spec_hash, spec_json, state) "
                    "VALUES (?, ?, 'pending')",
                    (spec.spec_hash, canonical_spec_json(spec)),
                )
                added += cursor.rowcount
            self._conn.execute("COMMIT")
            return added
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def settle(self, spec_hash: str) -> bool:
        """Mark a cell ``done`` out-of-band (already in the store).

        Used by the coordinator for cells the authoritative store
        already holds — there is nothing to execute, so the row is
        finished regardless of its current state. A worker still
        holding a lease on it will get a clean state-mismatch rejection
        at completion time.
        """
        self._begin()
        try:
            cursor = self._conn.execute(
                "UPDATE leases SET state = 'done' "
                "WHERE spec_hash = ? AND state != 'done'",
                (spec_hash,),
            )
            self._conn.execute("COMMIT")
            return cursor.rowcount == 1
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def requeue(self, spec_hashes: List[str]) -> int:
        """Force cells back to ``pending`` (e.g. done rows whose
        payload never reached the authoritative store because a worker
        store was lost). The fence is bumped so any stale owner stays
        locked out."""
        self._begin()
        try:
            requeued = 0
            for spec_hash in spec_hashes:
                cursor = self._conn.execute(
                    "UPDATE leases SET state = 'pending', owner = NULL,"
                    " deadline = 0, fence = fence + 1 "
                    "WHERE spec_hash = ? AND state != 'pending'",
                    (spec_hash,),
                )
                requeued += cursor.rowcount
            self._conn.execute("COMMIT")
            return requeued
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------------
    # the lease protocol
    # ------------------------------------------------------------------
    def claim(self, owner: str, lease_s: float,
              limit: int = 1) -> List[Lease]:
        """Atomically claim up to ``limit`` claimable cells.

        Claimable means ``pending`` past its not-before stamp, or
        ``leased`` past its deadline (a steal from a dead or stalled
        peer). Rows are taken in spec-hash order so claim order is
        deterministic for a given board state. Each claim bumps the
        row's fence.

        ``lease_s`` must be positive (a non-positive lease would seed
        an already-expired deadline, turning every claim into an
        instant steal target) and ``limit`` must be at least one (a
        zero batch would silently claim nothing, forever).
        """
        if lease_s <= 0:
            raise ConfigError(
                "claim lease_s must be positive, got %r: a "
                "non-positive lease seeds an already-expired deadline"
                % lease_s
            )
        if limit <= 0:
            raise ConfigError(
                "claim batch size must be at least 1, got %r" % limit
            )
        now = self.clock.wall()
        self._begin()
        try:
            rows = self._conn.execute(
                _CLAIMABLE_SQL, (now, limit)
            ).fetchall()
            leases = []
            for (spec_hash, spec_json, state, prior_owner, fence,
                 attempts) in rows:
                stolen = state == "leased" and prior_owner != owner
                self._conn.execute(
                    "UPDATE leases SET state = 'leased', owner = ?, "
                    "deadline = ?, fence = ? WHERE spec_hash = ?",
                    (owner, now + lease_s, fence + 1, spec_hash),
                )
                leases.append(Lease(
                    spec=spec_from_json(spec_json),
                    fence=fence + 1,
                    deadline=now + lease_s,
                    stolen=stolen,
                    attempts=attempts,
                ))
            self._conn.execute("COMMIT")
            return leases
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def _fenced_update(self, set_sql: str, params: tuple, owner: str,
                       spec_hash: str, fence: int) -> bool:
        cursor = self._conn.execute(
            "UPDATE leases SET %s WHERE spec_hash = ? AND "
            "state = 'leased' AND owner = ? AND fence = ?" % set_sql,
            params + (spec_hash, owner, fence),
        )
        return cursor.rowcount == 1

    def renew(self, owner: str, spec_hash: str, fence: int,
              lease_s: float) -> bool:
        """Extend a held lease's deadline; ``False`` on a stale fence
        (the cell was stolen, or already finished elsewhere)."""
        return self._fenced_update(
            "deadline = ?", (self.clock.wall() + lease_s,),
            owner, spec_hash, fence,
        )

    def complete(self, owner: str, spec_hash: str, fence: int) -> bool:
        """Mark a held cell ``done``; ``False`` on a stale fence, in
        which case the caller's result must not be reported as the
        cell's completion (the thief owns it now)."""
        return self._fenced_update(
            "state = 'done'", (), owner, spec_hash, fence,
        )

    def fail(self, owner: str, spec_hash: str, fence: int, error: str,
             max_attempts: int = 3,
             backoff: Optional[BackoffPolicy] = None) -> str:
        """Record a failed execution attempt on a held cell.

        Returns ``"requeued"`` (back to ``pending``, claimable after
        the policy's backoff delay — by *any* worker, so a cell that
        fails on a sick host can succeed on a healthy one),
        ``"failed"`` (attempt budget exhausted; terminal), or
        ``"stale"`` (fence mismatch: this owner no longer holds the
        cell, nothing recorded).
        """
        if backoff is None:
            backoff = BackoffPolicy()
        self._begin()
        try:
            row = self._conn.execute(
                "SELECT attempts FROM leases WHERE spec_hash = ? AND "
                "state = 'leased' AND owner = ? AND fence = ?",
                (spec_hash, owner, fence),
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return "stale"
            attempts = row[0] + 1
            if attempts >= max_attempts:
                self._conn.execute(
                    "UPDATE leases SET state = 'failed', attempts = ?,"
                    " error = ? WHERE spec_hash = ?",
                    (attempts, error, spec_hash),
                )
                outcome = "failed"
            else:
                self._conn.execute(
                    "UPDATE leases SET state = 'pending', owner = NULL,"
                    " attempts = ?, error = ?, deadline = ? "
                    "WHERE spec_hash = ?",
                    (attempts, error,
                     self.clock.wall() + backoff.delay(attempts),
                     spec_hash),
                )
                outcome = "requeued"
            self._conn.execute("COMMIT")
            return outcome
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row counts by state (absent states count zero)."""
        out = {state: 0 for state in STATES}
        for state, count in self._conn.execute(
            "SELECT state, COUNT(*) FROM leases GROUP BY state"
        ):
            out[state] = count
        return out

    def finished(self) -> bool:
        """True when every cell is terminal (``done`` or ``failed``)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def hashes(self, state: Optional[str] = None) -> List[str]:
        """Spec hashes (optionally one state), in hash order."""
        if state is None:
            rows = self._conn.execute(
                "SELECT spec_hash FROM leases ORDER BY spec_hash"
            )
        else:
            rows = self._conn.execute(
                "SELECT spec_hash FROM leases WHERE state = ? "
                "ORDER BY spec_hash", (state,),
            )
        return [row[0] for row in rows]

    def lease_row(self, spec_hash: str) -> Optional[Dict]:
        """One cell's row as a dict (``None`` when unknown).

        Read-only: the HTTP lease server uses it to tell a *retried*
        ``complete`` (same owner and fence already landed the row in
        ``done`` — acknowledge, don't re-apply) from a genuinely stale
        one (someone else owns the cell — reject).
        """
        row = self._conn.execute(
            "SELECT spec_hash, state, owner, deadline, fence, "
            "attempts, error FROM leases WHERE spec_hash = ?",
            (spec_hash,),
        ).fetchone()
        if row is None:
            return None
        (spec_hash, state, owner, deadline, fence, attempts,
         error) = row
        return {"spec_hash": spec_hash, "state": state, "owner": owner,
                "deadline": deadline, "fence": fence,
                "attempts": attempts, "error": error}

    def rows(self) -> List[Dict]:
        """Every row as a dict, in spec-hash order (status surfaces)."""
        cursor = self._conn.execute(
            "SELECT spec_hash, state, owner, deadline, fence, "
            "attempts, error FROM leases ORDER BY spec_hash"
        )
        return [
            {"spec_hash": spec_hash, "state": state, "owner": owner,
             "deadline": deadline, "fence": fence,
             "attempts": attempts, "error": error}
            for (spec_hash, state, owner, deadline, fence, attempts,
                 error) in cursor
        ]

    def failures(self) -> List[Dict]:
        """Terminal failures in the journal's ``failures`` shape."""
        out = []
        cursor = self._conn.execute(
            "SELECT spec_hash, spec_json, attempts, error FROM leases "
            "WHERE state = 'failed' ORDER BY spec_hash"
        )
        for spec_hash, spec_json, attempts, error in cursor:
            out.append({
                "spec_hash": spec_hash,
                "label": spec_from_json(spec_json).label,
                "attempts": attempts,
                "error": (error or "unknown").splitlines()[-1],
            })
        return out


# ----------------------------------------------------------------------
# spec (de)hydration
# ----------------------------------------------------------------------
def canonical_spec_json(spec: RunSpec) -> str:
    return canonical_json(spec.to_dict())


def spec_from_json(spec_json: str) -> RunSpec:
    return RunSpec.from_dict(json.loads(spec_json))
