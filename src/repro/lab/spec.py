"""Declarative run specifications with canonical content hashes.

A :class:`RunSpec` fully determines one lab cell: the machine
configuration, the persistence scheme, the workload and its seed, the
crash behaviour and (for fuzz jobs) the sampled case parameters. Its
``spec_hash`` is a SHA-256 over a canonical JSON encoding — sorted
keys, no whitespace variance, schema-versioned — so the same
computation always lands on the same store key, across processes and
platforms, and *any* semantic change (one more operation, a different
ADR budget) lands on a different one.

``canonical_config`` / ``config_from_canonical`` round-trip a full
:class:`~repro.config.SystemConfig` through plain JSON data, which
keeps specs self-contained: a resumed campaign rebuilds its machines
from the journal alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.config import (
    CacheConfig,
    CPUConfig,
    NVMTimings,
    StarConfig,
    SystemConfig,
)
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.fuzz.sampling import FuzzCase

SCHEMA_VERSION = 1
"""Bumping this invalidates every cached cell (the version is hashed)."""

KINDS = ("bench", "fuzz")


def canonical_json(payload: object) -> str:
    """The one true JSON encoding used for hashing and digests."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_config(config: SystemConfig) -> Dict:
    """A ``SystemConfig`` as plain, JSON-safe, order-stable data."""
    payload = asdict(config)
    payload["crypto_key"] = config.crypto_key.hex()
    return payload


def config_from_canonical(payload: Dict) -> SystemConfig:
    """Rebuild the exact ``SystemConfig`` a canonical dict came from."""
    data = dict(payload)

    def cache(entry: Optional[Dict]) -> Optional[CacheConfig]:
        return None if entry is None else CacheConfig(**entry)

    try:
        return SystemConfig(
            memory_bytes=data["memory_bytes"],
            metadata_cache=cache(data["metadata_cache"]),
            llc=cache(data["llc"]),
            l2=cache(data.get("l2")),
            l1=cache(data.get("l1")),
            nvm=NVMTimings(**data["nvm"]),
            cpu=CPUConfig(**data["cpu"]),
            star=StarConfig(**data["star"]),
            recovery_line_access_ns=data["recovery_line_access_ns"],
            crypto_key=bytes.fromhex(data["crypto_key"]),
            device_timing=data["device_timing"],
            device_banks=data["device_banks"],
            device_row_lines=data["device_row_lines"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(
            "malformed canonical config: %s" % exc
        ) from None


def config_digest(config: SystemConfig) -> str:
    """Short content digest of a configuration (provenance field)."""
    encoded = canonical_json(canonical_config(config)).encode("ascii")
    return hashlib.sha256(encoded).hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined lab cell.

    ``kind`` selects the executor: ``"bench"`` runs one scheme/workload
    simulation (optionally crash + recover), ``"fuzz"`` runs one
    crash-consistency fuzz case whose sampled parameters live in
    ``params``. ``metrics`` optionally narrows which stats counters the
    result record keeps (empty tuple = all of them).
    """

    kind: str
    scheme: str
    workload: str
    operations: int
    seed: int
    config: Dict
    crash_and_recover: bool = False
    params: Dict = field(default_factory=dict)
    metrics: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                "unknown spec kind %r (choose from %s)"
                % (self.kind, ", ".join(KINDS))
            )
        if self.operations < 1:
            raise ConfigError("spec needs at least one operation")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def canonical(self) -> Dict:
        """The hashed identity of this spec (includes the schema)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "scheme": self.scheme,
            "workload": self.workload,
            "operations": self.operations,
            "seed": self.seed,
            "config": self.config,
            "crash_and_recover": self.crash_and_recover,
            "params": self.params,
            "metrics": list(self.metrics),
        }

    @property
    def spec_hash(self) -> str:
        encoded = canonical_json(self.canonical()).encode("ascii")
        return hashlib.sha256(encoded).hexdigest()

    @property
    def label(self) -> str:
        """Short human handle used in tables and progress lines."""
        return "%s:%s/%s@%d" % (
            self.kind, self.scheme, self.workload, self.seed
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["metrics"] = list(self.metrics)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        fields = {
            key: payload[key]
            for key in cls.__dataclass_fields__
            if key in payload
        }
        fields["metrics"] = tuple(fields.get("metrics", ()))
        return cls(**fields)

    def system_config(self) -> SystemConfig:
        return config_from_canonical(self.config)


# ----------------------------------------------------------------------
# factories
# ----------------------------------------------------------------------
def bench_spec(config: SystemConfig, scheme: str, workload: str,
               operations: int, seed: int = 42,
               crash_and_recover: bool = False,
               metrics: Tuple[str, ...] = ()) -> RunSpec:
    """The spec of one figure/table cell (`repro.bench.runner.run_one`)."""
    return RunSpec(
        kind="bench",
        scheme=scheme,
        workload=workload,
        operations=operations,
        seed=seed,
        config=canonical_config(config),
        crash_and_recover=crash_and_recover,
        metrics=tuple(metrics),
    )


def fuzz_spec(case: "FuzzCase",
              config: Optional[SystemConfig] = None) -> RunSpec:
    """The spec of one fuzz case (crash fractions ride in ``params``).

    ``case`` is a :class:`repro.fuzz.sampling.FuzzCase`; the machine is
    the fixed campaign config
    (:func:`repro.fuzz.executor.campaign_config`) unless overridden.
    """
    if config is None:
        from repro.fuzz.executor import campaign_config

        config = campaign_config()
    return RunSpec(
        kind="fuzz",
        scheme=case.scheme,
        workload=case.workload,
        operations=case.operations,
        seed=case.seed,
        config=canonical_config(config),
        crash_and_recover=True,
        params={
            "index": case.index,
            "crash_frac": case.crash_frac,
            "prepare_frac": case.prepare_frac,
            "attack": case.attack,
            "attack_seed": case.attack_seed,
        },
    )
