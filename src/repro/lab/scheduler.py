"""The sharded, resumable campaign scheduler.

A campaign is an ordered list of :class:`~repro.lab.spec.RunSpec`
cells. The scheduler first consults the store — cells with a stored
record are *resumed* (skipped) — then fans the remainder out over
worker processes, committing each result from the parent process so
the store only ever has one writer. Because every cell's payload is a
pure function of its spec, a sharded run commits exactly the records a
serial run would: kill-and-resume equivalence is a store property, not
a scheduling property.

Robustness machinery:

* per-job timeout — a stuck worker is terminated and the cell retried,
* bounded retry under a configurable :class:`~repro.lab.clock
  .BackoffPolicy` (linear or capped exponential, waited out through
  the injectable :class:`~repro.lab.clock.Clock`, so tests use
  ``FakeClock``),
* graceful SIGINT draining — the first Ctrl-C stops launching and lets
  in-flight cells finish and commit; the second kills them,
* a campaign journal under ``<store>/campaigns/<id>.json`` checkpointed
  after every commit, so ``star-lab status`` and ``star-lab resume``
  know exactly where a killed campaign stopped.

Metrics (see ``repro.obs.catalog``): ``lab.jobs.scheduled`` /
``resumed`` / ``completed`` / ``retried`` / ``timeouts`` / ``failed``,
``lab.job.wall_ms`` and ``lab.campaign.wall_s``; store hits/misses are
counted by :class:`~repro.lab.store.ResultStore` itself.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import threading
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    cast,
)

from repro.lab.clock import BackoffPolicy, Clock
from repro.lab.executor import execute
from repro.lab.gridfile import campaign_id
from repro.lab.spec import RunSpec, canonical_json
from repro.lab.store import ResultStore, git_revision
from repro.util.stats import Stats

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext

    from repro.obs.live import HeartbeatWriter

Outcome = Tuple[str, object]
"""("ok", payload) or ("error", message)."""

Telemetry = Tuple[str, str]
"""A ``(directory, worker name)`` heartbeat destination."""

SignalHandler = Union[
    Callable[[int, Optional[FrameType]], Any], int, signal.Handlers, None
]
"""What :func:`signal.signal` accepts and returns."""

CHECKPOINT_LIMIT = 64
"""Journal checkpoint entries retained (a bounded progress history —
enough for throughput/ETA estimation, small enough to keep journal
rewrites cheap)."""


# ----------------------------------------------------------------------
# job runners (real processes in production, fakes in tests)
# ----------------------------------------------------------------------
def _heartbeat_writer(
    telemetry: Optional[Telemetry],
) -> Optional["HeartbeatWriter"]:
    """Build a worker-side heartbeat writer from a ``(dir, name)``
    pair; ``None`` passes through (telemetry is strictly opt-in)."""
    if telemetry is None:
        return None
    from repro.obs.live import HeartbeatWriter

    directory, worker = telemetry
    return HeartbeatWriter(directory, worker, interval_s=0.0)


def _worker_main(conn: "Connection", spec_dict: Dict,
                 telemetry: Optional[Telemetry] = None) -> None:
    """Child-process entry point: execute one spec, send the payload."""
    try:
        spec = RunSpec.from_dict(spec_dict)
        writer = _heartbeat_writer(telemetry)
        if writer is not None:
            writer.write(progress={"state": "running",
                                   "label": spec.label,
                                   "spec": spec.spec_hash}, force=True)
        payload = execute(spec)
        if writer is not None:
            writer.write(progress={"state": "done",
                                   "label": spec.label,
                                   "spec": spec.spec_hash}, force=True)
        conn.send(("ok", payload))
    except BrokenPipeError:
        pass  # parent killed mid-job; the lease system re-runs the cell
    except BaseException:
        try:
            conn.send(("error",
                       traceback.format_exc(limit=6).strip()))
        except BrokenPipeError:
            pass
    finally:
        conn.close()


class JobHandle(Protocol):
    """What the scheduler needs from one in-flight job."""

    started: float

    def poll(self) -> Optional[Outcome]: ...

    def stop(self) -> None: ...


class JobRunner(Protocol):
    """What the scheduler needs from a job launcher."""

    def start(self, spec: RunSpec, clock: Clock,
              telemetry: Optional[Telemetry] = None) -> JobHandle: ...


class InlineHandle:
    """A job executed synchronously in the scheduler process."""

    def __init__(self, spec: RunSpec, started: float,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.started = started
        writer = _heartbeat_writer(telemetry)
        if writer is not None:
            writer.write(progress={"state": "running",
                                   "label": spec.label,
                                   "spec": spec.spec_hash}, force=True)
        try:
            self._outcome: Outcome = ("ok", execute(spec))
        except Exception:
            self._outcome = (
                "error", traceback.format_exc(limit=6).strip()
            )
        if writer is not None:
            writer.write(progress={"state": "done",
                                   "label": spec.label,
                                   "spec": spec.spec_hash}, force=True)

    def poll(self) -> Optional[Outcome]:
        return self._outcome

    def stop(self) -> None:
        pass


class InlineRunner:
    """Serial execution: no processes, no preemption (jobs <= 1)."""

    supports_telemetry = True

    def start(self, spec: RunSpec, clock: Clock,
              telemetry: Optional[Telemetry] = None) -> InlineHandle:
        return InlineHandle(spec, clock.now(), telemetry=telemetry)


class ProcessHandle:
    """One spawned worker process executing one cell."""

    def __init__(self, context: "BaseContext", spec: RunSpec,
                 started: float,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.started = started
        self._recv, child = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_worker_main,
            args=(child, spec.to_dict(), telemetry),
        )
        self.process.start()
        child.close()
        self._outcome: Optional[Outcome] = None

    def poll(self) -> Optional[Outcome]:
        if self._outcome is not None:
            return self._outcome
        if self._recv.poll(0):
            try:
                self._outcome = self._recv.recv()
            except (EOFError, OSError):
                self._outcome = ("error", "worker pipe closed early")
            self.process.join()
            return self._outcome
        if not self.process.is_alive():
            self.process.join()
            self._outcome = (
                "error",
                "worker exited with code %s without a result"
                % self.process.exitcode,
            )
            return self._outcome
        return None

    def stop(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()
        self._recv.close()


class ProcessRunner:
    """Spawn-start workers: the cold start a reproducing dev gets."""

    supports_telemetry = True

    def __init__(self) -> None:
        self._context = multiprocessing.get_context("spawn")

    def start(self, spec: RunSpec, clock: Clock,
              telemetry: Optional[Telemetry] = None) -> ProcessHandle:
        return ProcessHandle(self._context, spec, clock.now(),
                             telemetry=telemetry)


# ----------------------------------------------------------------------
# campaign bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Job:
    spec: RunSpec
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class CampaignReport:
    """What one scheduler invocation did."""

    campaign_id: str
    name: str
    total: int
    resumed: int = 0
    completed: int = 0
    failed: int = 0
    interrupted: bool = False
    failures: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and not self.interrupted

    @property
    def remaining(self) -> int:
        return self.total - self.resumed - self.completed - self.failed

    def summary(self) -> Dict:
        return {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "total": self.total,
            "resumed": self.resumed,
            "completed": self.completed,
            "failed": self.failed,
            "remaining": self.remaining,
            "interrupted": self.interrupted,
        }


class Scheduler:
    """Run campaigns against one store with bounded worker shards."""

    def __init__(self, store: ResultStore, jobs: int = 1,
                 timeout_s: Optional[float] = None, retries: int = 2,
                 backoff_s: float = 0.5,
                 backoff: Optional[BackoffPolicy] = None,
                 clock: Optional[Clock] = None,
                 stats: Optional[Stats] = None,
                 poll_interval_s: float = 0.02,
                 runner: Optional[JobRunner] = None,
                 telemetry_dir: Optional[Union[str, Path]] = None,
                 heartbeat_interval_s: float = 1.0) -> None:
        self.store = store
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        # ``backoff_s`` is the legacy linear knob; a full policy wins
        self.backoff = (backoff if backoff is not None
                        else BackoffPolicy("linear", base_s=backoff_s))
        self.clock = clock if clock is not None else Clock()
        self.stats = stats if stats is not None else store.stats
        self.poll_interval_s = poll_interval_s
        if runner is None:
            runner = (InlineRunner() if self.jobs <= 1
                      else ProcessRunner())
        self.runner = runner
        self.telemetry_dir = telemetry_dir
        self.heartbeat_interval_s = heartbeat_interval_s
        self._stop_requests = 0
        self._checkpoints: List[Dict] = []

    # ------------------------------------------------------------------
    # stopping (SIGINT draining)
    # ------------------------------------------------------------------
    def request_stop(self) -> int:
        """Ask the campaign to stop: once drains, twice aborts."""
        self._stop_requests += 1
        return self._stop_requests

    def _install_sigint(self) -> SignalHandler:
        if threading.current_thread() is not threading.main_thread():
            return None

        def handler(signum: int, frame: Optional[FrameType]) -> None:
            count = self.request_stop()
            message = (
                "star-lab: draining in-flight cells "
                "(interrupt again to abort)..."
                if count == 1 else "star-lab: aborting in-flight cells"
            )
            print(message, flush=True)

        try:
            return signal.signal(signal.SIGINT, handler)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # journal (the resume checkpoint)
    # ------------------------------------------------------------------
    def _journal_path(self, cid: str) -> Path:
        return self.store.campaigns_path / (cid + ".json")

    def _write_journal(self, cid: str, name: str,
                       specs: List[RunSpec], status: str,
                       report: CampaignReport) -> None:
        write_journal(self.store, cid, name, specs, status, report,
                      self._checkpoints)

    def _load_checkpoints(self, cid: str) -> List[Dict]:
        """Prior checkpoints from an existing journal, so a resumed
        campaign's throughput history continues instead of resetting."""
        try:
            with open(self._journal_path(cid)) as handle:
                journal = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return []
        checkpoints = journal.get("checkpoints", [])
        if not isinstance(checkpoints, list):
            return []
        return [entry for entry in checkpoints
                if isinstance(entry, dict)]

    def _checkpoint(self, report: CampaignReport) -> None:
        """Append a (wall clock, cells stored) progress sample."""
        self._checkpoints.append({
            "wall_s": self.clock.wall(),
            "stored": report.resumed + report.completed,
        })

    # ------------------------------------------------------------------
    # live telemetry (the star-top feed)
    # ------------------------------------------------------------------
    def _parent_heartbeat(self) -> Optional["HeartbeatWriter"]:
        """The scheduler's own heartbeat writer (or ``None``)."""
        if self.telemetry_dir is None:
            return None
        from repro.obs.live import HeartbeatWriter

        return HeartbeatWriter(
            self.telemetry_dir, "scheduler", clock=self.clock,
            interval_s=self.heartbeat_interval_s, stats=self.stats,
        )

    def _start(self, spec: RunSpec, slot: int) -> JobHandle:
        """Launch one cell, passing worker telemetry when supported."""
        if (self.telemetry_dir is not None
                and getattr(self.runner, "supports_telemetry", False)):
            telemetry = (str(self.telemetry_dir), "w%d" % slot)
            return self.runner.start(spec, self.clock,
                                     telemetry=telemetry)
        return self.runner.start(spec, self.clock)

    # ------------------------------------------------------------------
    # the campaign loop
    # ------------------------------------------------------------------
    def run(self, specs: List[RunSpec], name: str = "campaign",
            max_cells: Optional[int] = None) -> CampaignReport:
        """Execute a campaign; skip stored cells; checkpoint progress.

        ``max_cells`` bounds how many cells this invocation *computes*
        (cached cells are free) — the controlled-interruption knob the
        kill/resume CI leg uses.
        """
        cid = campaign_id(specs)
        report = CampaignReport(campaign_id=cid, name=name,
                                total=len(specs))
        self.stats.add("lab.jobs.scheduled", len(specs))
        started_at = self.clock.now()
        self._checkpoints = self._load_checkpoints(cid)
        parent_beat = self._parent_heartbeat()

        provenance = {"git_rev": git_revision()}
        pending: List[_Job] = []
        for spec in specs:
            if self.store.get(spec) is not None:
                report.resumed += 1
                self.stats.add("lab.jobs.resumed")
            else:
                pending.append(_Job(spec))
        self._checkpoint(report)
        self._write_journal(cid, name, specs, "running", report)
        if parent_beat is not None:
            parent_beat.write(registry=self.stats.registry,
                              progress=report.summary(), force=True)

        running: List[Tuple[_Job, JobHandle, int]] = []
        free_slots = list(range(self.jobs - 1, -1, -1))
        launched = 0
        old_handler = self._install_sigint()
        try:
            while pending or running:
                progressed = False

                # launch up to the shard budget
                while (pending and len(running) < self.jobs
                       and self._stop_requests == 0
                       and (max_cells is None or launched < max_cells)):
                    job = self._next_eligible(pending)
                    if job is None:
                        break
                    pending.remove(job)
                    slot = free_slots.pop()
                    running.append(
                        (job, self._start(job.spec, slot), slot)
                    )
                    launched += 1
                    progressed = True

                # reap finished / overdue workers
                for job, handle, slot in list(running):
                    outcome = handle.poll()
                    now = self.clock.now()
                    if (outcome is None and self.timeout_s is not None
                            and now - handle.started > self.timeout_s):
                        handle.stop()
                        self.stats.add("lab.jobs.timeouts")
                        outcome = (
                            "error",
                            "timed out after %.1fs" % self.timeout_s,
                        )
                    if outcome is None:
                        continue
                    running.remove((job, handle, slot))
                    free_slots.append(slot)
                    progressed = True
                    status, value = outcome
                    if status == "ok":
                        self._commit(job, cast(Dict, value), provenance,
                                     now - handle.started, report)
                        self._checkpoint(report)
                        self._write_journal(cid, name, specs,
                                            "running", report)
                    else:
                        self._retry_or_fail(job, str(value), pending,
                                            report)

                if parent_beat is not None:
                    parent_beat.write(registry=self.stats.registry,
                                      progress=report.summary())
                if self._stop_requests >= 2:
                    for _job, handle, slot in running:
                        handle.stop()
                        free_slots.append(slot)
                    running.clear()
                if self._stop_requests >= 1 and not running:
                    break
                if (not running and pending
                        and max_cells is not None
                        and launched >= max_cells):
                    break
                if not progressed and (pending or running):
                    self.clock.sleep(self.poll_interval_s)
        finally:
            if old_handler is not None:
                signal.signal(signal.SIGINT, old_handler)

        report.interrupted = bool(pending)
        status = ("interrupted" if report.interrupted
                  else "failed" if report.failed else "complete")
        self._write_journal(cid, name, specs, status, report)
        self.stats.gauge_set(
            "lab.campaign.wall_s", self.clock.now() - started_at
        )
        if parent_beat is not None:
            parent_beat.write(registry=self.stats.registry,
                              progress=report.summary(), force=True)
        return report

    # ------------------------------------------------------------------
    def _next_eligible(self, pending: List[_Job]) -> Optional[_Job]:
        now = self.clock.now()
        for job in pending:
            if job.not_before <= now:
                return job
        return None

    def _commit(self, job: _Job, payload: Dict, provenance: Dict,
                elapsed_s: float, report: CampaignReport) -> None:
        spec_provenance = dict(provenance)
        spec_provenance["config_digest"] = _short_digest(
            job.spec.config
        )
        self.store.put(job.spec, payload, spec_provenance,
                       wall_time_s=elapsed_s)
        report.completed += 1
        self.stats.add("lab.jobs.completed")
        self.stats.observe("lab.job.wall_ms", elapsed_s * 1000.0)

    def _retry_or_fail(self, job: _Job, error: str,
                       pending: List[_Job],
                       report: CampaignReport) -> None:
        job.attempts += 1
        if job.attempts <= self.retries:
            self.stats.add("lab.jobs.retried")
            job.not_before = (
                self.clock.now() + self.backoff.delay(job.attempts)
            )
            pending.append(job)
            return
        report.failed += 1
        self.stats.add("lab.jobs.failed")
        report.failures.append({
            "spec_hash": job.spec.spec_hash,
            "label": job.spec.label,
            "attempts": job.attempts,
            "error": error.splitlines()[-1] if error else "unknown",
        })


def _short_digest(config_payload: Dict) -> str:
    encoded = canonical_json(config_payload).encode("ascii")
    return hashlib.sha256(encoded).hexdigest()[:16]


# ----------------------------------------------------------------------
# journal writer (shared with the farm coordinator)
# ----------------------------------------------------------------------
def write_journal(store: ResultStore, cid: str, name: str,
                  specs: List[RunSpec], status: str,
                  report: CampaignReport,
                  checkpoints: List[Dict]) -> None:
    """Atomically publish one campaign journal under the store.

    The journal is the single checkpoint format every progress reader
    (``star-lab status``/``resume``, ``star-top``) consumes, whether it
    was written by a local :class:`Scheduler` or by a farm
    :class:`~repro.lab.farm.Coordinator`.
    """
    payload = {
        "campaign_id": cid,
        "name": name,
        "status": status,
        "counts": report.summary(),
        "failures": report.failures,
        "checkpoints": checkpoints[-CHECKPOINT_LIMIT:],
        "git_rev": git_revision(),
        "specs": [spec.to_dict() for spec in specs],
    }
    path = store.campaigns_path / (cid + ".json")
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# journal readers (status / resume)
# ----------------------------------------------------------------------
def read_journals(store: ResultStore) -> List[Dict]:
    """Every campaign journal in the store, sorted by id."""
    journals = []
    for path in sorted(store.campaigns_path.glob("*.json")):
        try:
            with open(path) as handle:
                journal = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(journal, dict) and "campaign_id" in journal:
            journals.append(journal)
    return journals


def journal_specs(journal: Dict) -> List[RunSpec]:
    return [RunSpec.from_dict(entry)
            for entry in journal.get("specs", [])]


def find_journal(store: ResultStore, id_prefix: str
                 ) -> Optional[Dict]:
    matches = [
        journal for journal in read_journals(store)
        if journal["campaign_id"].startswith(id_prefix)
    ]
    return matches[0] if len(matches) == 1 else None


def checkpoint_rates(journal: Dict, now_wall: Optional[float] = None,
                     stale_after_s: float = 30.0
                     ) -> Tuple[Optional[float], Optional[float], bool]:
    """Derive (throughput cells/s, ETA seconds, stale?) from a
    journal's checkpoint history.

    Throughput comes from the first-to-last checkpoint delta (cells
    stored per wall second). ETA extrapolates the remaining cell count
    at that rate. ``stale`` is true for a *running* campaign whose last
    checkpoint is older than ``stale_after_s`` — the scheduler
    checkpoints after every commit, so silence means the process died
    or hung. Either rate is ``None`` when the history can't support it
    (fewer than two checkpoints, or no forward progress yet).
    """
    checkpoints = [
        entry for entry in journal.get("checkpoints", [])
        if isinstance(entry, dict)
        and "wall_s" in entry and "stored" in entry
    ]
    stale = False
    if (now_wall is not None and checkpoints
            and journal.get("status") == "running"):
        age = now_wall - float(checkpoints[-1]["wall_s"])
        stale = age > stale_after_s
    if len(checkpoints) < 2:
        return None, None, stale
    first, last = checkpoints[0], checkpoints[-1]
    elapsed = float(last["wall_s"]) - float(first["wall_s"])
    stored = int(last["stored"]) - int(first["stored"])
    if elapsed <= 0 or stored <= 0:
        return None, None, stale
    throughput = stored / elapsed
    counts = journal.get("counts", {})
    remaining = counts.get("remaining")
    eta = None
    if isinstance(remaining, int) and remaining >= 0:
        eta = remaining / throughput
    return throughput, eta, stale
