"""``star-lab``: persistent experiment campaigns over a result store.

Examples::

    # run the Table II sweep into a store, 4 worker shards
    star-lab run --grid table2 --store .starlab --jobs 4

    # a campaign killed mid-run (Ctrl-C, timeout, crash) resumes
    # exactly where it stopped — stored cells are never recomputed
    star-lab resume --grid table2 --store .starlab

    # inspect campaigns / export the deterministic result set
    star-lab status --store .starlab
    star-lab export --store .starlab -o results.json

    # drop cells no longer referenced by the given grids
    star-lab gc --store .starlab --grid table2 --grid fig14b

Exit codes: 0 campaign complete, 1 cells failed permanently,
3 campaign interrupted (resume to continue).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.tables import ExperimentTable, render_table
from repro.errors import ReproError
from repro.lab import gridfile
from repro.lab.clock import Clock
from repro.lab.scheduler import (
    CampaignReport,
    Scheduler,
    checkpoint_rates,
    find_journal,
    journal_specs,
    read_journals,
)
from repro.lab.spec import RunSpec
from repro.lab.store import ResultStore
from repro.util.stats import Stats

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_INTERRUPTED = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-lab",
        description="Persistent, resumable experiment campaigns over "
                    "a content-addressed result store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_store(sub):
        sub.add_argument("--store", default=".starlab",
                         help="store root (default: .starlab)")

    run = commands.add_parser(
        "run", help="run a grid campaign (cached cells are skipped)"
    )
    add_store(run)
    run.add_argument("--grid", action="append", required=True,
                     metavar="NAME|PATH",
                     help="built-in grid name (%s) or grid JSON path; "
                          "repeatable"
                          % ", ".join(sorted(gridfile.BUILTIN_GRIDS)))
    run.add_argument("--jobs", type=int, default=1,
                     help="worker shards (spawn processes when > 1)")
    run.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell timeout (needs --jobs > 1)")
    run.add_argument("--retries", type=int, default=2,
                     help="retry budget per cell (default 2)")
    run.add_argument("--backoff", type=float, default=0.5,
                     metavar="SECONDS",
                     help="retry backoff base (linear; default 0.5)")
    run.add_argument("--max-cells", type=int, default=None,
                     help="compute at most N cells this invocation "
                          "(controlled interruption; resume later)")
    _add_telemetry(run)
    run.add_argument("--quiet", action="store_true")

    status = commands.add_parser(
        "status", help="show campaign checkpoints against the store"
    )
    add_store(status)
    status.add_argument("--stale-after", type=float, default=30.0,
                        metavar="SECONDS",
                        help="flag running campaigns whose last "
                             "checkpoint is older than this "
                             "(default 30)")

    resume = commands.add_parser(
        "resume", help="continue an interrupted campaign"
    )
    add_store(resume)
    resume.add_argument("--grid", action="append", default=None,
                        metavar="NAME|PATH",
                        help="re-expand these grids instead of reading "
                             "a campaign journal")
    resume.add_argument("--campaign", default=None, metavar="IDPREFIX",
                        help="journal to resume (unique id prefix); "
                             "default: the only unfinished campaign")
    resume.add_argument("--jobs", type=int, default=1)
    resume.add_argument("--timeout", type=float, default=None)
    resume.add_argument("--retries", type=int, default=2)
    resume.add_argument("--backoff", type=float, default=0.5)
    resume.add_argument("--max-cells", type=int, default=None)
    _add_telemetry(resume)
    resume.add_argument("--quiet", action="store_true")

    export = commands.add_parser(
        "export", help="deterministic JSON dump of stored results"
    )
    add_store(export)
    export.add_argument("--grid", action="append", default=None,
                        help="restrict to these grids' cells")
    export.add_argument("--hash-prefix", default="",
                        help="restrict to spec hashes with this prefix")
    export.add_argument("-o", "--output", default=None,
                        help="output path (default: stdout)")

    gc = commands.add_parser(
        "gc", help="drop unreferenced cells, orphan blobs, temp files"
    )
    add_store(gc)
    gc.add_argument("--grid", action="append", default=None,
                    help="grids whose cells to KEEP; everything else "
                         "is dropped (omit to only clean orphans)")
    gc.add_argument("--purge-quarantine", action="store_true",
                    help="also delete quarantined corrupt files")
    return parser


def _add_telemetry(sub) -> None:
    sub.add_argument("--telemetry", nargs="?", metavar="DIR",
                     const="auto", default=None,
                     help="publish live heartbeat/metric snapshots for "
                          "star-top; DIR defaults to <store>/telemetry")
    sub.add_argument("--heartbeat-interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="min seconds between scheduler heartbeats "
                          "(default 1.0)")


# ----------------------------------------------------------------------
# run / resume
# ----------------------------------------------------------------------
def _report_table(report: CampaignReport,
                  stats: Stats) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="star-lab",
        title="campaign %s (%s)" % (report.campaign_id, report.name),
        columns=["cells", "resumed", "computed", "failed",
                 "remaining", "store_hits", "store_misses"],
    )
    table.add_row(
        cells=report.total,
        resumed=report.resumed,
        computed=report.completed,
        failed=report.failed,
        remaining=report.remaining,
        store_hits=stats.get("lab.store.hits"),
        store_misses=stats.get("lab.store.misses"),
    )
    if report.interrupted:
        table.notes.append(
            "campaign interrupted: %d cells remain; run star-lab "
            "resume to continue" % report.remaining
        )
    for failure in report.failures:
        table.notes.append(
            "FAILED %s (%s, %d attempts): %s"
            % (failure["spec_hash"][:12], failure["label"],
               failure["attempts"], failure["error"])
        )
    return table


def _run_specs(args, specs: List[RunSpec], name: str) -> int:
    stats = Stats(enabled=True)
    store = ResultStore(args.store, stats=stats)
    telemetry_dir = None
    if getattr(args, "telemetry", None) is not None:
        telemetry_dir = (Path(args.store) / "telemetry"
                         if args.telemetry == "auto"
                         else Path(args.telemetry))
    scheduler = Scheduler(
        store, jobs=args.jobs, timeout_s=args.timeout,
        retries=args.retries, backoff_s=args.backoff, stats=stats,
        telemetry_dir=telemetry_dir,
        heartbeat_interval_s=getattr(args, "heartbeat_interval", 1.0),
    )
    report = scheduler.run(specs, name=name,
                           max_cells=args.max_cells)
    if not args.quiet:
        print(render_table(_report_table(report, stats)))
    if report.failed:
        return EXIT_FAILURES
    if report.interrupted:
        return EXIT_INTERRUPTED
    return EXIT_OK


def _cmd_run(args) -> int:
    specs = gridfile.resolve_specs(args.grid)
    name = "+".join(
        gridfile.load_grid(grid).get("name", str(grid))
        for grid in args.grid
    )
    return _run_specs(args, specs, name)


def _cmd_resume(args) -> int:
    if args.grid:
        return _cmd_run(args)
    store = ResultStore(args.store)
    if args.campaign:
        journal = find_journal(store, args.campaign)
        if journal is None:
            print("no unique campaign matches %r" % args.campaign,
                  file=sys.stderr)
            return 2
    else:
        unfinished = [
            journal for journal in read_journals(store)
            if journal.get("status") != "complete"
        ]
        if len(unfinished) != 1:
            print("found %d unfinished campaigns; pass --campaign or "
                  "--grid" % len(unfinished), file=sys.stderr)
            return 2
        journal = unfinished[0]
    store.close()
    specs = journal_specs(journal)
    return _run_specs(args, specs, journal.get("name", "campaign"))


# ----------------------------------------------------------------------
# status / export / gc
# ----------------------------------------------------------------------
def _cmd_status(args) -> int:
    store = ResultStore(args.store)
    table = ExperimentTable(
        experiment_id="star-lab",
        title="campaigns in %s (%d stored cells)"
              % (args.store, len(store)),
        columns=["campaign", "name", "status", "cells", "stored",
                 "failed", "rate", "eta"],
    )
    now_wall = Clock().wall()
    stale_seen = False
    for journal in read_journals(store):
        specs = journal_specs(journal)
        stored = sum(1 for spec in specs if spec in store)
        counts = journal.get("counts", {})
        throughput, eta, stale = checkpoint_rates(
            journal, now_wall=now_wall,
            stale_after_s=getattr(args, "stale_after", 30.0),
        )
        stale_seen = stale_seen or stale
        status = journal.get("status", "?")
        table.add_row(
            campaign=journal["campaign_id"],
            name=journal.get("name", "?"),
            status=status + " (stale)" if stale else status,
            cells=len(specs),
            stored=stored,
            failed=counts.get("failed", 0),
            rate=("%.2f/s" % throughput) if throughput else "-",
            eta=("%.0fs" % eta) if eta is not None else "-",
        )
    if stale_seen:
        table.notes.append(
            "(stale): running campaign with no checkpoint for more "
            "than %.0fs — scheduler likely dead; star-lab resume "
            "continues it" % getattr(args, "stale_after", 30.0)
        )
    print(render_table(table))
    return EXIT_OK


def _export_payload(store: ResultStore,
                    grids: Optional[List[str]],
                    hash_prefix: str) -> List[Dict]:
    spec_hashes = None
    if grids:
        spec_hashes = [
            spec.spec_hash for spec in gridfile.resolve_specs(grids)
        ]
    return store.export(spec_hashes=spec_hashes, prefix=hash_prefix)


def _cmd_export(args) -> int:
    store = ResultStore(args.store)
    entries = _export_payload(store, args.grid, args.hash_prefix)
    text = json.dumps(entries, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %d records to %s" % (len(entries), args.output))
    else:
        sys.stdout.write(text)
    return EXIT_OK


def _cmd_gc(args) -> int:
    store = ResultStore(args.store)
    keep = None
    if args.grid:
        keep = [
            spec.spec_hash for spec in gridfile.resolve_specs(args.grid)
        ]
    removed = store.gc(keep_hashes=keep,
                       purge_quarantine=args.purge_quarantine)
    print("gc: dropped %(records)d records, %(orphan_blobs)d orphan "
          "blobs, %(quarantined)d quarantined files" % removed)
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "status": _cmd_status,
        "export": _cmd_export,
        "gc": _cmd_gc,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print("star-lab: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
