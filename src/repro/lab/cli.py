"""``star-lab``: persistent experiment campaigns over a result store.

Examples::

    # run the Table II sweep into a store, 4 worker shards
    star-lab run --grid table2 --store .starlab --jobs 4

    # a campaign killed mid-run (Ctrl-C, timeout, crash) resumes
    # exactly where it stopped — stored cells are never recomputed
    star-lab resume --grid table2 --store .starlab

    # inspect campaigns / export the deterministic result set
    star-lab status --store .starlab
    star-lab export --store .starlab -o results.json

    # drop cells no longer referenced by the given grids
    star-lab gc --store .starlab --grid table2 --grid fig14b

    # distributed farm: a coordinator seeds the lease board and
    # merges worker stores; any number of work-stealing worker
    # pools (same host or a shared filesystem) chew through it
    star-lab serve --grid table2 --store .starlab --farm .starlab/farm
    star-lab work --farm .starlab/farm --jobs 4      # repeat per host
    star-lab merge --store .starlab --farm .starlab/farm

    # multi-host fleet: serve the lease board over HTTP; workers
    # need no shared filesystem — results ship back over the wire
    star-lab serve --grid table2 --store .starlab \
        --farm .starlab/farm --http 0.0.0.0:9433
    star-lab work --coordinator http://coord:9433 --jobs 4

Exit codes: 0 campaign complete, 1 cells failed permanently,
3 campaign interrupted (resume / re-serve to continue).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.tables import ExperimentTable, render_table
from repro.errors import ConfigError, ReproError
from repro.lab import gridfile
from repro.lab.clock import BACKOFF_POLICIES, BackoffPolicy, Clock
from repro.lab.farm import Coordinator, Worker, board_path
from repro.lab.lease import LeaseBoard
from repro.lab.net.server import LeaseServer
from repro.lab.scheduler import (
    CampaignReport,
    Scheduler,
    checkpoint_rates,
    find_journal,
    journal_specs,
    read_journals,
)
from repro.lab.spec import RunSpec
from repro.lab.store import ResultStore
from repro.util.stats import Stats

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_INTERRUPTED = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-lab",
        description="Persistent, resumable experiment campaigns over "
                    "a content-addressed result store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_store(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--store", default=".starlab",
                         help="store root (default: .starlab)")

    run = commands.add_parser(
        "run", help="run a grid campaign (cached cells are skipped)"
    )
    add_store(run)
    run.add_argument("--grid", action="append", required=True,
                     metavar="NAME|PATH",
                     help="built-in grid name (%s) or grid JSON path; "
                          "repeatable"
                          % ", ".join(sorted(gridfile.BUILTIN_GRIDS)))
    run.add_argument("--jobs", type=int, default=1,
                     help="worker shards (spawn processes when > 1)")
    run.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell timeout (needs --jobs > 1)")
    run.add_argument("--retries", type=int, default=2,
                     help="retry budget per cell (default 2)")
    _add_backoff(run)
    run.add_argument("--max-cells", type=int, default=None,
                     help="compute at most N cells this invocation "
                          "(controlled interruption; resume later)")
    _add_telemetry(run)
    run.add_argument("--quiet", action="store_true")

    status = commands.add_parser(
        "status", help="show campaign checkpoints against the store"
    )
    add_store(status)
    status.add_argument("--stale-after", type=float, default=30.0,
                        metavar="SECONDS",
                        help="flag running campaigns whose last "
                             "checkpoint is older than this "
                             "(default 30)")

    resume = commands.add_parser(
        "resume", help="continue an interrupted campaign"
    )
    add_store(resume)
    resume.add_argument("--grid", action="append", default=None,
                        metavar="NAME|PATH",
                        help="re-expand these grids instead of reading "
                             "a campaign journal")
    resume.add_argument("--campaign", default=None, metavar="IDPREFIX",
                        help="journal to resume (unique id prefix); "
                             "default: the only unfinished campaign")
    resume.add_argument("--jobs", type=int, default=1)
    resume.add_argument("--timeout", type=float, default=None)
    resume.add_argument("--retries", type=int, default=2)
    _add_backoff(resume)
    resume.add_argument("--max-cells", type=int, default=None)
    _add_telemetry(resume)
    resume.add_argument("--quiet", action="store_true")

    export = commands.add_parser(
        "export", help="deterministic JSON dump of stored results"
    )
    add_store(export)
    export.add_argument("--grid", action="append", default=None,
                        help="restrict to these grids' cells")
    export.add_argument("--hash-prefix", default="",
                        help="restrict to spec hashes with this prefix")
    export.add_argument("-o", "--output", default=None,
                        help="output path (default: stdout)")

    gc = commands.add_parser(
        "gc", help="drop unreferenced cells, orphan blobs, temp files"
    )
    add_store(gc)
    gc.add_argument("--grid", action="append", default=None,
                    help="grids whose cells to KEEP; everything else "
                         "is dropped (omit to only clean orphans)")
    gc.add_argument("--purge-quarantine", action="store_true",
                    help="also delete quarantined corrupt files")

    serve = commands.add_parser(
        "serve", help="coordinate a farm campaign: seed the lease "
                      "board, watch workers, merge their stores"
    )
    add_store(serve)
    serve.add_argument("--grid", action="append", required=True,
                       metavar="NAME|PATH",
                       help="grids to expand onto the lease board; "
                            "repeatable")
    serve.add_argument("--farm", default=None, metavar="DIR",
                       help="shared farm directory "
                            "(default: <store>/farm)")
    serve.add_argument("--lease", type=float, default=60.0,
                       metavar="SECONDS",
                       help="lease duration workers must renew within "
                            "(default 60)")
    serve.add_argument("--poll", type=float, default=0.5,
                       metavar="SECONDS",
                       help="board poll interval (default 0.5)")
    serve.add_argument("--max-wall", type=float, default=None,
                       metavar="SECONDS",
                       help="stop serving after this long (campaign "
                            "stays resumable; re-serve to continue)")
    serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                       metavar="SECONDS")
    serve.add_argument("--http", default=None, metavar="HOST:PORT",
                       help="also serve the lease board over HTTP so "
                            "workers on other hosts can join with "
                            "--coordinator (port 0 = ephemeral)")
    serve.add_argument("--quiet", action="store_true")

    work = commands.add_parser(
        "work", help="run one work-stealing worker pool against a "
                     "farm directory or an HTTP coordinator"
    )
    work.add_argument("--farm", default=None, metavar="DIR",
                      help="the coordinator's shared farm directory "
                           "(filesystem transport)")
    work.add_argument("--coordinator", default=None, metavar="URL",
                      help="the coordinator's lease URL from star-lab "
                           "serve --http (no shared filesystem "
                           "needed); results upload over the wire")
    work.add_argument("--workdir", default=None, metavar="DIR",
                      help="with --coordinator: local scratch root "
                           "for this pool's store and telemetry "
                           "(default: .starlab-work/<id>)")
    work.add_argument("--net-timeout", type=float, default=10.0,
                      metavar="SECONDS",
                      help="per-request HTTP timeout (default 10)")
    work.add_argument("--net-retries", type=int, default=5,
                      help="HTTP retry budget per request (default 5)")
    work.add_argument("--id", default=None, metavar="NAME",
                      help="worker id (default: w<pid>; must be "
                           "unique per farm)")
    work.add_argument("--jobs", type=int, default=1,
                      help="execution shards within this pool")
    work.add_argument("--batch", type=int, default=None,
                      help="leases claimed per round (default: --jobs)")
    work.add_argument("--timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="per-cell timeout (needs --jobs > 1)")
    work.add_argument("--retries", type=int, default=2,
                      help="in-pool retry budget per cell (default 2)")
    _add_backoff(work)
    work.add_argument("--lease", type=float, default=60.0,
                      metavar="SECONDS",
                      help="lease duration to claim for (default 60; "
                           "must cover a cell + renewal slack)")
    work.add_argument("--max-attempts", type=int, default=3,
                      help="cross-worker attempts before a cell is "
                           "failed terminally (default 3)")
    work.add_argument("--poll", type=float, default=0.2,
                      metavar="SECONDS",
                      help="idle claim poll floor (default 0.2)")
    work.add_argument("--wait", type=float, default=30.0,
                      metavar="SECONDS",
                      help="how long to wait for the lease board to "
                           "appear (default 30)")
    work.add_argument("--heartbeat-interval", type=float, default=1.0,
                      metavar="SECONDS")
    work.add_argument("--quiet", action="store_true")

    merge = commands.add_parser(
        "merge", help="import a farm's worker stores into the "
                      "authoritative store (no serving)"
    )
    add_store(merge)
    merge.add_argument("--farm", default=None, metavar="DIR",
                       help="farm directory (default: <store>/farm)")
    return parser


def _add_backoff(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--backoff", type=float, default=0.5,
                     metavar="SECONDS",
                     help="retry backoff base (default 0.5)")
    sub.add_argument("--backoff-policy", choices=BACKOFF_POLICIES,
                     default="linear",
                     help="retry delay schedule: linear waits "
                          "base*attempt, exponential doubles from "
                          "base (default linear)")
    sub.add_argument("--backoff-cap", type=float, default=30.0,
                     metavar="SECONDS",
                     help="ceiling on any single retry delay "
                          "(default 30)")


def _backoff_policy(args: argparse.Namespace) -> BackoffPolicy:
    return BackoffPolicy(
        getattr(args, "backoff_policy", "linear"),
        base_s=getattr(args, "backoff", 0.5),
        cap_s=getattr(args, "backoff_cap", 30.0),
    )


def _add_telemetry(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--telemetry", nargs="?", metavar="DIR",
                     const="auto", default=None,
                     help="publish live heartbeat/metric snapshots for "
                          "star-top; DIR defaults to <store>/telemetry")
    sub.add_argument("--heartbeat-interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="min seconds between scheduler heartbeats "
                          "(default 1.0)")


# ----------------------------------------------------------------------
# run / resume
# ----------------------------------------------------------------------
def _report_table(report: CampaignReport,
                  stats: Stats) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="star-lab",
        title="campaign %s (%s)" % (report.campaign_id, report.name),
        columns=["cells", "resumed", "computed", "failed",
                 "remaining", "store_hits", "store_misses"],
    )
    table.add_row(
        cells=report.total,
        resumed=report.resumed,
        computed=report.completed,
        failed=report.failed,
        remaining=report.remaining,
        store_hits=stats.get("lab.store.hits"),
        store_misses=stats.get("lab.store.misses"),
    )
    if report.interrupted:
        table.notes.append(
            "campaign interrupted: %d cells remain; run star-lab "
            "resume to continue" % report.remaining
        )
    for failure in report.failures:
        table.notes.append(
            "FAILED %s (%s, %d attempts): %s"
            % (failure["spec_hash"][:12], failure["label"],
               failure["attempts"], failure["error"])
        )
    return table


def _run_specs(args: argparse.Namespace, specs: List[RunSpec],
               name: str) -> int:
    stats = Stats(enabled=True)
    store = ResultStore(args.store, stats=stats)
    telemetry_dir = None
    if getattr(args, "telemetry", None) is not None:
        telemetry_dir = (Path(args.store) / "telemetry"
                         if args.telemetry == "auto"
                         else Path(args.telemetry))
    scheduler = Scheduler(
        store, jobs=args.jobs, timeout_s=args.timeout,
        retries=args.retries, backoff=_backoff_policy(args),
        stats=stats, telemetry_dir=telemetry_dir,
        heartbeat_interval_s=getattr(args, "heartbeat_interval", 1.0),
    )
    report = scheduler.run(specs, name=name,
                           max_cells=args.max_cells)
    if not args.quiet:
        print(render_table(_report_table(report, stats)))
    if report.failed:
        return EXIT_FAILURES
    if report.interrupted:
        return EXIT_INTERRUPTED
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    specs = gridfile.resolve_specs(args.grid)
    name = "+".join(
        gridfile.load_grid(grid).get("name", str(grid))
        for grid in args.grid
    )
    return _run_specs(args, specs, name)


def _cmd_resume(args: argparse.Namespace) -> int:
    if args.grid:
        return _cmd_run(args)
    store = ResultStore(args.store)
    if args.campaign:
        journal = find_journal(store, args.campaign)
        if journal is None:
            print("no unique campaign matches %r" % args.campaign,
                  file=sys.stderr)
            return 2
    else:
        unfinished = [
            journal for journal in read_journals(store)
            if journal.get("status") != "complete"
        ]
        if len(unfinished) != 1:
            print("found %d unfinished campaigns; pass --campaign or "
                  "--grid" % len(unfinished), file=sys.stderr)
            return 2
        journal = unfinished[0]
    store.close()
    specs = journal_specs(journal)
    return _run_specs(args, specs, journal.get("name", "campaign"))


# ----------------------------------------------------------------------
# status / export / gc
# ----------------------------------------------------------------------
def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    table = ExperimentTable(
        experiment_id="star-lab",
        title="campaigns in %s (%d stored cells)"
              % (args.store, len(store)),
        columns=["campaign", "name", "status", "cells", "stored",
                 "failed", "rate", "eta"],
    )
    now_wall = Clock().wall()
    stale_seen = False
    for journal in read_journals(store):
        specs = journal_specs(journal)
        stored = sum(1 for spec in specs if spec in store)
        counts = journal.get("counts", {})
        throughput, eta, stale = checkpoint_rates(
            journal, now_wall=now_wall,
            stale_after_s=getattr(args, "stale_after", 30.0),
        )
        stale_seen = stale_seen or stale
        status = journal.get("status", "?")
        table.add_row(
            campaign=journal["campaign_id"],
            name=journal.get("name", "?"),
            status=status + " (stale)" if stale else status,
            cells=len(specs),
            stored=stored,
            failed=counts.get("failed", 0),
            rate=("%.2f/s" % throughput) if throughput else "-",
            eta=("%.0fs" % eta) if eta is not None else "-",
        )
    if stale_seen:
        table.notes.append(
            "(stale): running campaign with no checkpoint for more "
            "than %.0fs — scheduler likely dead; star-lab resume "
            "continues it" % getattr(args, "stale_after", 30.0)
        )
    print(render_table(table))
    return EXIT_OK


def _export_payload(store: ResultStore,
                    grids: Optional[List[str]],
                    hash_prefix: str) -> List[Dict]:
    spec_hashes = None
    if grids:
        spec_hashes = [
            spec.spec_hash for spec in gridfile.resolve_specs(grids)
        ]
    return store.export(spec_hashes=spec_hashes, prefix=hash_prefix)


def _cmd_export(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    entries = _export_payload(store, args.grid, args.hash_prefix)
    text = json.dumps(entries, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %d records to %s" % (len(entries), args.output))
    else:
        sys.stdout.write(text)
    return EXIT_OK


def _cmd_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    keep = None
    if args.grid:
        keep = [
            spec.spec_hash for spec in gridfile.resolve_specs(args.grid)
        ]
    removed = store.gc(keep_hashes=keep,
                       purge_quarantine=args.purge_quarantine)
    print("gc: dropped %(records)d records, %(orphan_blobs)d orphan "
          "blobs, %(quarantined)d quarantined files" % removed)
    return EXIT_OK


# ----------------------------------------------------------------------
# farm: serve / work / merge
# ----------------------------------------------------------------------
def _farm_dir(args: argparse.Namespace) -> Path:
    if getattr(args, "farm", None):
        return Path(args.farm)
    return Path(args.store) / "farm"


def _parse_hostport(value: str) -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ConfigError(
            "--http wants HOST:PORT (e.g. 0.0.0.0:9433), got %r"
            % value
        )
    return (host or "0.0.0.0", int(port))


def _cmd_serve(args: argparse.Namespace) -> int:
    specs = gridfile.resolve_specs(args.grid)
    name = "+".join(
        gridfile.load_grid(grid).get("name", str(grid))
        for grid in args.grid
    )
    stats = Stats(enabled=True)
    store = ResultStore(args.store, stats=stats)
    farm = _farm_dir(args)
    server = None
    server_board = None
    transport_meta = None
    if args.http:
        host, port = _parse_hostport(args.http)
        # the server gets its own connections (board opened
        # cross-thread, store on the same root); the coordinator's
        # poll loop keeps its own — BEGIN IMMEDIATE + busy timeouts
        # arbitrate, exactly as they do between farm processes
        server_board = LeaseBoard(board_path(farm), cross_thread=True)
        server = LeaseServer(
            server_board,
            ResultStore(args.store, stats=stats, cross_thread=True),
            host=host, port=port, stats=stats,
        ).start()
        transport_meta = {"kind": "http", "url": server.url}
        if not args.quiet:
            print("star-lab serve: lease transport on %s" % server.url)
    coordinator = Coordinator(
        store, farm, stats=stats, lease_s=args.lease,
        poll_interval_s=args.poll,
        heartbeat_interval_s=args.heartbeat_interval,
        transport_meta=transport_meta,
    )
    try:
        report = coordinator.run(specs, name=name,
                                 max_wall_s=args.max_wall)
    finally:
        coordinator.close()
        if server is not None:
            server.shutdown()
        if server_board is not None:
            server_board.close()
    if not args.quiet:
        print(render_table(_report_table(report, stats)))
    if report.failed:
        return EXIT_FAILURES
    if report.interrupted:
        return EXIT_INTERRUPTED
    return EXIT_OK


def _cmd_work(args: argparse.Namespace) -> int:
    worker_id = args.id if args.id else "w%d" % os.getpid()
    if args.coordinator:
        # HTTP mode: the "farm dir" is a private local workdir — the
        # pool's store and telemetry land there, nothing is shared
        base = (Path(args.workdir) if args.workdir
                else Path(".starlab-work") / worker_id)
    elif args.farm:
        base = Path(args.farm)
    else:
        print("star-lab work: pass --farm DIR (shared filesystem) or "
              "--coordinator URL (HTTP)", file=sys.stderr)
        return 2
    worker = Worker(
        base, worker_id, jobs=args.jobs, batch=args.batch,
        lease_s=args.lease, timeout_s=args.timeout,
        retries=args.retries, backoff=_backoff_policy(args),
        max_attempts=args.max_attempts, poll_interval_s=args.poll,
        heartbeat_interval_s=args.heartbeat_interval,
        wait_s=args.wait,
        coordinator=args.coordinator,
        net_timeout_s=args.net_timeout,
        net_retries=args.net_retries,
    )
    summary = worker.run()
    if not args.quiet:
        print("star-lab work %(worker)s: %(done)d done, "
              "%(failed)d failed, %(stolen)d stolen over "
              "%(batches)d batches" % summary)
    return EXIT_FAILURES if summary["failed"] else EXIT_OK


def _cmd_merge(args: argparse.Namespace) -> int:
    stats = Stats(enabled=True)
    store = ResultStore(args.store, stats=stats)
    coordinator = Coordinator(store, _farm_dir(args), stats=stats)
    try:
        merged = coordinator.merge()
    finally:
        coordinator.close()
    print("merged %d new records into %s" % (merged, args.store))
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "status": _cmd_status,
        "export": _cmd_export,
        "gc": _cmd_gc,
        "serve": _cmd_serve,
        "work": _cmd_work,
        "merge": _cmd_merge,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print("star-lab: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
