"""``repro.lab.net``: the HTTP lease transport for farm campaigns.

The PR-7 farm coordinates workers through a SQLite lease board, which
confines a fleet to hosts sharing a filesystem. This package lifts the
worker-facing half of the board onto HTTP so a campaign can span
machines: the coordinator keeps the board local (single source of
truth — fencing and steal semantics are *inherited*, not
reimplemented) and serves the lease verbs as JSON; workers talk to it
through a retrying client and ship computed results back as gzip
export payloads.

* :mod:`repro.lab.net.transport` — the :class:`LeaseTransport`
  protocol both the SQLite board and the HTTP client satisfy, plus
  the wire (de)hydration helpers.
* :mod:`repro.lab.net.server` — :class:`LeaseServer`, the
  coordinator-side ``ThreadingHTTPServer`` over a local board and
  store.
* :mod:`repro.lab.net.client` — :class:`HttpLeaseClient`, the
  worker-side transport with per-request timeouts and
  :class:`~repro.lab.clock.BackoffPolicy` retries.
* :mod:`repro.lab.net.flaky` — an in-process fault-injecting proxy
  (drop / delay / duplicate / truncate) for transport tests.
"""

from repro.lab.net.client import HttpLeaseClient
from repro.lab.net.server import LeaseServer
from repro.lab.net.transport import LeaseTransport, TransportError

__all__ = [
    "HttpLeaseClient",
    "LeaseServer",
    "LeaseTransport",
    "TransportError",
]
