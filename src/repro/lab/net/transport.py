"""The lease transport seam: one protocol, two implementations.

:class:`~repro.lab.lease.LeaseBoard` (SQLite on a shared filesystem)
and :class:`~repro.lab.net.client.HttpLeaseClient` (JSON verbs against
a coordinator) both satisfy :class:`LeaseTransport` structurally, so
:class:`~repro.lab.farm.Worker` runs unchanged over either. The
protocol is deliberately the *worker-facing* surface only — seeding,
settling and requeueing stay coordinator-side, where the board is
always local.

The wire helpers here define the one serialization both ends share:
a :class:`~repro.lab.lease.Lease` travels as its spec dict plus the
fencing credentials, and a :class:`~repro.lab.clock.BackoffPolicy`
as its three fields. Keeping (de)hydration in one module means a
wire-format change cannot drift between client and server.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.errors import ReproError
from repro.lab.clock import BackoffPolicy
from repro.lab.lease import Lease
from repro.lab.spec import RunSpec


class TransportError(ReproError):
    """The lease transport failed permanently.

    Raised only after the client's retry budget is spent (connection
    refused, timeouts, truncated responses) or on a definitive server
    rejection (HTTP 4xx) — *stale-fence* outcomes are not errors; they
    come back as the verb's normal return value, exactly as the SQLite
    board reports them.
    """


class LeaseTransport(Protocol):
    """What a farm worker needs from a lease board, wherever it lives.

    The SQLite :class:`~repro.lab.lease.LeaseBoard` satisfies this
    directly; :class:`~repro.lab.net.client.HttpLeaseClient` satisfies
    it over the wire. Verb semantics (fencing, steal detection, backoff
    requeue) are defined once by the board — a transport only moves the
    arguments and results.
    """

    def claim(self, owner: str, lease_s: float,
              limit: int = 1) -> List[Lease]:
        ...

    def renew(self, owner: str, spec_hash: str, fence: int,
              lease_s: float) -> bool:
        ...

    def complete(self, owner: str, spec_hash: str, fence: int) -> bool:
        ...

    def fail(self, owner: str, spec_hash: str, fence: int, error: str,
             max_attempts: int = 3,
             backoff: Optional[BackoffPolicy] = None) -> str:
        ...

    def counts(self) -> Dict[str, int]:
        ...

    def finished(self) -> bool:
        ...

    def failures(self) -> List[Dict]:
        ...

    def close(self) -> None:
        ...


# ----------------------------------------------------------------------
# wire (de)hydration
# ----------------------------------------------------------------------
def lease_to_wire(lease: Lease) -> Dict:
    """A lease as JSON-ready data: spec dict + fencing credentials."""
    return {
        "spec": lease.spec.to_dict(),
        "fence": lease.fence,
        "deadline": lease.deadline,
        "stolen": lease.stolen,
        "attempts": lease.attempts,
    }


def lease_from_wire(payload: Dict) -> Lease:
    return Lease(
        spec=RunSpec.from_dict(payload["spec"]),
        fence=int(payload["fence"]),
        deadline=float(payload["deadline"]),
        stolen=bool(payload.get("stolen", False)),
        attempts=int(payload.get("attempts", 0)),
    )


def backoff_to_wire(policy: Optional[BackoffPolicy]) -> Optional[Dict]:
    if policy is None:
        return None
    return {
        "policy": policy.policy,
        "base_s": policy.base_s,
        "cap_s": policy.cap_s,
    }


def backoff_from_wire(payload: Optional[Dict]
                      ) -> Optional[BackoffPolicy]:
    if payload is None:
        return None
    return BackoffPolicy(
        policy=str(payload["policy"]),
        base_s=float(payload["base_s"]),
        cap_s=float(payload["cap_s"]),
    )
