"""``LeaseServer``: the coordinator-side HTTP face of a lease board.

The board (and the authoritative result store) stays local to the
coordinator host; this server only *exposes* it. Every verb executes
against the SQLite board through the exact same methods the
filesystem farm uses, so fence-checked idempotency and steal
semantics are inherited — the server adds no coordination logic of
its own. One consequence is free retry safety:

* a duplicated ``claim`` just claims whatever is claimable *now* (a
  lost response means the first claim's leases quietly expire and are
  reclaimed — by the same owner that is no steal);
* a duplicated ``complete`` is detected by reading the row back: the
  first delivery already landed it in ``done`` under the same owner
  and fence, so the retry is acknowledged as a no-op instead of being
  rejected as stale;
* a genuinely stale verb (the cell was stolen) is rejected exactly as
  the board rejects it locally.

Results travel the other way as gzip ``PUT /results`` uploads of
:meth:`~repro.lab.store.ResultStore.export` payloads, ingested into
the authoritative store through
:meth:`~repro.lab.store.ResultStore.import_from` — the same merge
path a shared-filesystem farm uses, so merged exports stay
byte-identical to serial runs.

Threading: ``ThreadingHTTPServer`` hands each request its own thread,
but the board is one SQLite connection (opened ``cross_thread``) and
the store one index connection — a single lock serializes verb and
upload execution. Verbs are milliseconds against a local board, so
serialization is not the bottleneck; the network is.
"""

from __future__ import annotations

import gzip
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, ClassVar, Dict, Optional

from repro.errors import ReproError
from repro.lab.lease import LeaseBoard
from repro.lab.net.transport import backoff_from_wire, lease_to_wire
from repro.lab.spec import RunSpec
from repro.lab.store import ExportSource, ResultStore
from repro.util.stats import Stats

#: Hard cap on request bodies (a full smoke-grid export is ~kilobytes;
#: anything near this is a protocol error, not a workload).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _UnknownVerb(Exception):
    """Internal: dispatch miss, reported as HTTP 404."""


class LeaseServer:
    """Serve a local lease board and result store over JSON/HTTP.

    ``board`` and ``store`` should be opened with
    ``cross_thread=True`` (handler threads share them; the server's
    lock serializes access). ``port=0`` binds an ephemeral port —
    read :attr:`url` after construction.
    """

    def __init__(self, board: LeaseBoard, store: ResultStore,
                 host: str = "127.0.0.1", port: int = 0,
                 stats: Optional[Stats] = None) -> None:
        self.board = board
        self.store = store
        self.stats = stats if stats is not None else Stats(enabled=False)
        self._lock = threading.Lock()
        self._verbs: Dict[str, Callable[[Dict], Dict]] = {
            "seed": self._verb_seed,
            "claim": self._verb_claim,
            "renew": self._verb_renew,
            "complete": self._verb_complete,
            "fail": self._verb_fail,
        }
        handler = type("_BoundLeaseHandler", (_LeaseHandler,),
                       {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    def start(self) -> "LeaseServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="star-lab-lease-server",
        )
        thread.start()
        self._thread = thread
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "LeaseServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # request execution (called from handler threads)
    # ------------------------------------------------------------------
    def handle_verb(self, verb: str, payload: Dict) -> Dict:
        handler = self._verbs.get(verb)
        if handler is None:
            raise _UnknownVerb(verb)
        with self._lock:
            return handler(payload)

    def handle_upload(self, body: bytes, gzipped: bool) -> Dict:
        raw = gzip.decompress(body) if gzipped else body
        entries = json.loads(raw.decode("ascii"))
        if not isinstance(entries, list):
            raise ValueError("upload body must be a JSON list of "
                             "export entries")
        source = ExportSource(entries,
                              provenance={"transport": "http"})
        with self._lock:
            self.stats.add("lab.net.upload_bytes", len(body))
            imported = self.store.import_from(source)
        return {"imported": imported, "received": len(entries)}

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "counts": self.board.counts(),
                "finished": self.board.finished(),
                "failures": self.board.failures(),
            }

    def count_request(self, attempt_header: Optional[str]) -> None:
        self.stats.add("lab.net.requests")
        if (attempt_header and attempt_header.isdigit()
                and int(attempt_header) > 1):
            # the client numbers its attempts, so a flapping network
            # is visible on the coordinator, not just worker logs
            self.stats.add("lab.net.retries")

    # ------------------------------------------------------------------
    # verbs (lock held; board methods only — no raw lease SQL here)
    # ------------------------------------------------------------------
    def _verb_seed(self, payload: Dict) -> Dict:
        specs = [RunSpec.from_dict(entry)
                 for entry in payload["specs"]]
        return {"added": self.board.seed(specs)}

    def _verb_claim(self, payload: Dict) -> Dict:
        leases = self.board.claim(
            str(payload["owner"]),
            float(payload["lease_s"]),
            int(payload.get("limit", 1)),
        )
        return {"leases": [lease_to_wire(lease) for lease in leases]}

    def _verb_renew(self, payload: Dict) -> Dict:
        ok = self.board.renew(
            str(payload["owner"]), str(payload["spec_hash"]),
            int(payload["fence"]), float(payload["lease_s"]),
        )
        if not ok:
            self.stats.add("lab.net.rejects")
        return {"ok": ok}

    def _verb_complete(self, payload: Dict) -> Dict:
        owner = str(payload["owner"])
        spec_hash = str(payload["spec_hash"])
        fence = int(payload["fence"])
        ok = self.board.complete(owner, spec_hash, fence)
        duplicate = False
        if not ok:
            row = self.board.lease_row(spec_hash)
            if (row is not None and row["state"] == "done"
                    and row["owner"] == owner
                    and row["fence"] == fence):
                # retried delivery: the first complete already landed
                # this row under the same credentials — acknowledge
                # without re-applying
                ok = duplicate = True
                self.stats.add("lab.net.duplicates")
            else:
                self.stats.add("lab.net.rejects")
        return {"ok": ok, "duplicate": duplicate}

    def _verb_fail(self, payload: Dict) -> Dict:
        outcome = self.board.fail(
            str(payload["owner"]), str(payload["spec_hash"]),
            int(payload["fence"]), str(payload["error"]),
            max_attempts=int(payload.get("max_attempts", 3)),
            backoff=backoff_from_wire(payload.get("backoff")),
        )
        if outcome == "stale":
            self.stats.add("lab.net.rejects")
        return {"outcome": outcome}


# ----------------------------------------------------------------------
# the HTTP plumbing
# ----------------------------------------------------------------------
class _LeaseHandler(BaseHTTPRequestHandler):
    """Routes ``POST /lease/<verb>``, ``GET /lease/snapshot`` and
    ``PUT /results`` to the bound :class:`LeaseServer`."""

    service: ClassVar[LeaseServer]
    # keep-alive matters: a worker issues thousands of small verbs
    protocol_version = "HTTP/1.1"

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError("request body of %d bytes exceeds the "
                             "%d byte cap" % (length, MAX_BODY_BYTES))
        return self.rfile.read(length) if length > 0 else b""

    def _reply(self, code: int, payload: Dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n"
                ).encode("ascii")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        service = type(self).service
        service.count_request(self.headers.get("X-Star-Attempt"))
        path = self.path.split("?")[0]
        if not path.startswith("/lease/"):
            self._reply(404, {"error": "unknown path %r" % path})
            return
        verb = path[len("/lease/"):]
        try:
            payload = json.loads(self._read_body() or b"{}")
            result = service.handle_verb(verb, payload)
        except _UnknownVerb:
            self._reply(404, {"error": "unknown verb %r" % verb})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except (KeyError, TypeError, ValueError) as exc:
            self._reply(400, {"error": "bad request: %s: %s"
                              % (type(exc).__name__, exc)})
        else:
            self._reply(200, result)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        service = type(self).service
        service.count_request(self.headers.get("X-Star-Attempt"))
        if self.path.split("?")[0] != "/lease/snapshot":
            self._reply(404, {"error": "try GET /lease/snapshot"})
            return
        self._reply(200, service.snapshot())

    def do_PUT(self) -> None:  # noqa: N802 (stdlib handler API)
        service = type(self).service
        service.count_request(self.headers.get("X-Star-Attempt"))
        if self.path.split("?")[0] != "/results":
            self._reply(404, {"error": "try PUT /results"})
            return
        gzipped = (self.headers.get("Content-Encoding", "")
                   .lower() == "gzip")
        try:
            body = self._read_body()
            result = service.handle_upload(body, gzipped)
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except (OSError, KeyError, TypeError, ValueError) as exc:
            self._reply(400, {"error": "bad upload: %s: %s"
                              % (type(exc).__name__, exc)})
        else:
            self._reply(200, result)

    def log_message(self, format: str,
                    *args: object) -> None:  # noqa: A002
        pass  # the coordinator's terminal belongs to star-lab serve
