"""A fault-injecting HTTP proxy for lease-transport tests.

Sits in-process between an :class:`~repro.lab.net.client
.HttpLeaseClient` and a real :class:`~repro.lab.net.server
.LeaseServer`, forwarding requests verbatim except where a *fault
plan* says otherwise. The faults model the network failure modes the
transport must survive:

``drop_request``
    Close the connection without forwarding. The coordinator never
    saw the verb; the client retries.
``drop_response``
    Forward, then close without relaying the response. The
    coordinator *executed* the verb but the client cannot know — its
    retry is a duplicate delivery, which fencing must absorb.
``duplicate``
    Forward the request twice, relay the second response. Duplicate
    delivery without any client retry (a middlebox replay).
``truncate``
    Relay the response with its full ``Content-Length`` but only half
    the body, then close. The client sees a short read and retries.
``delay``
    Forward, then sleep ``delay_s`` through the proxy's clock before
    relaying — with a client timeout below the delay this turns into
    a timeout-plus-duplicate.

Plans are deterministic: :func:`scripted_plan` maps request index to
fault, :func:`seeded_plan` draws from a seeded ``random.Random``. The
proxy counts what it injected (:attr:`FlakyProxy.injected`) so tests
can assert the faults actually fired.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from random import Random
from typing import (
    Callable,
    ClassVar,
    Dict,
    Optional,
    Sequence,
    Tuple,
)

from repro.lab.clock import Clock

#: Every fault kind a plan may return (``None`` means forward clean).
FAULTS = (
    "drop_request", "drop_response", "duplicate", "truncate", "delay",
)

#: ``plan(request_index, path) -> fault kind or None``.
FaultPlan = Callable[[int, str], Optional[str]]

#: Request headers the proxy relays upstream.
_RELAYED_HEADERS = ("content-type", "content-encoding",
                    "x-star-attempt")


def scripted_plan(script: Sequence[Optional[str]]) -> FaultPlan:
    """Fault-by-request-index; clean past the end of the script."""
    faults = list(script)

    def plan(index: int, path: str) -> Optional[str]:
        return faults[index] if index < len(faults) else None

    return plan


def seeded_plan(seed: int, rates: Dict[str, float]) -> FaultPlan:
    """Independent per-request draws from a seeded ``Random``.

    ``rates`` maps fault kind to probability; kinds are tried in
    sorted order so the draw sequence is a pure function of the seed.
    """
    for kind in rates:
        if kind not in FAULTS:
            raise ValueError("unknown fault kind %r (know %s)"
                             % (kind, ", ".join(FAULTS)))
    rng = Random(seed)
    kinds = sorted(rates)

    def plan(index: int, path: str) -> Optional[str]:
        for kind in kinds:
            if rng.random() < rates[kind]:
                return kind
        return None

    return plan


class FlakyProxy:
    """An in-process proxy applying a fault plan per request."""

    def __init__(self, upstream: str, plan: FaultPlan,
                 host: str = "127.0.0.1", port: int = 0,
                 clock: Optional[Clock] = None,
                 delay_s: float = 0.05,
                 timeout_s: float = 10.0) -> None:
        self.upstream = upstream.rstrip("/")
        self.plan = plan
        self.clock = clock if clock is not None else Clock()
        self.delay_s = delay_s
        self.timeout_s = timeout_s
        self.requests = 0
        self.injected: Dict[str, int] = {}
        self._lock = threading.Lock()
        handler = type("_BoundProxyHandler", (_ProxyHandler,),
                       {"proxy": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    def start(self) -> "FlakyProxy":
        thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="star-lab-flaky-proxy",
        )
        thread.start()
        self._thread = thread
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FlakyProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # handler support
    # ------------------------------------------------------------------
    def next_fault(self, path: str) -> Optional[str]:
        with self._lock:
            index = self.requests
            self.requests += 1
            fault = self.plan(index, path)
            if fault is not None:
                self.injected[fault] = self.injected.get(fault, 0) + 1
            return fault

    def forward(self, method: str, path: str, body: bytes,
                headers: Dict[str, str]) -> Tuple[int, bytes]:
        request = urllib.request.Request(
            self.upstream + path, data=body or None, method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.getcode(), response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()


class _ProxyHandler(BaseHTTPRequestHandler):
    proxy: ClassVar[FlakyProxy]
    protocol_version = "HTTP/1.1"

    def _handle(self) -> None:
        proxy = type(self).proxy
        path = self.path
        length = int(self.headers.get("Content-Length", "0") or "0")
        body = self.rfile.read(length) if length > 0 else b""
        headers = {
            key: value for key, value in self.headers.items()
            if key.lower() in _RELAYED_HEADERS
        }
        fault = proxy.next_fault(path)
        if fault == "drop_request":
            self.close_connection = True
            return
        status, payload = proxy.forward(self.command, path, body,
                                        headers)
        if fault == "duplicate":
            status, payload = proxy.forward(self.command, path, body,
                                            headers)
        if fault == "delay":
            proxy.clock.sleep(proxy.delay_s)
        if fault == "drop_response":
            self.close_connection = True
            return
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if fault == "truncate" and len(payload) > 1:
            self.wfile.write(payload[: len(payload) // 2])
            self.close_connection = True
            return
        self.wfile.write(payload)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        self._handle()

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        self._handle()

    def do_PUT(self) -> None:  # noqa: N802 (stdlib handler API)
        self._handle()

    def log_message(self, format: str,
                    *args: object) -> None:  # noqa: A002
        pass  # fault noise belongs in counters, not test output
