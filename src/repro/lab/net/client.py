"""``HttpLeaseClient``: the worker-side lease transport over HTTP.

Satisfies :class:`~repro.lab.net.transport.LeaseTransport`, so a
:class:`~repro.lab.farm.Worker` drives it exactly like a local SQLite
board. What the client adds is *delivery* discipline:

* every request carries a per-request timeout, so a hung coordinator
  costs one timeout, not a wedged worker;
* transient failures (connection refused, timeouts, truncated or
  garbled responses, HTTP 5xx) are retried under a
  :class:`~repro.lab.clock.BackoffPolicy`, sleeping through the
  injected clock so tests retry instantly;
* retries are numbered in an ``X-Star-Attempt`` header, giving the
  coordinator's ``lab.net.retries`` counter visibility into a
  flapping network;
* definitive rejections (HTTP 4xx) raise
  :class:`~repro.lab.net.transport.TransportError` immediately — a
  malformed verb will not become less malformed by retrying. The one
  exception is ``PUT /results``, where a 4xx usually means the body
  was damaged in transit (the hash check on ingest catches it), so
  uploads retry their 4xxs too.

Every verb is safe to retry because the board is fenced: a replayed
``complete`` is acknowledged as a duplicate no-op by the server, a
replayed ``claim`` only re-claims cells whose first response was
lost (their leases simply expire back to the same owner), and stale
fences are rejected identically to the local path.
"""

from __future__ import annotations

import gzip
import json
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Dict, List, Optional

from repro.lab.clock import BackoffPolicy, Clock
from repro.lab.lease import Lease
from repro.lab.net.transport import (
    TransportError,
    backoff_to_wire,
    lease_from_wire,
)
from repro.lab.spec import RunSpec
from repro.util.stats import Stats


class HttpLeaseClient:
    """Lease verbs and result uploads against a coordinator URL."""

    def __init__(self, url: str, clock: Optional[Clock] = None,
                 stats: Optional[Stats] = None,
                 timeout_s: float = 10.0, retries: int = 5,
                 backoff: Optional[BackoffPolicy] = None) -> None:
        self.url = url.rstrip("/")
        self.clock = clock if clock is not None else Clock()
        self.stats = stats if stats is not None else Stats(enabled=False)
        self.timeout_s = timeout_s
        self.retries = retries
        # defaults bridge a coordinator restart of a few seconds:
        # 0.2 + 0.4 + 0.8 + 1.6 + 3.2 ≈ 6s of patience
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            policy="exponential", base_s=0.2, cap_s=5.0,
        )

    # ------------------------------------------------------------------
    # the LeaseTransport surface
    # ------------------------------------------------------------------
    def seed(self, specs: List[RunSpec]) -> int:
        payload = {"specs": [spec.to_dict() for spec in specs]}
        return int(self._verb("seed", payload)["added"])

    def claim(self, owner: str, lease_s: float,
              limit: int = 1) -> List[Lease]:
        data = self._verb("claim", {
            "owner": owner, "lease_s": lease_s, "limit": limit,
        })
        return [lease_from_wire(entry) for entry in data["leases"]]

    def renew(self, owner: str, spec_hash: str, fence: int,
              lease_s: float) -> bool:
        data = self._verb("renew", {
            "owner": owner, "spec_hash": spec_hash, "fence": fence,
            "lease_s": lease_s,
        })
        return bool(data["ok"])

    def complete(self, owner: str, spec_hash: str, fence: int) -> bool:
        data = self._verb("complete", {
            "owner": owner, "spec_hash": spec_hash, "fence": fence,
        })
        return bool(data["ok"])

    def fail(self, owner: str, spec_hash: str, fence: int, error: str,
             max_attempts: int = 3,
             backoff: Optional[BackoffPolicy] = None) -> str:
        data = self._verb("fail", {
            "owner": owner, "spec_hash": spec_hash, "fence": fence,
            "error": error, "max_attempts": max_attempts,
            "backoff": backoff_to_wire(backoff),
        })
        return str(data["outcome"])

    def counts(self) -> Dict[str, int]:
        counts = self.snapshot()["counts"]
        return {str(state): int(count)
                for state, count in counts.items()}

    def finished(self) -> bool:
        return bool(self.snapshot()["finished"])

    def failures(self) -> List[Dict]:
        return list(self.snapshot()["failures"])

    def close(self) -> None:
        pass  # nothing held open: urllib connections are per-request

    # ------------------------------------------------------------------
    # beyond the protocol: liveness and result shipping
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        return self._request("GET", "/lease/snapshot")

    def ping(self) -> Dict:
        """One un-retried snapshot — the worker's wait-for-coordinator
        probe, where the *caller* owns the patience budget."""
        return self._request("GET", "/lease/snapshot", retries=0)

    def upload_results(self, entries: List[Dict]) -> int:
        """Ship export entries; returns how many the coordinator was
        missing. Gzipped (mtime=0: same entries, same bytes), and 4xx
        responses are retried — see the module docstring."""
        body = gzip.compress(
            json.dumps(entries, sort_keys=True).encode("ascii"),
            mtime=0,
        )
        data = self._request(
            "PUT", "/results", body=body,
            headers={"Content-Encoding": "gzip"},
            retry_client_errors=True,
        )
        self.stats.add("lab.net.upload_bytes", len(body))
        return int(data["imported"])

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _verb(self, verb: str, payload: Dict) -> Dict:
        return self._request("POST", "/lease/" + verb, payload=payload)

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None,
                 body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None,
                 retries: Optional[int] = None,
                 retry_client_errors: bool = False) -> Dict:
        if body is None and payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("ascii")
        budget = self.retries if retries is None else retries
        attempt = 0
        detail = "no attempt made"
        while True:
            attempt += 1
            try:
                return self._once(method, path, body, headers or {},
                                  attempt)
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if (400 <= exc.code < 500
                        and not retry_client_errors):
                    self.stats.add("lab.net.errors")
                    raise TransportError(
                        "%s %s%s rejected: %s"
                        % (method, self.url, path, detail)
                    ) from exc
            except (HTTPException, OSError, ValueError) as exc:
                detail = "%s: %s" % (type(exc).__name__, exc)
            if attempt > budget:
                self.stats.add("lab.net.errors")
                raise TransportError(
                    "%s %s%s failed after %d attempt%s: %s"
                    % (method, self.url, path, attempt,
                       "" if attempt == 1 else "s", detail)
                )
            self.stats.add("lab.net.retries")
            self.clock.sleep(self.backoff.delay(attempt))

    def _once(self, method: str, path: str, body: Optional[bytes],
              headers: Dict[str, str], attempt: int) -> Dict:
        self.stats.add("lab.net.requests")
        request_headers = {
            "Content-Type": "application/json",
            "X-Star-Attempt": str(attempt),
        }
        request_headers.update(headers)
        request = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers=request_headers,
        )
        with urllib.request.urlopen(
            request, timeout=self.timeout_s
        ) as response:
            raw = response.read()
        result = json.loads(raw.decode("ascii"))
        if not isinstance(result, dict):
            raise ValueError("response is not a JSON object")
        return result

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            body = json.loads(exc.read().decode("ascii"))
            message = body.get("error")
        except (OSError, ValueError, AttributeError):
            message = None
        if message:
            return "HTTP %d: %s" % (exc.code, message)
        return "HTTP %d: %s" % (exc.code, exc.reason)
