"""``repro.lab`` — persistent experiment store + campaign scheduler.

The lab layer turns one-shot experiment scripts into resumable,
cache-hitting campaigns:

* :mod:`repro.lab.spec` — :class:`RunSpec`, the declarative,
  content-hashed identity of one cell (scheme, workload, config,
  seed, crash behaviour, metric selection),
* :mod:`repro.lab.store` — :class:`ResultStore`, a SQLite-indexed,
  gzip-JSONL-blobbed result store with corruption quarantine,
* :mod:`repro.lab.scheduler` — :class:`Scheduler`, multiprocess shards
  with per-job timeout, bounded retry/backoff, SIGINT draining and
  journaled checkpoints (``star-lab resume``),
* :mod:`repro.lab.gridfile` — grid files re-expressing the paper's
  sweeps (Figs. 10-14, Table II) as campaigns,
* :mod:`repro.lab.lease` / :mod:`repro.lab.farm` — the distributed
  campaign farm: a SQLite lease board with fencing tokens, a
  :class:`Coordinator` (``star-lab serve``) and work-stealing
  :class:`Worker` pools (``star-lab work``) whose merged stores
  export byte-identically to a serial run,
* :mod:`repro.lab.bridge` — :class:`LabCache`, the read-through cache
  ``star-bench --lab DIR`` serves figures from,
* :mod:`repro.lab.cli` — the ``star-lab
  run|status|resume|export|gc|serve|work|merge`` command line.
"""

from repro.lab.bridge import LabCache
from repro.lab.clock import BackoffPolicy, Clock, FakeClock
from repro.lab.farm import Coordinator, Worker
from repro.lab.lease import Lease, LeaseBoard
from repro.lab.executor import execute, payload_to_run_result
from repro.lab.gridfile import (
    BUILTIN_GRIDS,
    campaign_id,
    expand,
    load_grid,
    resolve_specs,
)
from repro.lab.scheduler import CampaignReport, Scheduler
from repro.lab.spec import (
    SCHEMA_VERSION,
    RunSpec,
    bench_spec,
    canonical_config,
    config_from_canonical,
    fuzz_spec,
)
from repro.lab.store import ResultRecord, ResultStore, StoreError

__all__ = [
    "BUILTIN_GRIDS",
    "BackoffPolicy",
    "CampaignReport",
    "Clock",
    "Coordinator",
    "FakeClock",
    "LabCache",
    "Lease",
    "LeaseBoard",
    "ResultRecord",
    "ResultStore",
    "RunSpec",
    "SCHEMA_VERSION",
    "Scheduler",
    "StoreError",
    "Worker",
    "bench_spec",
    "campaign_id",
    "canonical_config",
    "config_from_canonical",
    "execute",
    "expand",
    "fuzz_spec",
    "load_grid",
    "payload_to_run_result",
    "resolve_specs",
]
