"""The distributed campaign farm: coordinator + work-stealing workers.

``repro.lab.farm`` turns the single-host lab into a multi-worker
campaign service over a shared filesystem. The topology:

* a **coordinator** (``star-lab serve``) expands grids into cells,
  seeds the :class:`~repro.lab.lease.LeaseBoard` (skipping cells the
  authoritative store already holds), then watches the board — writing
  journal checkpoints and heartbeats for ``star-lab status`` /
  ``star-top`` — until every cell is terminal. It then **merges** the
  per-worker stores into the authoritative store through
  :meth:`~repro.lab.store.ResultStore.import_from`;
* N **workers** (``star-lab work``) independently claim leases,
  execute the cells through the existing
  :class:`~repro.lab.scheduler.Scheduler` → :mod:`repro.lab.executor`
  path into their own private store, renew their leases between
  chunks, and mark cells done/failed under the lease's fencing token.
  A worker that dies (SIGKILL, host loss, partition) simply stops
  renewing — once its deadlines pass, the surviving workers steal its
  cells.

Farm layout, under one shared directory::

    <farm>/
      leases.sqlite        the lease board (the only coordination state)
      farm.json            manifest: campaign id/name, cells, transport
      workers/<id>/store/  per-worker ResultStore (merged, then disposable)
      telemetry/           worker + coordinator heartbeats (star-top)

The board dependency is an interface, not a file: workers program
against :class:`~repro.lab.net.transport.LeaseTransport`, which the
SQLite board satisfies directly (shared-filesystem farms) and
:class:`~repro.lab.net.client.HttpLeaseClient` satisfies over the
wire (``star-lab work --coordinator URL``). In HTTP mode the worker's
``farm_dir`` is just its private workdir — store and telemetry land
there, no filesystem is shared with the coordinator — and computed
payloads are shipped back as gzip export uploads *before* the cells
are completed, so a ``done`` row always has its payload on the
coordinator side.

Determinism: payloads are pure functions of their specs, so however
many workers computed (or double-computed, after a steal) a cell, the
merged store's deterministic export is byte-identical to a serial
``star-lab run`` of the same grid — the property the ``farm-smoke`` CI
job pins with ``cmp``. All timing goes through the injectable
:class:`~repro.lab.clock.Clock`, so churn scenarios are tested on a
FakeClock, and no wall-clock value ever reaches a result payload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.lab.clock import BackoffPolicy, Clock
from repro.lab.gridfile import campaign_id
from repro.lab.lease import Lease, LeaseBoard
from repro.lab.net.client import HttpLeaseClient
from repro.lab.net.transport import LeaseTransport, TransportError
from repro.lab.scheduler import (
    CampaignReport,
    JobRunner,
    Scheduler,
    write_journal,
)
from repro.lab.spec import RunSpec
from repro.lab.store import ResultStore, StoreError
from repro.util.stats import Stats

if TYPE_CHECKING:
    from repro.obs.live import HeartbeatWriter

PathLike = Union[str, Path]

BOARD_NAME = "leases.sqlite"
MANIFEST_NAME = "farm.json"
WORKERS_DIR = "workers"
TELEMETRY_DIR = "telemetry"


def board_path(farm_dir: PathLike) -> Path:
    return Path(farm_dir) / BOARD_NAME


def manifest_path(farm_dir: PathLike) -> Path:
    return Path(farm_dir) / MANIFEST_NAME


def telemetry_dir(farm_dir: PathLike) -> Path:
    return Path(farm_dir) / TELEMETRY_DIR


def worker_store_path(farm_dir: PathLike, worker_id: str) -> Path:
    return Path(farm_dir) / WORKERS_DIR / worker_id / "store"


def _heartbeat(directory: PathLike, name: str, clock: Clock,
               interval_s: float,
               stats: Optional[Stats]) -> "HeartbeatWriter":
    from repro.obs.live import HeartbeatWriter

    return HeartbeatWriter(directory, name, clock=clock,
                           interval_s=interval_s, stats=stats)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class Coordinator:
    """Seed the board, watch it converge, merge the worker stores.

    The coordinator owns the *authoritative* store and the campaign
    journal; it never executes cells itself. Restarting it against the
    same farm directory re-adopts the existing board (in-flight leases
    keep their owners and fences) and re-merges whatever the workers
    have shipped since — coordination state lives entirely on disk.
    """

    def __init__(self, store: ResultStore, farm_dir: PathLike,
                 clock: Optional[Clock] = None,
                 stats: Optional[Stats] = None,
                 lease_s: float = 60.0,
                 poll_interval_s: float = 0.5,
                 heartbeat_interval_s: float = 1.0,
                 telemetry: bool = True,
                 transport_meta: Optional[Dict] = None) -> None:
        self.store = store
        self.farm_dir = Path(farm_dir)
        self.clock = clock if clock is not None else Clock()
        self.stats = stats if stats is not None else store.stats
        self.lease_s = lease_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.telemetry = telemetry
        # what the manifest advertises to star-top: how workers reach
        # the board (file path on a shared FS, or an http URL)
        self.transport_meta = transport_meta
        self.board = LeaseBoard(board_path(self.farm_dir),
                                clock=self.clock)
        self._resumed = 0
        self._checkpoints: List[Dict] = []

    def close(self) -> None:
        self.board.close()

    # ------------------------------------------------------------------
    def prepare(self, specs: List[RunSpec],
                name: str = "farm") -> CampaignReport:
        """Seed (or re-adopt) the board for a campaign.

        Cells the authoritative store already holds are settled as done
        without ever being claimable — the farm equivalent of the
        scheduler's resume path.
        """
        cid = campaign_id(specs)
        self.board.seed(specs)
        resumed = 0
        for spec in specs:
            if self.store.get(spec) is not None:
                self.board.settle(spec.spec_hash)
                resumed += 1
        self._resumed = resumed
        self.stats.gauge_set("lab.farm.cells", float(len(specs)))
        manifest = {
            "campaign_id": cid,
            "name": name,
            "cells": len(specs),
            "lease_s": self.lease_s,
            "transport": (dict(self.transport_meta)
                          if self.transport_meta is not None
                          else {"kind": "file",
                                "board": str(board_path(self.farm_dir))
                                }),
        }
        path = manifest_path(self.farm_dir)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        report = self._report(cid, name, specs)
        self._checkpoint(report)
        write_journal(self.store, cid, name, specs, "running", report,
                      self._checkpoints)
        return report

    def _report(self, cid: str, name: str,
                specs: List[RunSpec]) -> CampaignReport:
        counts = self.board.counts()
        report = CampaignReport(
            campaign_id=cid, name=name, total=len(specs),
            resumed=self._resumed,
            completed=max(0, counts["done"] - self._resumed),
            failed=counts["failed"],
        )
        report.failures = self.board.failures()
        self.stats.gauge_set("lab.farm.pending",
                             float(counts["pending"]))
        self.stats.gauge_set("lab.farm.leased", float(counts["leased"]))
        self.stats.gauge_set("lab.farm.done", float(counts["done"]))
        self.stats.gauge_set("lab.farm.failed", float(counts["failed"]))
        return report

    def _checkpoint(self, report: CampaignReport) -> None:
        self._checkpoints.append({
            "wall_s": self.clock.wall(),
            "stored": report.resumed + report.completed,
        })

    def merge(self) -> int:
        """Import every worker store into the authoritative store.

        Workers are visited in name order and records in spec-hash
        order; since payloads are spec-pure, the result is independent
        of worker count, interleaving, and double-computed cells.
        """
        merged = 0
        workers_root = self.farm_dir / WORKERS_DIR
        if not workers_root.is_dir():
            return 0
        for worker_root in sorted(workers_root.iterdir()):
            store_root = worker_root / "store"
            if not store_root.is_dir():
                continue
            with ResultStore(store_root) as source:
                merged += self.store.import_from(source)
        if merged:
            self.stats.add("lab.farm.merged_records", merged)
        return merged

    # ------------------------------------------------------------------
    def run(self, specs: List[RunSpec], name: str = "farm",
            max_wall_s: Optional[float] = None) -> CampaignReport:
        """Serve one campaign to completion (or ``max_wall_s``).

        Blocks while workers chew through the board, publishing
        heartbeats and journal checkpoints, then merges and finalizes.
        ``max_wall_s`` bounds the watch loop — the controlled
        interruption knob (the campaign stays resumable: re-run
        ``serve`` to re-adopt it).
        """
        cid = campaign_id(specs)
        started = self.clock.wall()
        report = self.prepare(specs, name=name)
        beat = None
        if self.telemetry:
            beat = _heartbeat(telemetry_dir(self.farm_dir),
                              "coordinator", self.clock,
                              self.heartbeat_interval_s, self.stats)
        last_stored = -1
        interrupted = False
        try:
            while True:
                report = self._report(cid, name, specs)
                stored = report.resumed + report.completed
                if stored != last_stored:
                    last_stored = stored
                    self._checkpoint(report)
                    write_journal(self.store, cid, name, specs,
                                  "running", report, self._checkpoints)
                if beat is not None:
                    beat.write(registry=self.stats.registry,
                               progress=report.summary())
                if self.board.finished():
                    self.merge()
                    # done rows whose payload never shipped (a worker
                    # store was lost wholesale) go back on the board
                    missing = [
                        spec.spec_hash for spec in specs
                        if self.store.get(spec) is None
                        and spec.spec_hash
                        in set(self.board.hashes("done"))
                    ]
                    if not missing:
                        break
                    self.board.requeue(missing)
                    self.stats.add("lab.farm.cells_requeued",
                                   len(missing))
                if (max_wall_s is not None
                        and self.clock.wall() - started >= max_wall_s):
                    interrupted = True
                    break
                self.clock.sleep(self.poll_interval_s)
        except KeyboardInterrupt:
            interrupted = True
        report = self._report(cid, name, specs)
        report.interrupted = interrupted or report.remaining > 0
        self._checkpoint(report)
        status = ("interrupted" if report.interrupted
                  else "failed" if report.failed else "complete")
        write_journal(self.store, cid, name, specs, status, report,
                      self._checkpoints)
        self.stats.gauge_set("lab.farm.wall_s",
                             self.clock.wall() - started)
        if beat is not None:
            beat.write(registry=self.stats.registry,
                       progress=report.summary(), force=True)
        return report


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
class Worker:
    """One work-stealing worker pool: claim, execute, ship, repeat.

    Claims up to ``batch`` leases at a time and executes them in
    chunks of ``jobs`` through a private :class:`Scheduler` (process
    shards, timeouts, retries and the configurable
    :class:`BackoffPolicy` all come along for free), renewing its
    outstanding leases between chunks. Results land in the worker's
    own store; completion is reported under the lease fence, so a
    worker that outlived its lease discards the completion (not the
    result — the merge path dedups identical payloads).

    When nothing is claimable the worker idles under ``claim_backoff``
    — the same policy class the scheduler retries use — until either
    work appears (a peer's lease expires: the stealing path) or the
    board reports every cell terminal, at which point it exits.
    """

    def __init__(self, farm_dir: PathLike, worker_id: str,
                 store: Optional[ResultStore] = None,
                 clock: Optional[Clock] = None,
                 stats: Optional[Stats] = None,
                 jobs: int = 1,
                 batch: Optional[int] = None,
                 lease_s: float = 60.0,
                 timeout_s: Optional[float] = None,
                 retries: int = 2,
                 backoff: Optional[BackoffPolicy] = None,
                 claim_backoff: Optional[BackoffPolicy] = None,
                 max_attempts: int = 3,
                 poll_interval_s: float = 0.2,
                 heartbeat_interval_s: float = 1.0,
                 telemetry: bool = True,
                 runner: Optional[JobRunner] = None,
                 wait_s: float = 30.0,
                 max_batches: Optional[int] = None,
                 coordinator: Optional[str] = None,
                 net_timeout_s: float = 10.0,
                 net_retries: int = 5,
                 net_backoff: Optional[BackoffPolicy] = None) -> None:
        self.farm_dir = Path(farm_dir)
        self.worker_id = worker_id
        self.coordinator = coordinator
        self.net_timeout_s = net_timeout_s
        self.net_retries = net_retries
        self.net_backoff = net_backoff
        self.clock = clock if clock is not None else Clock()
        self.stats = stats if stats is not None else Stats(enabled=True)
        if store is None:
            store = ResultStore(
                worker_store_path(self.farm_dir, worker_id),
                stats=self.stats,
            )
        self.store = store
        self.jobs = max(1, jobs)
        self.batch = batch if batch is not None else self.jobs
        self.lease_s = lease_s
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = backoff
        self.claim_backoff = (claim_backoff if claim_backoff is not None
                              else BackoffPolicy("exponential",
                                                 base_s=poll_interval_s,
                                                 cap_s=max(1.0, lease_s / 4)))
        self.max_attempts = max_attempts
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.telemetry = telemetry
        self.runner = runner
        self.wait_s = wait_s
        self.max_batches = max_batches
        self.done = 0
        self.failed = 0
        self.stolen = 0

    # ------------------------------------------------------------------
    def _wait_for_board(self) -> Optional[LeaseTransport]:
        """Connect the lease transport, waiting up to ``wait_s``.

        With a ``coordinator`` URL the wait is a ping loop against its
        snapshot endpoint; otherwise it polls for the board file the
        coordinator creates on the shared filesystem.
        """
        waited = 0.0
        if self.coordinator is not None:
            client = HttpLeaseClient(
                self.coordinator, clock=self.clock, stats=self.stats,
                timeout_s=self.net_timeout_s, retries=self.net_retries,
                backoff=self.net_backoff,
            )
            while True:
                try:
                    client.ping()
                    return client
                except TransportError:
                    if waited >= self.wait_s:
                        return None
                    self.clock.sleep(self.poll_interval_s)
                    waited += self.poll_interval_s
        path = board_path(self.farm_dir)
        while not path.exists():
            if waited >= self.wait_s:
                return None
            self.clock.sleep(self.poll_interval_s)
            waited += self.poll_interval_s
        return LeaseBoard(path, clock=self.clock)

    def _scheduler(self) -> Scheduler:
        return Scheduler(
            self.store, jobs=self.jobs, timeout_s=self.timeout_s,
            retries=self.retries, backoff=self.backoff,
            clock=self.clock, stats=self.stats, runner=self.runner,
        )

    def _chunk_error(self, report: CampaignReport,
                     spec_hash: str) -> str:
        for failure in report.failures:
            if failure.get("spec_hash") == spec_hash:
                return str(failure.get("error", "unknown"))
        return "cell not stored after scheduler run"

    def _ship_chunk(self, board: LeaseTransport,
                    chunk: List[Lease]) -> bool:
        """Upload the chunk's computed payloads (HTTP farms only).

        Runs *before* settling, so by the time a cell's ``complete``
        lands on the board its payload is already in the
        coordinator's store — a ``done`` row can't outrun its data.
        Returns ``False`` when the upload could not be delivered; the
        chunk is then left unsettled, its leases expire, and a
        connected peer (or this worker, reconnected) recomputes or
        reships — the convergence path churn already exercises.
        """
        upload = getattr(board, "upload_results", None)
        if upload is None:
            return True  # file transport: the merge path reads disk
        hashes = [lease.spec_hash for lease in chunk
                  if lease.spec in self.store]
        entries = self.store.export(spec_hashes=hashes) if hashes else []
        if not entries:
            return True
        try:
            upload(entries)
        except TransportError:
            return False
        self.stats.add("lab.farm.results_shipped", len(entries))
        return True

    def _settle_chunk(self, board: LeaseTransport, chunk: List[Lease],
                      report: CampaignReport) -> None:
        for lease in chunk:
            if self.store.get(lease.spec) is not None:
                if board.complete(self.worker_id, lease.spec_hash,
                                  lease.fence):
                    self.done += 1
                    self.stats.add("lab.farm.cells_done")
                else:
                    self.stats.add("lab.farm.stale_fences")
            else:
                outcome = board.fail(
                    self.worker_id, lease.spec_hash, lease.fence,
                    self._chunk_error(report, lease.spec_hash),
                    max_attempts=self.max_attempts,
                    backoff=self.backoff or BackoffPolicy(),
                )
                if outcome == "failed":
                    self.failed += 1
                    self.stats.add("lab.farm.cells_failed")
                elif outcome == "requeued":
                    self.stats.add("lab.farm.cells_requeued")
                else:
                    self.stats.add("lab.farm.stale_fences")

    def run(self) -> Dict:
        """Work the board until the campaign is terminal.

        Returns a summary dict (cells done/failed here, steals,
        batches) — diagnostics only; the authoritative outcome lives
        on the board and in the merged store.
        """
        board = self._wait_for_board()
        if board is None:
            if self.coordinator is not None:
                raise TransportError(
                    "no coordinator answering at %s after waiting "
                    "%.0fs; is star-lab serve --http running there?"
                    % (self.coordinator, self.wait_s)
                )
            raise StoreError(
                "no lease board under %s after waiting %.0fs; is "
                "star-lab serve running against this farm directory?"
                % (self.farm_dir, self.wait_s)
            )
        beat = None
        if self.telemetry:
            beat = _heartbeat(telemetry_dir(self.farm_dir),
                              self.worker_id, self.clock,
                              self.heartbeat_interval_s, self.stats)
        batches = 0
        idle_attempts = 0
        try:
            while True:
                # past the client's retry budget the coordinator is
                # gone, not flapping: exit with what we have — the
                # board remains authoritative, and unfinished leases
                # expire back to whoever reaches it next
                try:
                    leases = board.claim(self.worker_id, self.lease_s,
                                         limit=self.batch)
                except TransportError:
                    break
                if not leases:
                    try:
                        if board.finished():
                            break
                    except TransportError:
                        break
                    # peers hold every remaining cell; pace re-claims
                    # with the backoff policy and retry (their lease
                    # may expire — the stealing path)
                    idle_attempts += 1
                    if beat is not None:
                        beat.write(registry=self.stats.registry,
                                   progress={"state": "idle",
                                             "done": self.done})
                    self.clock.sleep(max(
                        self.poll_interval_s,
                        self.claim_backoff.delay(idle_attempts),
                    ))
                    continue
                idle_attempts = 0
                self.stats.add("lab.farm.leases_claimed", len(leases))
                newly_stolen = sum(1 for lease in leases if lease.stolen)
                if newly_stolen:
                    self.stolen += newly_stolen
                    self.stats.add("lab.farm.leases_stolen",
                                   newly_stolen)
                for start in range(0, len(leases), self.jobs):
                    chunk = leases[start:start + self.jobs]
                    if start:
                        try:
                            for lease in leases[start:]:
                                if board.renew(self.worker_id,
                                               lease.spec_hash,
                                               lease.fence,
                                               self.lease_s):
                                    self.stats.add(
                                        "lab.farm.lease_renewals"
                                    )
                        except TransportError:
                            # renewal is best-effort: missed renewals
                            # only widen the steal window
                            pass
                    report = self._scheduler().run(
                        [lease.spec for lease in chunk],
                        name="farm:%s" % self.worker_id,
                    )
                    if self._ship_chunk(board, chunk):
                        try:
                            self._settle_chunk(board, chunk, report)
                        except TransportError:
                            # partial settle: unreported leases just
                            # expire; outcomes already on the board
                            # stand
                            pass
                    if beat is not None:
                        beat.write(registry=self.stats.registry,
                                   progress={"state": "running",
                                             "done": self.done,
                                             "stolen": self.stolen})
                batches += 1
                if (self.max_batches is not None
                        and batches >= self.max_batches):
                    break
        finally:
            if beat is not None:
                beat.write(registry=self.stats.registry,
                           progress={"state": "exited",
                                     "done": self.done,
                                     "stolen": self.stolen},
                           force=True)
            board.close()
        return {
            "worker": self.worker_id,
            "done": self.done,
            "failed": self.failed,
            "stolen": self.stolen,
            "batches": batches,
        }
