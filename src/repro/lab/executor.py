"""Cell execution: turn a :class:`RunSpec` into its result payload.

The payload is *pure data about the simulation* — counters, timing
model outputs, energy, recovery report — and is fully determined by
the spec: no wall clocks, no process identity, no ordering effects.
That property is what makes the store content-addressed and lets a
sharded campaign stay bit-identical to a serial one (the cross-process
determinism tests pin it).

``payload_to_run_result`` rebuilds a :class:`~repro.sim.results
.RunResult` from a stored payload so the figure reproductions can
consume cached cells through their existing code paths. Telemetry
extras (histograms/spans/events) are not stored — a cached cell
carries counters and derived scalars, which is everything the figures
read.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.lab.spec import RunSpec
from repro.schemes.base import RecoveryReport
from repro.sim.results import RunResult

PAYLOAD_VERSION = 1

_RECOVERY_FIELDS = (
    "scheme", "stale_lines", "restored_lines", "nvm_reads",
    "nvm_writes", "verified", "recovery_time_ns", "ra_lines_cleared",
    "st_restored_lines", "probed_blocks", "probed_stale_lines",
)


def _recovery_payload(report: Optional[RecoveryReport]
                      ) -> Optional[Dict]:
    """A recovery report as JSON scalars.

    The oracle ``restored`` map (meta line -> counter tuple) is a test
    artifact proportional to the dirty set and is deliberately not
    persisted.
    """
    if report is None:
        return None
    fields = asdict(report)
    return {name: fields[name] for name in _RECOVERY_FIELDS}


def _filter_stats(stats: Dict[str, int], spec: RunSpec
                  ) -> Dict[str, int]:
    if not spec.metrics:
        return dict(stats)
    prefixes = tuple(spec.metrics)
    return {
        name: value for name, value in stats.items()
        if name.startswith(prefixes)
    }


def run_result_payload(spec: RunSpec, result: RunResult) -> Dict:
    """Serialize one bench run, applying the spec's metric selection."""
    return {
        "version": PAYLOAD_VERSION,
        "scheme": result.scheme,
        "workload": result.workload,
        "stats": _filter_stats(result.stats, spec),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "energy_read_nj": result.energy_read_nj,
        "energy_write_nj": result.energy_write_nj,
        "energy_static_nj": result.energy_static_nj,
        "dirty_fraction": result.dirty_fraction,
        "adr_hit_ratio": result.adr_hit_ratio,
        "recovery": _recovery_payload(result.recovery),
    }


def payload_to_run_result(payload: Dict) -> RunResult:
    """Rebuild a ``RunResult`` from a stored bench payload."""
    recovery = None
    if payload.get("recovery") is not None:
        recovery = RecoveryReport(**payload["recovery"])
    return RunResult(
        scheme=payload["scheme"],
        workload=payload["workload"],
        stats=dict(payload["stats"]),
        instructions=payload["instructions"],
        cycles=payload["cycles"],
        ipc=payload["ipc"],
        energy_read_nj=payload["energy_read_nj"],
        energy_write_nj=payload["energy_write_nj"],
        energy_static_nj=payload["energy_static_nj"],
        dirty_fraction=payload["dirty_fraction"],
        adr_hit_ratio=payload["adr_hit_ratio"],
        recovery=recovery,
        extras={"lab": True},
    )


# ----------------------------------------------------------------------
# executors by kind
# ----------------------------------------------------------------------
def _execute_bench(spec: RunSpec) -> Dict:
    from repro.bench.runner import run_one

    result = run_one(
        spec.system_config(), spec.scheme, spec.workload,
        spec.operations, seed=spec.seed,
        crash_and_recover=spec.crash_and_recover,
        telemetry=False,
    )
    return run_result_payload(spec, result)


def _execute_fuzz(spec: RunSpec) -> Dict:
    from repro.fuzz.executor import run_case
    from repro.fuzz.sampling import FuzzCase

    params = spec.params
    case = FuzzCase(
        index=params.get("index", 0),
        workload=spec.workload,
        scheme=spec.scheme,
        seed=spec.seed,
        operations=spec.operations,
        crash_frac=params["crash_frac"],
        prepare_frac=params["prepare_frac"],
        attack=params.get("attack"),
        attack_seed=params.get("attack_seed", 0),
    )
    result = run_case(case)
    return {
        "version": PAYLOAD_VERSION,
        "fuzz": result.to_dict(),
        "failed": result.failed,
    }


def execute(spec: RunSpec) -> Dict:
    """Run one cell and return its deterministic payload."""
    if spec.kind == "bench":
        return _execute_bench(spec)
    if spec.kind == "fuzz":
        return _execute_fuzz(spec)
    raise ConfigError("no executor for spec kind %r" % spec.kind)
