"""SIT node and line images.

An SIT node (and a counter block — structurally identical, Section II-C)
is one 64-byte line holding eight 56-bit counters plus a 64-bit MAC field.
Under STAR the MAC field is split 54/10: a 54-bit MAC and the 10 LSBs of
the *parent's* corresponding counter (counter-MAC synergization,
Section III-B).

Two representations exist:

* :class:`NodeImage` — the immutable in-NVM image of a node (what a line
  write persists).
* :class:`CachedNode` — the mutable cached copy, which additionally tracks
  the counter values as of the node's last persist so the controller can
  detect 2^10-increment overflows and force a flush.

User-data lines are modeled by :class:`DataLineImage`: ciphertext plus the
Synergy-style MAC side-band (54-bit MAC + 10-bit LSBs) persisted in the
same atomic line write (Section II-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import (
    COUNTER_BITS,
    LSB_BITS,
    MAC_BITS,
    MAC_FIELD_BITS,
    TREE_ARITY,
)
from repro.util.bitfield import check_width, pack_fields, unpack_fields

# image validation runs on every NVM line read/write; compare against
# precomputed limits and fall back to check_width only to raise its
# descriptive error
_COUNTER_LIMIT = 1 << COUNTER_BITS
_MAC_LIMIT = 1 << MAC_BITS
_LSB_LIMIT = 1 << LSB_BITS


def pack_mac_field(mac: int, lsbs: int) -> int:
    """Combine a 54-bit MAC and 10-bit LSBs into the 64-bit MAC field."""
    return pack_fields([(mac, MAC_BITS), (lsbs, LSB_BITS)])


def unpack_mac_field(field: int) -> Tuple[int, int]:
    """Split the 64-bit MAC field into (mac, lsbs)."""
    check_width(field, MAC_FIELD_BITS, "MAC field")
    mac, lsbs = unpack_fields(field, [MAC_BITS, LSB_BITS])
    return mac, lsbs


@dataclass(frozen=True, slots=True)
class NodeImage:
    """Immutable 64-byte image of a metadata node as stored in NVM."""

    counters: Tuple[int, ...]
    mac: int
    lsbs: int

    def __post_init__(self) -> None:
        counters = self.counters
        if len(counters) != TREE_ARITY:
            raise ValueError(
                "a node holds exactly %d counters" % TREE_ARITY
            )
        for counter in counters:
            if not 0 <= counter < _COUNTER_LIMIT:
                check_width(counter, COUNTER_BITS, "counter")
        if not 0 <= self.mac < _MAC_LIMIT:
            check_width(self.mac, MAC_BITS, "mac")
        if not 0 <= self.lsbs < _LSB_LIMIT:
            check_width(self.lsbs, LSB_BITS, "lsbs")

    @classmethod
    def zero(cls) -> "NodeImage":
        """The image of an untouched (freshly shredded) node.

        Always the same immutable instance: untouched-line reads mint
        one of these per miss, and the zero image has no per-call state.
        """
        return _ZERO_NODE

    @property
    def mac_field(self) -> int:
        return pack_mac_field(self.mac, self.lsbs)

    def with_lsbs(self, lsbs: int) -> "NodeImage":
        return NodeImage(self.counters, self.mac, lsbs)


_ZERO_NODE = NodeImage(counters=(0,) * TREE_ARITY, mac=0, lsbs=0)


@dataclass(frozen=True, slots=True)
class DataLineImage:
    """Immutable image of a user-data line: ciphertext + MAC side-band."""

    ciphertext: bytes
    mac: int
    lsbs: int

    def __post_init__(self) -> None:
        if not 0 <= self.mac < _MAC_LIMIT:
            check_width(self.mac, MAC_BITS, "mac")
        if not 0 <= self.lsbs < _LSB_LIMIT:
            check_width(self.lsbs, LSB_BITS, "lsbs")

    @property
    def mac_field(self) -> int:
        return pack_mac_field(self.mac, self.lsbs)


class CachedNode:
    """Mutable cached copy of a metadata node.

    ``persisted_counters`` mirrors the counter values currently stored in
    the node's NVM image. The difference between a live counter and its
    persisted value is the quantity that must fit into the 10 spare MAC
    bits of the corresponding child line; the controller force-flushes the
    node before any counter drifts 2^10 increments away (Section III-B).
    """

    __slots__ = ("counters", "persisted_counters")

    def __init__(self, counters: Tuple[int, ...]) -> None:
        if len(counters) != TREE_ARITY:
            raise ValueError("a node holds exactly %d counters" % TREE_ARITY)
        self.counters: List[int] = list(counters)
        self.persisted_counters: List[int] = list(counters)

    @classmethod
    def from_image(cls, image: NodeImage) -> "CachedNode":
        return cls(tuple(image.counters))

    @classmethod
    def zero(cls) -> "CachedNode":
        return cls((0,) * TREE_ARITY)

    def increment(self, slot: int) -> int:
        """Bump the counter for ``slot``; returns the new value."""
        if not 0 <= slot < TREE_ARITY:
            raise ValueError("slot %d out of range" % slot)
        self.counters[slot] += 1
        check_width(self.counters[slot], COUNTER_BITS, "counter")
        return self.counters[slot]

    def drift(self, slot: int) -> int:
        """Increments of ``slot`` since this node was last persisted."""
        return self.counters[slot] - self.persisted_counters[slot]

    def max_drift(self) -> int:
        """The largest per-counter drift (force-flush trigger)."""
        return max(
            live - persisted
            for live, persisted in zip(self.counters, self.persisted_counters)
        )

    def mark_persisted(self) -> None:
        """Record that the current counters now match the NVM image."""
        self.persisted_counters = list(self.counters)

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self.counters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CachedNode):
            return NotImplemented
        return self.counters == other.counters

    def __repr__(self) -> str:
        return "CachedNode(counters=%r)" % (self.counters,)
