"""SGX-integrity-tree authentication (Section II-C / III-B).

The MAC of an SIT node hashes the node's address, its own eight counters
and *one corresponding counter in its parent node* — this is what makes
SIT impossible to rebuild from its leaves, and what STAR exploits: the
only cache-resident modification caused by persisting a node is a single
counter increment in its parent.

Under STAR the persisted line additionally carries the 10 LSBs of that
parent counter in the spare MAC bits, and the MAC covers those LSBs so
they cannot be tampered with independently (Section III-B).

This module is pure policy — given identities, counters and parent
counters it mints and checks :class:`NodeImage`/:class:`DataLineImage`
values. The controller owns all state.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import LSB_BITS, MAC_BITS
from repro.crypto.hashing import (
    KeyedBlake2b,
    encode_bytes_part,
    encode_int_part,
    encode_str_part,
)
from repro.tree.geometry import NodeId
from repro.tree.node import DataLineImage, NodeImage
from repro.util.bitfield import mask

_LSB_MASK = mask(LSB_BITS)
_MAC_MASK = mask(MAC_BITS)

# message prefixes, pre-serialized once (identical bytes to passing the
# domain string through mac54 — pinned by tests/test_sit.py)
_NODE_PREFIX = encode_str_part("sit-node")
_DATA_PREFIX = encode_str_part("sit-data")


class SITAuthenticator:
    """Mints and verifies SIT node and user-data MACs under one key.

    MAC computations dominate the simulator's per-access cost (every
    persist mints one, every fetch and every recovery probe verifies
    one), and the same (inputs -> MAC) pairs recur constantly: a verify
    right after a mint, Osiris probes re-deriving candidate MACs, reads
    of lines whose image has not changed. Since ``mac54`` is a pure
    function of its inputs under a fixed key, both MAC kinds memoize in
    bounded per-instance caches (cleared wholesale when full, so the
    worst case stays O(1) memory without LRU bookkeeping on the hot
    path).
    """

    _CACHE_LIMIT = 1 << 16

    __slots__ = ("_key", "_node_mac_cache", "_data_mac_cache", "_prf")

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._node_mac_cache: dict = {}
        self._data_mac_cache: dict = {}
        self._prf = KeyedBlake2b(key, digest_size=8)

    # ------------------------------------------------------------------
    # metadata nodes (counter blocks and SIT nodes share one structure)
    # ------------------------------------------------------------------
    def node_mac(self, node: NodeId, counters: Sequence[int],
                 parent_counter: int, lsbs: int) -> int:
        """MAC = H(address, own counters, parent counter, stored LSBs)."""
        level, index = node
        cache_key = (level, index, tuple(counters), parent_counter, lsbs)
        cache = self._node_mac_cache
        mac = cache.get(cache_key)
        if mac is None:
            if len(cache) >= self._CACHE_LIMIT:
                cache.clear()
            # same message bytes mac54 would hash (pre-serialized
            # prefix + per-part encodings), same keyed digest
            encode = encode_int_part
            chunks = [_NODE_PREFIX, encode(level), encode(index)]
            for counter in counters:
                chunks.append(encode(counter))
            chunks.append(encode(parent_counter))
            chunks.append(encode(lsbs))
            digest = self._prf.digest(b"".join(chunks))
            mac = cache[cache_key] = (
                int.from_bytes(digest, "big") & _MAC_MASK
            )
        return mac

    def make_node_image(self, node: NodeId, counters: Sequence[int],
                        parent_counter: int) -> NodeImage:
        """The line image persisted when ``node`` is written to NVM.

        The stored LSBs are the low bits of the parent's corresponding
        counter — the counter-MAC synergization payload.
        """
        lsbs = parent_counter & _LSB_MASK
        mac = self.node_mac(node, counters, parent_counter, lsbs)
        return NodeImage(counters=tuple(counters), mac=mac, lsbs=lsbs)

    def verify_node_image(self, node: NodeId, image: NodeImage,
                          parent_counter: int) -> bool:
        """Check a fetched node against the parent's current counter."""
        expected = self.node_mac(
            node, image.counters, parent_counter, image.lsbs
        )
        return expected == image.mac

    # ------------------------------------------------------------------
    # user-data lines (children of the counter blocks)
    # ------------------------------------------------------------------
    def data_mac(self, address: int, ciphertext: bytes,
                 counter: int, lsbs: int) -> int:
        """MAC = H(content, address, encryption counter, stored LSBs)."""
        cache_key = (address, ciphertext, counter, lsbs)
        cache = self._data_mac_cache
        mac = cache.get(cache_key)
        if mac is None:
            if len(cache) >= self._CACHE_LIMIT:
                cache.clear()
            message = b"".join((
                _DATA_PREFIX,
                encode_int_part(address),
                encode_bytes_part(ciphertext),
                encode_int_part(counter),
                encode_int_part(lsbs),
            ))
            digest = self._prf.digest(message)
            mac = cache[cache_key] = (
                int.from_bytes(digest, "big") & _MAC_MASK
            )
        return mac

    def make_data_image(self, address: int, ciphertext: bytes,
                        counter: int) -> DataLineImage:
        """The data line + Synergy MAC side-band written in one access."""
        lsbs = counter & _LSB_MASK
        mac = self.data_mac(address, ciphertext, counter, lsbs)
        return DataLineImage(ciphertext=ciphertext, mac=mac, lsbs=lsbs)

    def verify_data_image(self, address: int, image: DataLineImage,
                          counter: int) -> bool:
        """Check a fetched data line against its encryption counter."""
        expected = self.data_mac(
            address, image.ciphertext, counter, image.lsbs
        )
        return expected == image.mac
