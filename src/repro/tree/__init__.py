"""Integrity trees: SIT geometry/authentication and Merkle helpers."""

from repro.tree.geometry import NodeId, TreeGeometry
from repro.tree.merkle import fold_level, merkle_levels, merkle_root
from repro.tree.node import (
    CachedNode,
    DataLineImage,
    NodeImage,
    pack_mac_field,
    unpack_mac_field,
)
from repro.tree.sit import SITAuthenticator

__all__ = [
    "CachedNode",
    "DataLineImage",
    "NodeId",
    "NodeImage",
    "SITAuthenticator",
    "TreeGeometry",
    "fold_level",
    "merkle_levels",
    "merkle_root",
    "pack_mac_field",
    "unpack_mac_field",
]
