"""Geometry of the 8-ary SGX integrity tree over a line-addressed memory.

Level 0 holds the counter blocks (the SIT leaves, parents of user-data
lines). Each higher level has ``ceil(previous / arity)`` nodes, up to a
top level with at most ``arity`` nodes whose common parent is the on-chip
root register. The root itself is *not* stored in NVM (Section II-C).

Nodes are identified by ``(level, index)`` pairs. A flat *metadata index*
(level 0 first, then level 1, ...) gives every in-NVM node a stable line
address used by the bitmap lines, the metadata cache and the NVM store.

Address arithmetic sits on the simulator's per-access hot path (every
data write resolves its counter block, walks ancestors and translates
node ids to metadata lines), so the pure functions here memoize per
instance: a geometry is immutable after construction and the id space is
small, so the memo dictionaries converge to the working set and stay
there.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.config import TREE_ARITY
from repro.errors import ConfigError

NodeId = Tuple[int, int]
"""(level, index) with level 0 = counter blocks."""


class TreeGeometry:
    """Shape calculations for the SIT over ``num_data_lines`` lines."""

    __slots__ = (
        "num_data_lines", "arity", "level_counts", "_level_offsets",
        "num_levels", "total_nodes", "top_level",
        "_meta_index_memo", "_node_at_memo", "_parent_memo",
        "_children_memo",
    )

    def __init__(self, num_data_lines: int, arity: int = TREE_ARITY) -> None:
        if num_data_lines < 1:
            raise ConfigError("memory must contain at least one data line")
        if arity < 2:
            raise ConfigError("tree arity must be at least 2")
        self.num_data_lines = num_data_lines
        self.arity = arity
        counts: List[int] = [-(-num_data_lines // arity)]
        while counts[-1] > arity:
            counts.append(-(-counts[-1] // arity))
        self.level_counts: Tuple[int, ...] = tuple(counts)
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        self._level_offsets: Tuple[int, ...] = tuple(offsets)
        self.num_levels: int = len(counts)
        """Number of in-NVM tree levels (the on-chip root is extra)."""
        self.total_nodes: int = offsets[-1]
        """Total in-NVM metadata lines (counter blocks + SIT nodes)."""
        self.top_level: int = len(counts) - 1
        """The highest in-NVM level; its nodes are children of the root."""
        self._meta_index_memo: Dict[NodeId, int] = {}
        self._node_at_memo: Dict[int, NodeId] = {}
        self._parent_memo: Dict[NodeId, NodeId] = {}
        self._children_memo: Dict[NodeId, Tuple[int, ...]] = {}

    def check_node(self, node: NodeId) -> NodeId:
        """Validate that ``node`` exists in this geometry."""
        level, index = node
        if not 0 <= level < self.num_levels:
            raise ValueError("level %d out of range" % level)
        if not 0 <= index < self.level_counts[level]:
            raise ValueError(
                "index %d out of range for level %d" % (index, level)
            )
        return node

    def meta_index(self, node: NodeId) -> int:
        """Flat metadata line index of ``node`` (level-major order)."""
        memo = self._meta_index_memo
        result = memo.get(node)
        if result is None:
            level, index = self.check_node(node)
            result = memo[node] = self._level_offsets[level] + index
        return result

    def node_at(self, meta_index: int) -> NodeId:
        """Inverse of :meth:`meta_index`."""
        memo = self._node_at_memo
        node = memo.get(meta_index)
        if node is None:
            if not 0 <= meta_index < self.total_nodes:
                raise ValueError(
                    "metadata index %d out of range" % meta_index
                )
            for level in range(self.num_levels):
                if meta_index < self._level_offsets[level + 1]:
                    node = (level, meta_index - self._level_offsets[level])
                    memo[meta_index] = node
                    return node
            raise AssertionError("unreachable")
        return node

    def parent_of(self, node: NodeId) -> NodeId:
        """Parent node id; raises for top-level nodes (their parent is
        the on-chip root, which has no NVM identity)."""
        memo = self._parent_memo
        parent = memo.get(node)
        if parent is None:
            level, index = self.check_node(node)
            if level == self.top_level:
                raise ValueError(
                    "top-level nodes are children of the root"
                )
            parent = memo[node] = (level + 1, index // self.arity)
        return parent

    def is_top_level(self, node: NodeId) -> bool:
        return node[0] == self.top_level

    def slot_in_parent(self, node: NodeId) -> int:
        """Which of the parent's counters corresponds to this node."""
        self.check_node(node)
        return node[1] % self.arity

    def data_slot(self, data_line: int) -> int:
        """Which counter of its counter block covers ``data_line``."""
        if not 0 <= data_line < self.num_data_lines:
            raise ValueError("data line %d out of range" % data_line)
        return data_line % self.arity

    def counter_block_for(self, data_line: int) -> NodeId:
        """The level-0 node (counter block) covering ``data_line``."""
        if not 0 <= data_line < self.num_data_lines:
            raise ValueError("data line %d out of range" % data_line)
        return (0, data_line // self.arity)

    def children_of(self, node: NodeId) -> List[int]:
        """Child identifiers of ``node``.

        For level 0 the children are *data line* numbers; for level > 0
        they are the indices of level - 1 nodes. Edge nodes may have fewer
        than ``arity`` children.
        """
        memo = self._children_memo
        children = memo.get(node)
        if children is None:
            level, index = self.check_node(node)
            first = index * self.arity
            if level == 0:
                last = min(first + self.arity, self.num_data_lines)
            else:
                last = min(first + self.arity, self.level_counts[level - 1])
            children = memo[node] = tuple(range(first, last))
        # a fresh list per call: callers may index, slice or mutate
        return list(children)

    def ancestors_of(self, node: NodeId) -> Iterator[NodeId]:
        """Yield the proper in-NVM ancestors of ``node``, bottom-up."""
        current = self.check_node(node)
        while not self.is_top_level(current):
            current = self.parent_of(current)
            yield current

    def _check_data_line(self, data_line: int) -> None:
        if not 0 <= data_line < self.num_data_lines:
            raise ValueError("data line %d out of range" % data_line)
