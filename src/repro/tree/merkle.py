"""Generic keyed Merkle folding.

Shared by the cache-tree (Section III-E), the Bonsai Merkle tree used by
the Triad-NVM/Osiris extension baselines, and a handful of tests. A level
is reduced by hashing groups of ``arity`` values; missing group members
hash as zero, which matches the paper's zero set-MAC convention.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config import TREE_ARITY
from repro.crypto.hashing import keyed_hash


def fold_level(key: bytes, values: Sequence[int], arity: int,
               domain: str, level: int) -> List[int]:
    """Hash ``values`` in groups of ``arity`` into the next level up."""
    if arity < 2:
        raise ValueError("arity must be at least 2")
    parents: List[int] = []
    for start in range(0, len(values), arity):
        group = list(values[start:start + arity])
        group += [0] * (arity - len(group))
        parents.append(keyed_hash(key, domain, level, start // arity, *group))
    return parents


def merkle_root(key: bytes, leaves: Sequence[int],
                arity: int = TREE_ARITY, domain: str = "merkle") -> int:
    """The root of the keyed Merkle tree over ``leaves``.

    An empty leaf set has the conventional root 0. A single leaf is still
    folded once so that the root never equals a leaf value verbatim.
    """
    if not leaves:
        return 0
    level = 0
    values = list(leaves)
    while len(values) > 1 or level == 0:
        values = fold_level(key, values, arity, domain, level)
        level += 1
    return values[0]


def merkle_levels(key: bytes, leaves: Sequence[int],
                  arity: int = TREE_ARITY,
                  domain: str = "merkle") -> List[List[int]]:
    """All levels, leaves first; used to inspect/verify partial trees."""
    if not leaves:
        return [[]]
    levels = [list(leaves)]
    level = 0
    while len(levels[-1]) > 1 or level == 0:
        levels.append(
            fold_level(key, levels[-1], arity, domain, level)
        )
        level += 1
    return levels
