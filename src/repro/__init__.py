"""STAR: a write-friendly, fast-recovery scheme for security metadata in
non-volatile memories — a full reproduction of the HPCA 2021 paper.

Quickstart::

    from repro import Machine, sim_config, make_workload

    config = sim_config()
    machine = Machine(config, scheme="star")
    workload = make_workload("btree", config.num_data_lines,
                             operations=500)
    machine.run(workload.ops())
    machine.crash()
    report = machine.recover(raise_on_failure=True)
    assert machine.oracle_check(report)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    CacheConfig,
    CPUConfig,
    NVMTimings,
    StarConfig,
    SystemConfig,
    paper_config,
    sim_config,
    small_config,
)
from repro.errors import (
    AllocationError,
    ConfigError,
    IntegrityError,
    RecoveryError,
    ReproError,
    VerificationError,
)
from repro.schemes import SIT_SCHEMES, RecoveryReport, make_scheme
from repro.sim import Attacker, Machine, RunResult
from repro.workloads import (
    ALL_WORKLOADS,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "AllocationError",
    "Attacker",
    "CPUConfig",
    "CacheConfig",
    "ConfigError",
    "IntegrityError",
    "MACRO_WORKLOADS",
    "MICRO_WORKLOADS",
    "Machine",
    "NVMTimings",
    "RecoveryError",
    "RecoveryReport",
    "ReproError",
    "RunResult",
    "SIT_SCHEMES",
    "StarConfig",
    "SystemConfig",
    "VerificationError",
    "make_scheme",
    "make_workload",
    "paper_config",
    "sim_config",
    "small_config",
]
