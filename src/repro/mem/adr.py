"""The asynchronous-DRAM-refresh (ADR) domain in the memory controller.

ADR is a small battery-backed region: whatever resides in it when power
fails is flushed to NVM by the residual battery energy (Section III-C).
STAR
keeps its working set of bitmap lines here. This module models exactly
that contract:

* a bounded set of lines managed with LRU,
* overflow spills the LRU line to the NVM recovery area (counted as a
  runtime NVM write),
* at a crash, :meth:`AdrRegion.flush_on_power_failure` copies every
  resident line to the recovery area *without* counting runtime traffic.

Traffic accounting (Table II / Fig. 10): only accesses that actually
touch NVM count as misses. The *first* touch of a bitmap line — one the
LRU never spilled, so the recovery area holds no copy — materializes as
an all-zero line inside ADR for free; charging it an ``nvm.ra_reads``
would invent traffic the hardware never issues. Those first touches are
tallied under ``adr.cold_misses`` instead of ``adr.misses``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from repro.mem.nvm import NVM, BitmapLineKey
from repro.util.lru import LRUCache
from repro.util.stats import Stats

_ABSENT = object()
"""Miss sentinel: bitmap lines are ints, so ``None`` is not safe."""


class AdrRegion:
    """Battery-backed storage for bitmap lines, spilled by LRU."""

    __slots__ = ("_lines", "_nvm", "stats", "spilled",
                 "_c_accesses", "_c_hits", "_resident_gauge")

    def __init__(self, capacity_lines: int, nvm: NVM,
                 stats: Optional[Stats] = None) -> None:
        self._lines: LRUCache[BitmapLineKey, int] = LRUCache(capacity_lines)
        self._nvm = nvm
        self.stats = stats if stats is not None else nvm.stats
        self.spilled: Set[BitmapLineKey] = set()
        """Lines whose *live* copy sits in the recovery area right now
        (spilled by LRU and not since reloaded). A line must never be
        both resident and spilled — the recovery-area copy of a resident
        line is stale by design, and a spilled line claimed resident
        would make the crash flush double-write it. Audited by
        :func:`repro.sim.validate.audit_machine` (§III-C state)."""
        # bound once: load() fires on every bitmap-line access
        registry = self.stats.registry
        self._c_accesses = registry.counter("adr.accesses")
        self._c_hits = registry.counter("adr.hits")
        self._resident_gauge = (
            registry.gauge("adr.resident_lines")
            if registry.enabled else None
        )

    @property
    def capacity(self) -> int:
        return self._lines.capacity

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, key: BitmapLineKey) -> bool:
        return key in self._lines

    def load(self, key: BitmapLineKey) -> int:
        """Bring a bitmap line into ADR, spilling by LRU if needed.

        A hit costs nothing; a miss reads the line from the recovery area
        and may write the spilled LRU line back — both counted as NVM
        traffic (this is the traffic of Fig. 10 / the hit ratio of
        Table II). A *cold* miss — the line was never spilled, so no
        recovery-area copy exists — materializes as zero with no NVM
        traffic and counts under ``adr.cold_misses``.
        """
        self._c_accesses.value += 1
        # hit fast path: one dict probe + the LRU touch (load() fires on
        # every bitmap-line access, so the double lookup and a gauge set
        # per hit were the hottest lines of the STAR hook chain)
        entries = self._lines._entries
        value = entries.get(key, _ABSENT)
        if value is not _ABSENT:
            self._c_hits.value += 1
            entries.move_to_end(key)
            return value
        if self._nvm.ra_is_touched(key):
            self.stats.add("adr.misses")
            value = self._nvm.read_ra(key)
            self.spilled.discard(key)
        else:
            # first touch: the hardware allocates a zeroed ADR line;
            # there is nothing in the recovery area to read
            self.stats.add("adr.cold_misses")
            value = 0
        evicted = self._lines.put(key, value)
        if evicted is not None:
            spilled_key, spilled_value = evicted
            self.stats.add("adr.spills")
            self.stats.event("ra_spill", layer=spilled_key[0],
                             index=spilled_key[1])
            self._nvm.write_ra(spilled_key, spilled_value)
            self.spilled.add(spilled_key)
        # residency only changes on a miss (the insert above), so the
        # gauge's value and high-watermark are maintained exactly by
        # setting it here alone
        if self._resident_gauge is not None:
            self._resident_gauge.set(len(self._lines))
        return value

    def store(self, key: BitmapLineKey, value: int) -> None:
        """Update a line that is already resident in ADR.

        A store **refreshes recency** — it routes through
        :meth:`LRUCache.put`, so the updated line becomes the most
        recently used and is the last candidate for an LRU spill. That
        is deliberate: the bitmap-line manager always ``load``s a line
        immediately before storing it, so writes are touches in the
        recency order exactly like the hardware's ADR, and a hot line
        being rewritten must not age toward eviction. ``peek`` is the
        deliberate opposite — a recency-neutral read for audits and
        telemetry. Any array-backed replacement (the batched pipeline)
        must reproduce this order: *load and store refresh, peek does
        not*, pinned by ``tests/test_adr_layout.py``.
        """
        entries = self._lines._entries
        if key not in entries:
            raise KeyError("bitmap line %r not resident in ADR" % (key,))
        entries[key] = value
        entries.move_to_end(key)

    def peek(self, key: BitmapLineKey) -> int:
        """Read a resident line without traffic or recency effects."""
        return self._lines.peek(key)

    def items(self) -> Iterator[Tuple[BitmapLineKey, int]]:
        return self._lines.items()

    def flush_on_power_failure(self) -> None:
        """Battery flush at a crash: persist residents, free of charge.

        After the flush the *live* copy of every formerly-resident line
        sits in the recovery area, so residency state is reconciled to
        match: the flushed keys join ``spilled``, the LRU empties (power
        is gone — ADR holds nothing), and ``adr.resident_lines`` drops
        to zero. Without this, post-crash telemetry and
        :func:`repro.sim.validate.audit_machine` would see a line as
        both flushed-to-RA and resident, violating the §III-C
        disjointness invariant documented on :attr:`spilled`.
        """
        for key, value in self._lines.items():
            self._nvm.flush_ra(key, value)
            self.spilled.add(key)
        self._lines.clear()
        if self._resident_gauge is not None:
            self._resident_gauge.set(0)

    def hit_ratio(self) -> float:
        """Fraction of bitmap-line accesses served without NVM traffic.

        Cold misses cost nothing (no recovery-area copy exists to read),
        so the ratio counts every access that did *not* issue an RA
        read: ``(accesses - misses) / accesses``.
        """
        accesses = self._c_accesses.value
        if accesses == 0:
            return 0.0
        return (accesses - self.stats.get("adr.misses")) / accesses
