"""Start-Gap wear leveling (Qureshi et al., MICRO'09 — the paper's
reference [26] for PCM lifetime management).

The paper motivates STAR with PCM's limited endurance; production PCM
controllers pair low write traffic with wear leveling. Start-Gap is the
canonical algebraic scheme: the physical space holds one spare line (the
*gap*); every ``gap_write_interval`` writes the line adjacent to the gap
is copied into it, rotating the mapping one step, so a logically hot
line migrates across the whole device over time.

Mapping (with ``N`` logical lines and ``N + 1`` physical slots)::

    physical = (logical + start) mod N
    if physical >= gap:  physical += 1

``gap`` walks from N down to 0; when it reaches 0 it resets to N and
``start`` advances — after N full gap rotations every logical line has
visited every physical slot.

:class:`WearLevelingNVM` layers the remapper over the data region of
the plain :class:`~repro.mem.nvm.NVM`; gap moves cost one extra line
read + write, counted as regular traffic.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.mem.nvm import NVM
from repro.tree.node import DataLineImage
from repro.util.stats import Stats


class StartGapRemapper:
    """The Start-Gap address algebra plus its rotation schedule."""

    def __init__(self, num_lines: int,
                 gap_write_interval: int = 100) -> None:
        if num_lines < 1:
            raise ValueError("need at least one line")
        if gap_write_interval < 1:
            raise ValueError("gap interval must be >= 1")
        self.num_lines = num_lines
        self.gap_write_interval = gap_write_interval
        self.start = 0
        self.gap = num_lines  # the spare slot, initially at the end
        self._writes_since_move = 0
        self.gap_moves = 0

    def translate(self, logical: int) -> int:
        """Logical line -> physical slot (always a bijection)."""
        if not 0 <= logical < self.num_lines:
            raise ValueError("logical line %d out of range" % logical)
        physical = (logical + self.start) % self.num_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def note_write(self) -> Optional[Tuple[int, int]]:
        """Account one write; when this write triggers a gap move,
        returns the (source, destination) physical slots of the
        migration copy."""
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_write_interval:
            return None
        self._writes_since_move = 0
        return self._move_gap()

    def _move_gap(self) -> Tuple[int, int]:
        """Rotate the gap one step; returns the migration copy.

        The content adjacent to the gap moves into it and the vacated
        slot becomes the new gap. When the gap sits at slot 0 the
        adjacency wraps: slot N's content moves into slot 0 and the
        ``start`` register advances — that is what keeps the algebraic
        mapping consistent across the wrap.
        """
        self.gap_moves += 1
        destination = self.gap
        if self.gap == 0:
            source = self.num_lines
            self.start = (self.start + 1) % self.num_lines
        else:
            source = self.gap - 1
        self.gap = source
        return source, destination


class WearLevelingNVM(NVM):
    """An NVM whose data region is start-gap remapped.

    Metadata/RA/ST regions keep their identity mapping: the paper's
    wear problem concentrates on data and shadow regions, and remapping
    metadata would complicate the recovery walk without changing any
    evaluated quantity.
    """

    def __init__(self, num_data_lines: int,
                 gap_write_interval: int = 100,
                 stats: Optional[Stats] = None) -> None:
        super().__init__(stats)
        self.remapper = StartGapRemapper(
            num_data_lines, gap_write_interval
        )

    def read_data(self, line: int) -> Optional[DataLineImage]:
        return super().read_data(self.remapper.translate(line))

    def peek_data(self, line: int) -> Optional[DataLineImage]:
        return super().peek_data(self.remapper.translate(line))

    def tamper_data(self, line: int, image: DataLineImage) -> None:
        super().tamper_data(self.remapper.translate(line), image)

    def write_data(self, line: int, image: DataLineImage) -> None:
        super().write_data(self.remapper.translate(line), image)
        migration = self.remapper.note_write()
        if migration is not None:
            source, destination = migration
            self.stats.add("wearlevel.gap_moves")
            # the migration is a real device read + write, routed
            # through the counted API so the address trace sees it too
            self.migrate_data(source, destination)
