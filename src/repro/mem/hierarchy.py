"""The CPU-side cache hierarchy (L1 / L2 / LLC).

The hierarchy filters the workload's reference stream: only LLC misses
and write-backs reach the secure memory controller. Persistent workloads
(the paper's micro-benchmarks) write durable data with ``clwb``-style
semantics — the store is installed clean and immediately forwarded to the
memory controller — while scratch stores stay dirty in cache and reach
memory only through LLC evictions.

``access`` returns a :class:`MemoryEvent` describing what the memory
controller must do (nothing, a line fill, a line write-back, or both),
plus the hit level for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import CacheConfig
from repro.mem.cache import SetAssociativeCache
from repro.util.stats import Stats


@dataclass
class MemoryEvent:
    """What one CPU access asks of the memory controller."""

    hit_level: Optional[int]
    """0-based cache level that hit, or ``None`` for a memory access."""

    fills: int = 0
    """Line fills required from memory (LLC read misses)."""

    writebacks: List[int] = field(default_factory=list)
    """Dirty line addresses evicted from the LLC toward memory."""

    persists: List[int] = field(default_factory=list)
    """Line addresses written through to memory (persistent stores)."""


class CacheHierarchy:
    """An inclusive-fill, write-back, write-allocate hierarchy."""

    def __init__(self, levels: Sequence[CacheConfig],
                 stats: Optional[Stats] = None) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one cache level")
        self.stats = stats if stats is not None else Stats()
        self._levels = [
            SetAssociativeCache(config, name="L%d" % (index + 1))
            for index, config in enumerate(levels)
        ]

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def access(self, addr: int, is_write: bool,
               persistent: bool = True) -> MemoryEvent:
        """Run one CPU reference through the hierarchy."""
        if is_write and persistent:
            return self._persistent_write(addr)
        if is_write:
            return self._scratch_write(addr)
        return self._read(addr)

    # ------------------------------------------------------------------
    # access kinds
    # ------------------------------------------------------------------
    def _read(self, addr: int) -> MemoryEvent:
        hit_level = self._probe(addr)
        if hit_level is not None:
            self.stats.add("cpu.read_hits")
            self._fill_through(addr, upto=hit_level, dirty=False)
            return MemoryEvent(hit_level=hit_level)
        self.stats.add("cpu.read_misses")
        event = MemoryEvent(hit_level=None, fills=1)
        self._fill_through(addr, upto=self.num_levels, dirty=False,
                           event=event)
        return event

    def _persistent_write(self, addr: int) -> MemoryEvent:
        """A durable store: install clean everywhere, write through."""
        hit_level = self._probe(addr)
        if hit_level is not None:
            self.stats.add("cpu.write_hits")
        else:
            self.stats.add("cpu.write_misses")
        event = MemoryEvent(hit_level=hit_level, persists=[addr])
        upto = hit_level if hit_level is not None else self.num_levels
        self._fill_through(addr, upto=upto, dirty=False, event=event)
        # the write-through clears any stale dirtiness of this line
        for level in self._levels:
            line = level.lookup(addr, touch=False)
            if line is not None:
                line.dirty = False
        return event

    def _scratch_write(self, addr: int) -> MemoryEvent:
        """A non-durable store: dirty in L1, written back on eviction."""
        hit_level = self._probe(addr)
        if hit_level is not None:
            self.stats.add("cpu.write_hits")
        else:
            self.stats.add("cpu.write_misses")
        event = MemoryEvent(hit_level=hit_level)
        if hit_level is None:
            event.fills = 1
            upto = self.num_levels
        else:
            upto = hit_level
        self._fill_through(addr, upto=upto, dirty=False, event=event)
        line = self._levels[0].lookup(addr, touch=False)
        assert line is not None
        line.dirty = True
        return event

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _probe(self, addr: int) -> Optional[int]:
        for index, level in enumerate(self._levels):
            if level.lookup(addr, touch=True) is not None:
                return index
        return None

    def _fill_through(self, addr: int, upto: int, dirty: bool,
                      event: Optional[MemoryEvent] = None) -> None:
        """Install ``addr`` into levels [0, upto), evicting as needed."""
        for index in range(min(upto, self.num_levels)):
            level = self._levels[index]
            if level.lookup(addr, touch=True) is not None:
                continue
            victim = level.victim_for(addr)
            if victim is not None:
                level.remove(victim.addr)
                self._spill(index, victim.addr, victim.dirty, event)
            level.insert(addr, dirty=dirty)

    def _spill(self, from_level: int, addr: int, dirty: bool,
               event: Optional[MemoryEvent]) -> None:
        """Push an evicted line toward memory (write-back on dirty)."""
        if not dirty:
            return
        next_index = from_level + 1
        if next_index >= self.num_levels:
            self.stats.add("cpu.llc_writebacks")
            if event is not None:
                event.writebacks.append(addr)
            return
        level = self._levels[next_index]
        line = level.lookup(addr, touch=False)
        if line is not None:
            line.dirty = True
            return
        victim = level.victim_for(addr)
        if victim is not None:
            level.remove(victim.addr)
            self._spill(next_index, victim.addr, victim.dirty, event)
        level.insert(addr, dirty=True)

    def drop(self) -> None:
        """Lose all cached state (a crash)."""
        for level in self._levels:
            level.clear()
