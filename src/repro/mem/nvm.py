"""The non-volatile memory device model.

A sparse line store with four regions, mirroring the paper's layout:

* **data** — user-data lines (ciphertext + MAC side-band, Synergy-style).
* **meta** — security metadata lines (counter blocks + SIT nodes), indexed
  by the flat metadata index of :class:`~repro.tree.geometry.TreeGeometry`.
* **ra** — the Recovery Area holding spilled bitmap lines (Section III-C).
* **st** — the Anubis shadow table region (only used by that baseline).

Every read/write bumps a named stat counter; the energy and write-traffic
results (Figs. 11 and 13) are computed from these counters. ``tamper_*``
methods mutate lines *without* touching the counters — they model an
attacker with physical access to the DIMM and are used by the attack
tests (Section III-E/F).

Untouched lines read back as their "shredded" zero state: a fresh secure
NVM is assumed to be initialized with zero counters (Silent Shredder);
reads of never-written lines are flagged so the integrity machinery can
skip MAC checks that would otherwise need a bootstrapping pass.

Every access method is hot (they ARE the simulator's traffic), so the
per-region counters are bound once as Counter objects instead of going
through the ``Stats.add`` name lookup. ``stats`` is a property: the
machine swaps in a fresh Stats namespace around recovery, and the setter
rebinds the counters to the new registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.tree.node import DataLineImage, NodeImage
from repro.util.stats import Stats

BitmapLineKey = Tuple[int, int]
"""(layer, index) of a bitmap line in the multi-layer index."""


class NVM:
    """Sparse, stat-counting non-volatile line store."""

    def __init__(self, stats: Optional[Stats] = None) -> None:
        self._stats = stats if stats is not None else Stats()
        self._data: Dict[int, DataLineImage] = {}
        self._meta: Dict[int, NodeImage] = {}
        self._ra: Dict[BitmapLineKey, int] = {}
        self._st: Dict[int, object] = {}
        self.wear: Dict[Tuple[str, object], int] = {}
        """Per-line write counts, keyed by (region, line key) — the
        input to the endurance model (PCM cells wear out after 1e7-1e9
        writes; limited endurance is the paper's core motivation)."""
        self.trace: Optional[list] = None
        """When set to a list, every access appends
        ``(op, region, key)`` — the address feed for the bank-level
        device timing model."""
        self._bind_counters()

    @property
    def stats(self) -> Stats:
        return self._stats

    @stats.setter
    def stats(self, value: Stats) -> None:
        self._stats = value
        self._bind_counters()

    def _bind_counters(self) -> None:
        registry = self._stats.registry
        self._c_data_reads = registry.counter("nvm.data_reads")
        self._c_data_writes = registry.counter("nvm.data_writes")
        self._c_meta_reads = registry.counter("nvm.meta_reads")
        self._c_meta_writes = registry.counter("nvm.meta_writes")
        self._c_ra_reads = registry.counter("nvm.ra_reads")
        self._c_ra_writes = registry.counter("nvm.ra_writes")
        self._c_st_reads = registry.counter("nvm.st_reads")
        self._c_st_writes = registry.counter("nvm.st_writes")

    def _wear_out(self, region: str, key) -> None:
        wear_key = (region, key)
        self.wear[wear_key] = self.wear.get(wear_key, 0) + 1

    # ------------------------------------------------------------------
    # user data region
    # ------------------------------------------------------------------
    def read_data(self, line: int) -> Optional[DataLineImage]:
        """Read a data line; ``None`` when it was never written."""
        self._c_data_reads.value += 1
        if self.trace is not None:
            self.trace.append(("r", "data", line))
        return self._data.get(line)

    def write_data(self, line: int, image: DataLineImage) -> None:
        self._c_data_writes.value += 1
        if self.trace is not None:
            self.trace.append(("w", "data", line))
        wear_key = ("data", line)
        wear = self.wear
        wear[wear_key] = wear.get(wear_key, 0) + 1
        # the touched-lines gauge only moves on first touch
        if line not in self._data:
            self._stats.gauge_set(
                "nvm.data_lines_touched", len(self._data) + 1
            )
        self._data[line] = image

    def migrate_data(self, source: int, destination: int) -> bool:
        """Move a data line between physical slots, counted.

        The wear-leveling gap rotation is real device traffic: one
        line read at ``source``, one line write at ``destination``.
        Counts, wear and the address trace all see it; the touched
        gauge does not move (one slot vacated, one filled). Returns
        ``False`` (and counts nothing) when ``source`` holds no line.
        """
        content = self._data.pop(source, None)
        if content is None:
            return False
        self._c_data_reads.value += 1
        self._c_data_writes.value += 1
        if self.trace is not None:
            self.trace.append(("r", "data", source))
            self.trace.append(("w", "data", destination))
        self._wear_out("data", destination)
        self._data[destination] = content
        return True

    def peek_data(self, line: int) -> Optional[DataLineImage]:
        """Read without counting traffic (test oracles, attackers)."""
        return self._data.get(line)

    def data_lines(self):
        """All touched data line numbers, ascending (oracle scans)."""
        return sorted(self._data)

    # ------------------------------------------------------------------
    # security metadata region
    # ------------------------------------------------------------------
    def read_meta(self, meta_index: int) -> Tuple[NodeImage, bool]:
        """Read a metadata line; the flag is False for untouched lines."""
        self._c_meta_reads.value += 1
        if self.trace is not None:
            self.trace.append(("r", "meta", meta_index))
        image = self._meta.get(meta_index)
        if image is None:
            return NodeImage.zero(), False
        return image, True

    def write_meta(self, meta_index: int, image: NodeImage) -> None:
        self._c_meta_writes.value += 1
        if self.trace is not None:
            self.trace.append(("w", "meta", meta_index))
        wear_key = ("meta", meta_index)
        wear = self.wear
        wear[wear_key] = wear.get(wear_key, 0) + 1
        if meta_index not in self._meta:
            self._stats.gauge_set(
                "nvm.meta_lines_touched", len(self._meta) + 1
            )
        self._meta[meta_index] = image

    def flush_meta(self, meta_index: int, image: NodeImage) -> None:
        """ADR battery flush of a queued metadata write at power
        failure: durable, but not runtime traffic."""
        self._meta[meta_index] = image

    def peek_meta(self, meta_index: int) -> Optional[NodeImage]:
        return self._meta.get(meta_index)

    def meta_lines(self):
        """All touched metadata line numbers, ascending (oracle scans)."""
        return sorted(self._meta)

    def meta_is_touched(self, meta_index: int) -> bool:
        return meta_index in self._meta

    # ------------------------------------------------------------------
    # recovery area (spilled bitmap lines)
    # ------------------------------------------------------------------
    def read_ra(self, key: BitmapLineKey) -> int:
        self._c_ra_reads.value += 1
        if self.trace is not None:
            self.trace.append(("r", "ra", key))
        return self._ra.get(key, 0)

    def write_ra(self, key: BitmapLineKey, value: int) -> None:
        self._c_ra_writes.value += 1
        if self.trace is not None:
            self.trace.append(("w", "ra", key))
        wear_key = ("ra", key)
        wear = self.wear
        wear[wear_key] = wear.get(wear_key, 0) + 1
        if key not in self._ra:
            self._stats.gauge_set(
                "nvm.ra_lines_touched", len(self._ra) + 1
            )
        self._ra[key] = value

    def flush_ra(self, key: BitmapLineKey, value: int) -> None:
        """ADR battery flush at power failure: not runtime traffic."""
        self._ra[key] = value

    def peek_ra(self, key: BitmapLineKey) -> int:
        return self._ra.get(key, 0)

    def ra_is_touched(self, key: BitmapLineKey) -> bool:
        """Whether the recovery area holds a copy of this bitmap line."""
        return key in self._ra

    # ------------------------------------------------------------------
    # Anubis shadow table region
    # ------------------------------------------------------------------
    def read_st(self, slot: int) -> Optional[object]:
        self._c_st_reads.value += 1
        if self.trace is not None:
            self.trace.append(("r", "st", slot))
        return self._st.get(slot)

    def write_st(self, slot: int, entry: object) -> None:
        self._c_st_writes.value += 1
        if self.trace is not None:
            self.trace.append(("w", "st", slot))
        wear_key = ("st", slot)
        wear = self.wear
        wear[wear_key] = wear.get(wear_key, 0) + 1
        if slot not in self._st:
            self._stats.gauge_set(
                "nvm.st_slots_touched", len(self._st) + 1
            )
        self._st[slot] = entry

    def clear_st(self, slot: int) -> None:
        """Invalidate a shadow-table slot (tag reuse; not NVM traffic).

        Models Anubis' slot tags becoming invalid when the shadowed cache
        way is reassigned — the stale entry must not win over a newer one
        during the recovery scan.
        """
        self._st.pop(slot, None)

    def st_slots(self):
        """All occupied shadow-table slots (recovery scan)."""
        return sorted(self._st)

    # ------------------------------------------------------------------
    # attacker interface: mutate lines without touching stat counters
    # ------------------------------------------------------------------
    def tamper_data(self, line: int, image: DataLineImage) -> None:
        self._data[line] = image

    def tamper_meta(self, meta_index: int, image: NodeImage) -> None:
        self._meta[meta_index] = image

    def tamper_ra(self, key: BitmapLineKey, value: int) -> None:
        self._ra[key] = value

    # ------------------------------------------------------------------
    # aggregate traffic
    # ------------------------------------------------------------------
    def total_writes(self) -> int:
        """All NVM line writes, every region."""
        return (
            self._c_data_writes.value
            + self._c_meta_writes.value
            + self._c_ra_writes.value
            + self._c_st_writes.value
        )

    def total_reads(self) -> int:
        """All NVM line reads, every region."""
        return (
            self._c_data_reads.value
            + self._c_meta_reads.value
            + self._c_ra_reads.value
            + self._c_st_reads.value
        )
