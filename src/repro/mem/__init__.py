"""Memory substrate: NVM device, caches, ADR, write queue, layout."""

from repro.mem.adr import AdrRegion
from repro.mem.cache import CacheLine, EvictionDeadlock, SetAssociativeCache
from repro.mem.hierarchy import CacheHierarchy, MemoryEvent
from repro.mem.layout import MemoryLayout, index_layer_counts
from repro.mem.device import PCMDevice
from repro.mem.nvm import NVM
from repro.mem.wearlevel import StartGapRemapper, WearLevelingNVM
from repro.mem.writequeue import WritePendingQueue

__all__ = [
    "AdrRegion",
    "CacheHierarchy",
    "CacheLine",
    "EvictionDeadlock",
    "MemoryEvent",
    "MemoryLayout",
    "NVM",
    "PCMDevice",
    "SetAssociativeCache",
    "StartGapRemapper",
    "WearLevelingNVM",
    "WritePendingQueue",
    "index_layer_counts",
]
