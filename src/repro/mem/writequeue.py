"""The memory controller's write-pending queue (WPQ) timing model.

PCM writes are slow (tWR = 300 ns). Writes are buffered in a bounded
queue and drained one at a time by the device; the CPU only stalls when
the queue is full or when a persist barrier must wait for the queue to
drain. Persistence schemes that issue extra NVM writes (Anubis' shadow
table, strict persistence's branch write-through) occupy drain bandwidth
and therefore lengthen barrier stalls — this queue is what turns write
amplification into the IPC differences of Fig. 12.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class WritePendingQueue:
    """A bounded write queue drained by ``ports`` parallel PCM banks."""

    __slots__ = ("capacity", "service_ns", "ports", "stats",
                 "_occupancy_hist", "_port_free_ns", "_completions",
                 "_clock_ns")

    def __init__(self, capacity: int, service_ns: float,
                 ports: int = 1, stats=None) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if service_ns <= 0:
            raise ValueError("service time must be positive")
        if ports < 1:
            raise ValueError("need at least one drain port")
        self.capacity = capacity
        self.service_ns = service_ns
        self.ports = ports
        self.stats = stats
        """Optional :class:`~repro.util.stats.Stats`; when set, each
        enqueue records the pre-insert occupancy in the
        ``wpq.occupancy`` histogram and full-queue stalls bump
        ``wpq.full_stalls``."""
        # bound once: enqueue fires on every NVM write
        self._occupancy_hist = (
            stats.registry.histogram("wpq.occupancy")
            if stats is not None and stats.enabled else None
        )
        self._port_free_ns = [0.0] * ports
        self._completions: Deque[float] = deque()
        self._clock_ns = 0.0

    def __len__(self) -> int:
        return len(self._completions)

    def _advance_clock(self, now_ns: float) -> None:
        """Enforce monotonic observation times.

        Every internal shortcut — ``_retire`` popping from the left,
        the full-queue stall reading ``_completions[0]``, and
        ``drain_time`` reading ``_completions[-1]`` — relies on the
        completion deque being sorted, which only holds when callers
        present non-decreasing ``now_ns`` values (each write picks the
        earliest-free bank, so with monotonic issue times every new
        completion lands at or after the previous one). A caller that
        travels back in time would silently corrupt barrier stalls, so
        it is rejected loudly instead; :meth:`reset` (a crash) is the
        one sanctioned way to rewind the clock.
        """
        if now_ns < self._clock_ns:
            raise ValueError(
                "WPQ observed time going backwards (%.3f ns after "
                "%.3f ns); completions are only non-decreasing for "
                "monotonic issue times" % (now_ns, self._clock_ns)
            )
        self._clock_ns = now_ns

    def _retire(self, now_ns: float) -> None:
        while self._completions and self._completions[0] <= now_ns:
            self._completions.popleft()

    def enqueue(self, now_ns: float) -> Tuple[float, float]:
        """Add one write at ``now_ns``.

        Returns ``(stall_ns, completion_ns)``: the time the issuing core
        must stall because the queue was full, and when this write will
        be durable. Successive completions are non-decreasing because
        writes always pick the earliest-free bank; that guarantee only
        holds for non-decreasing ``now_ns``, which is enforced —
        out-of-order observation raises ``ValueError``.
        """
        self._advance_clock(now_ns)
        self._retire(now_ns)
        if self._occupancy_hist is not None:
            self._occupancy_hist.observe(len(self._completions))
        stall_ns = 0.0
        if len(self._completions) >= self.capacity:
            if self.stats is not None:
                self.stats.add("wpq.full_stalls")
            stall_ns = self._completions[0] - now_ns
            self._retire(now_ns + stall_ns)
        issue_ns = now_ns + stall_ns
        port = min(range(self.ports), key=self._port_free_ns.__getitem__)
        start_ns = max(issue_ns, self._port_free_ns[port])
        completion_ns = start_ns + self.service_ns
        self._port_free_ns[port] = completion_ns
        self._completions.append(completion_ns)
        return stall_ns, completion_ns

    def drain_time(self, now_ns: float) -> float:
        """Stall needed at ``now_ns`` for the queue to empty (barrier)."""
        self._advance_clock(now_ns)
        self._retire(now_ns)
        if not self._completions:
            return 0.0
        return self._completions[-1] - now_ns

    def reset(self) -> None:
        """Empty the queue (a crash): contents and the clock are lost."""
        self._completions.clear()
        self._port_free_ns = [0.0] * self.ports
        self._clock_ns = 0.0
