"""Physical layout of the secure NVM (data, metadata, recovery area).

Combines the system configuration with the SIT geometry to answer the
"how big is everything" questions of the paper: how many counter blocks
and SIT nodes a given capacity needs, how many bitmap lines cover them,
how much NVM the recovery area consumes (1/512 of the metadata space,
Section III-C) and how many index layers are required (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import LINE_SIZE, SystemConfig
from repro.tree.geometry import TreeGeometry


def index_layer_counts(total_meta_lines: int, fanout: int) -> List[int]:
    """Line counts of each bitmap-index layer, bottom (L1) first.

    Layer 1 has one bit per metadata line; each higher layer has one bit
    per line of the layer below, until a single line covers everything.
    That single top line is held in an on-chip register (Section III-D).
    """
    counts = [-(-total_meta_lines // fanout)]
    while counts[-1] > 1:
        counts.append(-(-counts[-1] // fanout))
    return counts


@dataclass(frozen=True)
class MemoryLayout:
    """Derived sizes for one configuration."""

    config: SystemConfig
    geometry: TreeGeometry

    @classmethod
    def from_config(cls, config: SystemConfig) -> "MemoryLayout":
        return cls(config, TreeGeometry(config.num_data_lines))

    @property
    def num_data_lines(self) -> int:
        return self.geometry.num_data_lines

    @property
    def total_meta_lines(self) -> int:
        return self.geometry.total_nodes

    @property
    def metadata_bytes(self) -> int:
        return self.total_meta_lines * LINE_SIZE

    @property
    def index_layers(self) -> List[int]:
        return index_layer_counts(
            self.total_meta_lines, self.config.star.bitmap_fanout
        )

    @property
    def num_index_layers(self) -> int:
        return len(self.index_layers)

    @property
    def recovery_area_lines(self) -> int:
        """NVM lines consumed by spilled bitmap lines (all layers)."""
        return sum(self.index_layers)

    @property
    def recovery_area_bytes(self) -> int:
        return self.recovery_area_lines * LINE_SIZE

    def summary(self) -> Dict[str, object]:
        """A report of the layout (the reproduction's Table I companion)."""
        return {
            "memory_bytes": self.config.memory_bytes,
            "data_lines": self.num_data_lines,
            "sit_levels": self.geometry.num_levels,
            "level_counts": list(self.geometry.level_counts),
            "metadata_lines": self.total_meta_lines,
            "metadata_bytes": self.metadata_bytes,
            "index_layers": self.index_layers,
            "recovery_area_bytes": self.recovery_area_bytes,
            "metadata_cache_bytes": self.config.metadata_cache.size_bytes,
            "adr_bitmap_lines": self.config.star.adr_bitmap_lines,
        }
