"""A generic set-associative, write-back cache model.

One implementation serves three users:

* the CPU cache hierarchy (L1/L2/L3) — payloads are ``None``; only
  presence and dirtiness matter,
* the security-metadata cache in the memory controller — payloads are
  :class:`~repro.tree.node.CachedNode` objects,
* unit tests, which exercise it directly against a reference model.

Replacement is LRU within a set. Lines can be *pinned* for the duration
of a controller operation: evicting a dirty metadata node requires its
parent to be fetched, and the fetch must not evict any node involved in
the ongoing cascade (Section III-B's persist path).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.config import CacheConfig
from repro.errors import ReproError


class CacheLine:
    """One resident line: its address, payload and dirty bit."""

    __slots__ = ("addr", "payload", "dirty")

    def __init__(self, addr: int, payload: object, dirty: bool) -> None:
        self.addr = addr
        self.payload = payload
        self.dirty = dirty

    def __repr__(self) -> str:
        return "CacheLine(addr=%d, dirty=%r)" % (self.addr, self.dirty)


class EvictionDeadlock(ReproError):
    """Every way of a set is pinned; the cascade cannot make progress."""


class SetAssociativeCache:
    """LRU set-associative cache keyed by line address."""

    __slots__ = ("config", "name", "num_sets", "ways", "_sets",
                 "_pinned", "stats", "_resident", "_resident_gauge")

    def __init__(self, config: CacheConfig, name: str = "cache",
                 stats=None) -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self._pinned: Dict[int, int] = {}
        self.stats = stats
        """Optional :class:`~repro.util.stats.Stats`; when set, the
        ``<name>.resident_lines`` gauge tracks occupancy."""
        self._resident = 0
        # bound once: insert/remove run on every fill and eviction
        self._resident_gauge = (
            stats.registry.gauge("%s.resident_lines" % name)
            if stats is not None and stats.enabled else None
        )

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def set_index(self, addr: int) -> int:
        """The set an address maps to (line-granular modulo mapping)."""
        return addr % self.num_sets

    # ------------------------------------------------------------------
    # lookup / insert / remove
    # ------------------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line or ``None``; refresh LRU on hit."""
        bucket = self._sets[self.set_index(addr)]
        line = bucket.get(addr)
        if line is not None and touch:
            bucket.move_to_end(addr)
        return line

    def __contains__(self, addr: int) -> bool:
        return addr in self._sets[self.set_index(addr)]

    def insert(self, addr: int, payload: object = None,
               dirty: bool = False) -> None:
        """Install a line. The set must have room (use ``victim_for``)."""
        bucket = self._sets[self.set_index(addr)]
        if addr in bucket:
            raise ReproError(
                "%s: line %d already resident" % (self.name, addr)
            )
        if len(bucket) >= self.ways:
            raise ReproError(
                "%s: inserting %d into a full set" % (self.name, addr)
            )
        bucket[addr] = CacheLine(addr, payload, dirty)
        self._resident += 1
        if self._resident_gauge is not None:
            self._resident_gauge.set(self._resident)

    def remove(self, addr: int) -> CacheLine:
        """Remove and return a resident line."""
        bucket = self._sets[self.set_index(addr)]
        line = bucket.pop(addr, None)
        if line is None:
            raise KeyError("%s: line %d not resident" % (self.name, addr))
        self._resident -= 1
        if self._resident_gauge is not None:
            self._resident_gauge.set(self._resident)
        return line

    def victim_for(self, addr: int) -> Optional[CacheLine]:
        """The line that must be evicted before ``addr`` can be inserted.

        Returns ``None`` when the set has a free way. Skips pinned lines;
        raises :class:`EvictionDeadlock` when all ways are pinned.
        """
        bucket = self._sets[self.set_index(addr)]
        if len(bucket) < self.ways:
            return None
        for line in bucket.values():  # LRU order: oldest first
            if line.addr not in self._pinned:
                return line
        raise EvictionDeadlock(
            "%s: all %d ways of set %d are pinned"
            % (self.name, self.ways, self.set_index(addr))
        )

    # ------------------------------------------------------------------
    # dirty-state management
    # ------------------------------------------------------------------
    def mark_dirty(self, addr: int) -> bool:
        """Set the dirty bit; returns True when the state *changed*."""
        line = self.lookup(addr, touch=False)
        if line is None:
            raise KeyError("%s: line %d not resident" % (self.name, addr))
        changed = not line.dirty
        line.dirty = True
        return changed

    def mark_clean(self, addr: int) -> bool:
        """Clear the dirty bit; returns True when the state *changed*."""
        line = self.lookup(addr, touch=False)
        if line is None:
            raise KeyError("%s: line %d not resident" % (self.name, addr))
        changed = line.dirty
        line.dirty = False
        return changed

    # ------------------------------------------------------------------
    # pinning (persist-cascade safety; refcounted so nested scopes can
    # pin the same line independently)
    # ------------------------------------------------------------------
    def pin(self, addr: int) -> None:
        self._pinned[addr] = self._pinned.get(addr, 0) + 1

    def unpin(self, addr: int) -> None:
        count = self._pinned.get(addr, 0)
        if count <= 1:
            self._pinned.pop(addr, None)
        else:
            self._pinned[addr] = count - 1

    def pinned(self) -> Set[int]:
        return set(self._pinned)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def lines(self) -> Iterator[CacheLine]:
        """All resident lines, set by set."""
        for bucket in self._sets:
            for line in bucket.values():
                yield line

    def dirty_lines(self) -> Iterator[CacheLine]:
        for line in self.lines():
            if line.dirty:
                yield line

    def dirty_count(self) -> int:
        return sum(1 for _ in self.dirty_lines())

    def lines_by_set(self) -> Dict[int, List[CacheLine]]:
        """Resident lines grouped by set index (cache-tree input)."""
        return {
            index: list(bucket.values())
            for index, bucket in enumerate(self._sets)
            if bucket
        }

    def occupancy(self) -> Tuple[int, int]:
        """(resident lines, capacity in lines)."""
        return len(self), self.num_sets * self.ways

    def clear(self) -> None:
        """Drop every line (a crash wipes volatile caches)."""
        for bucket in self._sets:
            bucket.clear()
        self._pinned.clear()
        self._resident = 0
        if self._resident_gauge is not None:
            self._resident_gauge.set(0)
