"""A bank-level PCM device timing model ("NVMain-lite").

The paper evaluates on NVMain, a cycle-accurate memory simulator. The
default timing model of this reproduction abstracts the device as a
flat read latency plus a drain-rate-limited write queue — sufficient
for the normalized results (DESIGN.md §6). This module provides the
next fidelity step as an *opt-in* device model:

* ``banks`` independently busy banks, line-interleaved,
* per-bank open-row tracking: a row hit pays CAS only (tCL), a miss
  pays activate + CAS (tRCD + tCL),
* writes occupy the bank for the long PCM write pulse (tCWD + tWR),
* the four-activation window (tFAW) throttles activation bursts,
* reads are synchronous (the core stalls to completion); writes are
  posted and only persist barriers wait for them.

Enable with ``SystemConfig(..., device_timing=True)`` — the machine
then routes every NVM access's *address* through the device instead of
charging flat latencies. Shapes of the paper results are preserved
(see ``benchmarks/bench_device_timing.py``); absolute times shift.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.config import NVMTimings


class PCMDevice:
    """Bank-parallel, row-buffered, activation-throttled PCM timing."""

    def __init__(self, timings: NVMTimings, banks: int = 8,
                 row_lines: int = 32) -> None:
        if banks < 1:
            raise ValueError("need at least one bank")
        if row_lines < 1:
            raise ValueError("rows must span at least one line")
        self.timings = timings
        self.banks = banks
        self.row_lines = row_lines
        self._bank_free_ns: List[float] = [0.0] * banks
        self._open_row: List[Optional[int]] = [None] * banks
        self._activations: Deque[float] = deque(maxlen=4)
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def bank_of(self, line: int) -> int:
        """Row-interleaved banking: consecutive rows hit distinct
        banks, consecutive lines within a row share one."""
        return (line // self.row_lines) % self.banks

    def row_of(self, line: int) -> int:
        return line // self.row_lines

    # ------------------------------------------------------------------
    # access timing
    # ------------------------------------------------------------------
    def _begin(self, line: int, now_ns: float) -> Tuple[int, float]:
        """Common bank arbitration + row activation; returns
        (bank, data-transfer start time)."""
        bank = self.bank_of(line)
        row = self.row_of(line)
        start = max(now_ns, self._bank_free_ns[bank])
        if self._open_row[bank] == row:
            self.row_hits += 1
        else:
            self.row_misses += 1
            start = self._respect_faw(start)
            self._activations.append(start)
            start += self.timings.t_rcd_ns
            self._open_row[bank] = row
        return bank, start

    def _respect_faw(self, start: float) -> float:
        """At most four activations per tFAW window."""
        if len(self._activations) == self._activations.maxlen:
            window_start = self._activations[0]
            earliest = window_start + self.timings.t_faw_ns
            if start < earliest:
                return earliest
        return start

    def read(self, line: int, now_ns: float) -> float:
        """A demand read; returns its completion time (the core stalls
        until then)."""
        bank, start = self._begin(line, now_ns)
        completion = start + self.timings.t_cl_ns
        self._bank_free_ns[bank] = completion
        return completion

    def write(self, line: int, now_ns: float) -> float:
        """A posted write; returns when the cell write is durable."""
        bank, start = self._begin(line, now_ns)
        completion = start + self.timings.t_cwd_ns + self.timings.t_wr_ns
        self._bank_free_ns[bank] = completion
        return completion

    # ------------------------------------------------------------------
    # global state
    # ------------------------------------------------------------------
    def drain_time(self, now_ns: float) -> float:
        """Time until every bank is idle (persist barriers wait here)."""
        busiest = max(self._bank_free_ns)
        return max(0.0, busiest - now_ns)

    def pending_writes(self, now_ns: float) -> int:
        """Banks still busy at ``now_ns`` (backpressure heuristic)."""
        return sum(1 for free in self._bank_free_ns if free > now_ns)

    def row_hit_ratio(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reset(self) -> None:
        self._bank_free_ns = [0.0] * self.banks
        self._open_row = [None] * self.banks
        self._activations.clear()
