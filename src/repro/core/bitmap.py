"""Bitmap lines in ADR: tracking the locations of stale metadata.

One bit per security-metadata line (Section III-C): the bit is 1 while
the cached copy is dirty (so the NVM copy is *stale*) and 0 once the line
is persisted. Bits are touched only on dirty-state *transitions*, which
is why the bitmap traffic of Fig. 10 is tiny.

The working set of bitmap lines lives in the battery-backed ADR region
and spills to the Recovery Area by LRU; the single top-layer line of the
multi-layer index lives in an on-chip register (Section III-D) that the
manager reads and writes through the supplied ``registers`` object.

After a crash, :func:`iter_stale_lines` walks the index top-down reading
only non-zero lines from the RA — the recovery-time side of Fig. 14.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.index import MultiLayerIndex
from repro.mem.adr import AdrRegion
from repro.mem.nvm import NVM
from repro.util.bitfield import iter_set_bits, test_bit
from repro.util.stats import Stats


class BitmapLineManager:
    """Runtime maintenance of the multi-layer stale-metadata bitmap."""

    def __init__(self, index: MultiLayerIndex, nvm: NVM, registers,
                 adr_capacity: int, stats: Optional[Stats] = None) -> None:
        self.index = index
        self._nvm = nvm
        self._registers = registers
        self.stats = stats if stats is not None else nvm.stats
        self.adr = AdrRegion(adr_capacity, nvm, stats=self.stats)
        # the update walk runs on every dirty-state transition of a
        # cached metadata line; pin the geometry and the per-layer
        # counter names here instead of re-deriving them per call
        self._fanout = index.fanout
        self._top_layer = index.top_layer
        self._total = index.total_meta_lines
        self._update_names = ["bitmap.line_updates.l%d" % layer
                              for layer in range(index.top_layer + 1)]

    # ------------------------------------------------------------------
    # the two runtime events (Section III-C)
    # ------------------------------------------------------------------
    def mark_stale(self, meta_line: int) -> None:
        """A cached metadata line went clean -> dirty."""
        self.stats.add("bitmap.mark_stale")
        if not 0 <= meta_line < self._total:
            raise ValueError("metadata line %d out of range" % meta_line)
        fanout = self._fanout
        line = meta_line // fanout
        self._update_bit(1, line, meta_line - line * fanout, True)

    def mark_fresh(self, meta_line: int) -> None:
        """A dirty metadata line was persisted (dirty -> clean)."""
        self.stats.add("bitmap.mark_fresh")
        if not 0 <= meta_line < self._total:
            raise ValueError("metadata line %d out of range" % meta_line)
        fanout = self._fanout
        line = meta_line // fanout
        self._update_bit(1, line, meta_line - line * fanout, False)

    def _update_bit(self, layer: int, line: int, bit: int,
                    value: bool) -> None:
        # iterative bottom-up walk; the recursion this replaces spent
        # more time on call frames, property lookups and name
        # formatting than on the bit math
        registers = self._registers
        adr_load = self.adr.load
        adr_store = self.adr.store
        stats_add = self.stats.add
        names = self._update_names
        fanout = self._fanout
        top = self._top_layer
        while True:
            if layer == top:
                word = registers.index_top_line
                new_word = (word | (1 << bit)) if value \
                    else (word & ~(1 << bit))
                if new_word == word:
                    return
                stats_add(names[layer])
                registers.index_top_line = new_word
                return
            key = (layer, line)
            word = adr_load(key)
            new_word = (word | (1 << bit)) if value \
                else (word & ~(1 << bit))
            if new_word == word:
                return
            stats_add(names[layer])
            adr_store(key, new_word)
            # propagate zero/non-zero transitions into the layer above:
            # setting a bit makes the parent bit 1 only when this word
            # was all-zero; clearing one makes it 0 only when the word
            # just became all-zero
            if (word == 0) if value else (new_word == 0):
                layer += 1
                bit = line % fanout
                line = line // fanout
                continue
            return

    # ------------------------------------------------------------------
    # line storage: on-chip register for the top layer, ADR otherwise
    # ------------------------------------------------------------------
    def _load(self, layer: int, line: int) -> int:
        if self.index.is_on_chip(layer):
            return self._registers.index_top_line
        return self.adr.load((layer, line))

    def _store(self, layer: int, line: int, value: int) -> None:
        if self.index.is_on_chip(layer):
            self._registers.index_top_line = value
        else:
            self.adr.store((layer, line), value)

    # ------------------------------------------------------------------
    # inspection and crash behaviour
    # ------------------------------------------------------------------
    def is_stale(self, meta_line: int) -> bool:
        """Current bit for ``meta_line`` (no traffic counted: debug/test)."""
        line, bit = self.index.l1_position(meta_line)
        if self.index.is_on_chip(1):
            return test_bit(self._registers.index_top_line, bit)
        key = (1, line)
        if key in self.adr:
            return test_bit(self.adr.peek(key), bit)
        return test_bit(self._nvm.peek_ra(key), bit)

    def flush_on_power_failure(self) -> None:
        """Battery flush of ADR-resident lines at a crash."""
        self.adr.flush_on_power_failure()

    def hit_ratio(self) -> float:
        return self.adr.hit_ratio()

    def line_update_counts(self) -> List[int]:
        """Update-walk writes per layer, bottom (layer 1) first."""
        return [
            self.stats.get("bitmap.line_updates.l%d" % layer)
            for layer in range(1, self._top_layer + 1)
        ]


def iter_stale_lines(index: MultiLayerIndex, nvm: NVM,
                     top_line: int) -> Iterator[int]:
    """Yield stale metadata line indices after a crash, ascending.

    Walks the multi-layer index top-down, reading only non-zero lines
    from the recovery area (each counted as an NVM read — this is part of
    the recovery time).
    """
    def walk(layer: int, line: int) -> Iterator[int]:
        if index.is_on_chip(layer):
            word = top_line
        else:
            word = nvm.read_ra((layer, line))
        base = line * index.fanout
        for bit in iter_set_bits(word):
            if layer == 1:
                yield base + bit
            else:
                yield from walk(layer - 1, base + bit)

    yield from walk(index.top_layer, 0)


def stale_lines_list(index: MultiLayerIndex, nvm: NVM,
                     top_line: int) -> List[int]:
    """Materialized, sorted result of :func:`iter_stale_lines`."""
    return list(iter_stale_lines(index, nvm, top_line))


def locate_stale_lines(
    index: MultiLayerIndex, nvm: NVM, top_line: int,
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """The recovery locate phase: stale lines *and* the RA lines read.

    Returns ``(stale_metadata_lines, nonzero_ra_keys)``. The second list
    holds every in-NVM recovery-area line the walk read with a non-zero
    word — exactly the lines recovery must zero afterwards so a later
    crash does not claim the restored nodes again. Restricting the
    clearing pass to this list (instead of sweeping the whole index) is
    what keeps recovery cost proportional to the stale-line count
    (Section III-F / Fig. 14b).
    """
    stale: List[int] = []
    nonzero_ra: List[Tuple[int, int]] = []

    def walk(layer: int, line: int) -> None:
        if index.is_on_chip(layer):
            word = top_line
        else:
            word = nvm.read_ra((layer, line))
            if word:
                nonzero_ra.append((layer, line))
        base = line * index.fanout
        for bit in iter_set_bits(word):
            if layer == 1:
                stale.append(base + bit)
            else:
                walk(layer - 1, base + bit)

    walk(index.top_layer, 0)
    return stale, nonzero_ra
