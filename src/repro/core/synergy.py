"""Counter-MAC synergization (Section III-B) — the heart of STAR.

Persisting a node is the only event that modifies its parent: exactly one
parent counter increments. STAR rides the 10 spare bits of the persisted
line's 64-bit MAC field to carry the 10 LSBs of that parent counter, so
the parent's modification is persisted *atomically with the child* and
costs zero extra memory writes.

After a crash the stale parent still holds its old counters in NVM (the
"MSBs"); combining them with the LSBs found in each child line
reconstructs the exact pre-crash counters, provided no counter drifted
2^10 or more increments from its persisted value — which the controller
prevents with a forced flush.
"""

from __future__ import annotations

from repro.config import LSB_BITS
from repro.util.bitfield import mask

LSB_MASK = mask(LSB_BITS)
LSB_SPAN = 1 << LSB_BITS


def counter_lsbs(counter: int) -> int:
    """The low ``LSB_BITS`` bits of a counter (what a child line carries)."""
    return counter & LSB_MASK


def reconstruct_counter(stale_counter: int, lsbs: int) -> int:
    """Rebuild a live counter from its stale NVM value and fresh LSBs.

    The live counter is the smallest value >= ``stale_counter`` whose low
    bits equal ``lsbs``. This is exact whenever
    ``live - stale < 2**LSB_BITS``, the invariant the forced flush
    maintains (Section III-B).

    >>> reconstruct_counter(0x400, 0x001)
    1025
    >>> reconstruct_counter(0x7FF, 0x000)   # LSB wrap-around
    2048
    """
    if stale_counter < 0:
        raise ValueError("counters are non-negative")
    if not 0 <= lsbs <= LSB_MASK:
        raise ValueError("LSBs out of range: %d" % lsbs)
    candidate = (stale_counter & ~LSB_MASK) | lsbs
    if candidate < stale_counter:
        candidate += LSB_SPAN
    return candidate


def reconstruct_counter_observed(stale_counter: int, lsbs: int,
                                 stats=None) -> int:
    """:func:`reconstruct_counter` plus telemetry.

    When ``stats`` (a :class:`~repro.util.stats.Stats`) is given,
    records the recovered drift (``live - stale``) in the
    ``synergy.reconstruct_drift`` histogram and counts LSB wrap-arounds
    (``synergy.lsb_wraps``) — the distribution the forced-flush
    threshold bounds below ``2**LSB_BITS``.
    """
    live = reconstruct_counter(stale_counter, lsbs)
    if stats is not None:
        stats.add("synergy.reconstructions")
        stats.observe("synergy.reconstruct_drift", live - stale_counter)
        if (stale_counter & LSB_MASK) > lsbs:
            stats.add("synergy.lsb_wraps")
    return live
