"""STAR's core mechanisms: synergization, bitmap index, cache-tree,
the persistence scheme and the recovery procedure."""

from repro.core.bitmap import (
    BitmapLineManager,
    iter_stale_lines,
    locate_stale_lines,
    stale_lines_list,
)
from repro.core.cachetree import CacheTree
from repro.core.index import MultiLayerIndex
from repro.core.recovery import recover_star
from repro.core.star import StarScheme
from repro.core.synergy import (
    LSB_MASK,
    LSB_SPAN,
    counter_lsbs,
    reconstruct_counter,
)

__all__ = [
    "BitmapLineManager",
    "CacheTree",
    "LSB_MASK",
    "LSB_SPAN",
    "MultiLayerIndex",
    "StarScheme",
    "counter_lsbs",
    "iter_stale_lines",
    "locate_stale_lines",
    "recover_star",
    "reconstruct_counter",
    "stale_lines_list",
]
