"""The STAR persistence scheme (Section III).

STAR adds no extra NVM writes on the persist path: the modifications of a
parent node travel inside its child's spare MAC bits (counter-MAC
synergization, handled by the controller's common persist path — the LSBs
are always in the written image; STAR is the scheme that *uses* them for
recovery). What STAR does add is bookkeeping:

* bitmap-line maintenance on every dirty-state transition of a cached
  metadata line (Section III-C) — the only source of extra traffic,
  measured in Fig. 10,
* the ADR battery flush of resident bitmap lines at a crash,
* the recovery procedure of Section III-F, including cache-tree
  verification.
"""

from __future__ import annotations

from repro.core.bitmap import BitmapLineManager
from repro.core.index import MultiLayerIndex
from repro.core.recovery import recover_star
from repro.schemes.base import PersistenceScheme, RecoveryReport


class StarScheme(PersistenceScheme):
    """Counter-MAC synergization + bitmap lines + cache-tree recovery."""

    name = "star"
    supports_sit_recovery = True

    def __init__(self) -> None:
        super().__init__()
        self.bitmap: BitmapLineManager = None  # type: ignore[assignment]

    def attach(self, controller) -> None:
        super().attach(controller)
        index = MultiLayerIndex(
            controller.geometry.total_nodes,
            controller.config.star.bitmap_fanout,
        )
        self.bitmap = BitmapLineManager(
            index,
            controller.nvm,
            controller.registers,
            controller.config.star.adr_bitmap_lines,
            stats=controller.stats,
        )

    def on_dirty_transition(self, meta_index: int,
                            became_dirty: bool) -> None:
        if became_dirty:
            self.bitmap.mark_stale(meta_index)
        else:
            self.bitmap.mark_fresh(meta_index)

    def on_crash(self) -> None:
        self.controller.stats.event(
            "adr_flush", resident_lines=len(self.bitmap.adr)
        )
        self.bitmap.flush_on_power_failure()

    def recover(self, machine) -> RecoveryReport:
        return recover_star(
            machine.config, machine.nvm, machine.registers
        )
