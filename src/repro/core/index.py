"""The multi-layer bitmap index geometry (Section III-D).

Layer 1 has one bit per security-metadata line (one 512-bit line covers
32 KB of metadata). Layer ``k+1`` has one bit per layer-``k`` line and
marks which of them are non-zero. The top layer is always a single line
kept in an on-chip register, never written to NVM. During recovery only
non-zero lines are read, which is what keeps recovery time proportional
to the number of stale lines rather than to the metadata space.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.config import BITMAP_FANOUT
from repro.mem.layout import index_layer_counts

BitmapLineKey = Tuple[int, int]
"""(layer, index); layer 1 is the bottom (per-metadata-line) layer."""


class MultiLayerIndex:
    """Pure geometry: which line/bit covers what, layer by layer."""

    def __init__(self, total_meta_lines: int,
                 fanout: int = BITMAP_FANOUT) -> None:
        if total_meta_lines < 1:
            raise ValueError("index must cover at least one metadata line")
        self.total_meta_lines = total_meta_lines
        self.fanout = fanout
        self.layer_counts: List[int] = index_layer_counts(
            total_meta_lines, fanout
        )
        # plain attributes, not properties: the bitmap manager reads
        # these on every update-walk step, and the geometry is immutable
        # after construction
        self.num_layers: int = len(self.layer_counts)
        self.top_layer: int = self.num_layers
        """The layer held on-chip (1-based, equals ``num_layers``)."""

    def lines_in_layer(self, layer: int) -> int:
        self._check_layer(layer)
        return self.layer_counts[layer - 1]

    def l1_position(self, meta_line: int) -> Tuple[int, int]:
        """(layer-1 line index, bit) covering a metadata line."""
        if not 0 <= meta_line < self.total_meta_lines:
            raise ValueError("metadata line %d out of range" % meta_line)
        return meta_line // self.fanout, meta_line % self.fanout

    def parent_position(self, layer: int, line: int) -> Tuple[int, int]:
        """(line index, bit) in layer+1 covering line ``line`` of ``layer``."""
        self._check_line(layer, line)
        if layer >= self.top_layer:
            raise ValueError("the top layer has no parent")
        return line // self.fanout, line % self.fanout

    def covered_range(self, layer: int, line: int) -> Tuple[int, int]:
        """Half-open range of layer-below indices covered by one line.

        For layer 1 the range is over metadata lines; for layer ``k > 1``
        it is over layer ``k - 1`` line indices.
        """
        self._check_line(layer, line)
        below = (
            self.total_meta_lines if layer == 1
            else self.layer_counts[layer - 2]
        )
        start = line * self.fanout
        return start, min(start + self.fanout, below)

    def is_on_chip(self, layer: int) -> bool:
        """Whether lines of this layer live in the on-chip register."""
        self._check_layer(layer)
        return layer == self.top_layer

    def all_lines(self) -> Iterator[BitmapLineKey]:
        """Every (layer, line) pair, bottom layer first."""
        for layer in range(1, self.num_layers + 1):
            for line in range(self.lines_in_layer(layer)):
                yield (layer, line)

    def _check_layer(self, layer: int) -> None:
        if not 1 <= layer <= self.num_layers:
            raise ValueError("layer %d out of range" % layer)

    def _check_line(self, layer: int, line: int) -> None:
        self._check_layer(layer)
        if not 0 <= line < self.layer_counts[layer - 1]:
            raise ValueError(
                "line %d out of range for layer %d" % (line, layer)
            )
