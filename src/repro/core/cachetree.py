"""The cache-tree (Section III-E): verifying the recovery process.

The SIT root is lazily updated, so after a crash it does not reflect the
latest memory state and cannot detect replay attacks mounted *during*
recovery. STAR instead commits to the exact set of dirty cached metadata:

* per cache set, the MACs of the dirty lines are ordered by ascending
  address and hashed into a **set-MAC** (zero when the set has no dirty
  line) — the set-way structure fixes the leaf order, avoiding the
  false-positive and re-hashing problems of an address-ordered Merkle
  tree over a changing dirty population (Fig. 8),
* the set-MACs are folded by an 8-ary Merkle tree whose root lives in an
  on-chip register.

After recovery the restored nodes are placed back into their sets, the
set-MACs recomputed and the root compared: any tampering with the
recovery inputs (stale MSBs, child LSB/MAC tuples, bitmap lines) yields a
different root.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.config import TREE_ARITY
from repro.crypto.hashing import keyed_hash
from repro.tree.merkle import merkle_root

MacEntry = Tuple[int, int]
"""(line address, 54-bit MAC) of one dirty metadata line."""


class CacheTree:
    """Computes set-MACs and the cache-tree root for one cache geometry."""

    def __init__(self, key: bytes, num_sets: int,
                 arity: int = TREE_ARITY) -> None:
        if num_sets < 1:
            raise ValueError("cache must have at least one set")
        self._key = key
        self.num_sets = num_sets
        self.arity = arity

    def set_index(self, line_addr: int) -> int:
        """Must match the metadata cache's set mapping."""
        return line_addr % self.num_sets

    def set_mac(self, set_index: int, entries: Iterable[MacEntry]) -> int:
        """Hash of the set's dirty-line MACs in ascending-address order.

        The zero set-MAC for an empty set is the paper's convention; the
        entries are sorted here so callers need not pre-sort.
        """
        ordered = sorted(entries)
        if not ordered:
            return 0
        flat: List[int] = [set_index]
        for addr, mac in ordered:
            flat.append(addr)
            flat.append(mac)
        return keyed_hash(self._key, "set-mac", *flat)

    def root(self, set_macs: Dict[int, int]) -> int:
        """Fold all set-MACs (zero-filled) into the cache-tree root."""
        leaves = [set_macs.get(index, 0) for index in range(self.num_sets)]
        return merkle_root(self._key, leaves, self.arity, domain="cache-tree")

    def root_from_entries(self, entries: Iterable[MacEntry]) -> int:
        """Root directly from dirty-line (address, MAC) pairs."""
        grouped: Dict[int, List[MacEntry]] = {}
        for addr, mac in entries:
            grouped.setdefault(self.set_index(addr), []).append((addr, mac))
        set_macs = {
            index: self.set_mac(index, group)
            for index, group in grouped.items()
        }
        return self.root(set_macs)
