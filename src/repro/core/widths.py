"""The paper's bit-width budgets, as one queryable table.

Section III-B packs three quantities into fixed hardware fields:

* 56-bit encryption counters (eight per SIT node, Table I),
* a 64-bit MAC field per line, split into a 54-bit MAC (the truncation
  Morphable Counters showed is safe) and
* the 10 spare bits, which STAR reuses for the parent counter's LSBs
  (counter-MAC synergization).

The Osiris-style BMT baseline additionally splits its counters into a
64-bit major and 7-bit per-line minors (``repro.bmt.counters``).

Everything that validates a field against its budget — the frozen image
dataclasses, the runtime sanitizers (``repro.sim.sanitize``) and the
STAR002 lint rule (``repro.lint.rules.widths``) — goes through this
table, so a budget change is one edit.
"""

from __future__ import annotations

from repro.config import COUNTER_BITS, LSB_BITS, MAC_BITS, MAC_FIELD_BITS

FIELD_WIDTHS = {
    # field-name -> bit budget. Keys are the *attribute / keyword names*
    # used across the codebase, which is what both the sanitizer and the
    # static STAR002 rule key on.
    "counter": COUNTER_BITS,
    "counters": COUNTER_BITS,
    "parent_counter": COUNTER_BITS,
    "mac": MAC_BITS,
    "mac_field": MAC_FIELD_BITS,
    "lsbs": LSB_BITS,
    "major": 64,   # Osiris/BMT major counter (repro.bmt.counters)
    "minor": 7,    # Osiris/BMT per-line minor counter
    "minors": 7,
}


def limit(field: str) -> int:
    """Exclusive upper bound for ``field`` (``2 ** width``).

    Raises ``KeyError`` for names not in the table — callers decide
    whether an unknown field is an error or simply unbudgeted.
    """
    return 1 << FIELD_WIDTHS[field]


def fits(field: str, value: int) -> bool:
    """Whether ``value`` fits the declared width of ``field``."""
    return 0 <= value < limit(field)


def check(field: str, value: int) -> None:
    """Raise ``ValueError`` when ``value`` overflows ``field``."""
    if not fits(field, value):
        raise ValueError(
            "%s=%d overflows its %d-bit budget"
            % (field, value, FIELD_WIDTHS[field])
        )
