"""The STAR recovery process (Section III-F).

After a crash, the NVM plus the on-chip registers are all that remain.
Recovery proceeds in four phases:

1. **Locate** — walk the multi-layer index from the on-chip top line,
   reading only non-zero bitmap lines from the recovery area; the set
   bits are exactly the metadata lines that were dirty in the metadata
   cache (hence stale in NVM) when power failed.
2. **Restore counters** — for each stale node, read its stale NVM image
   (the counter MSBs) and its eight children; each child's spare MAC bits
   carry the 10 LSBs of the corresponding counter as of the child's last
   persist, which is also its value at the crash (the parent counter only
   moves when that child persists). :func:`reconstruct_counter` combines
   MSBs and LSBs exactly.
3. **Recompute MACs** — each restored node's MAC needs its parent's
   counter: taken from the restored set when the parent was itself stale,
   from NVM when it was clean, or from the on-chip SIT root for top-level
   nodes. The restored image is written back to NVM.
4. **Verify** — the restored nodes are placed back into their cache sets,
   the set-MACs and the cache-tree root recomputed, and the root compared
   against the on-chip register. Any replay of (data, MAC, LSB) tuples or
   bitmap tampering during recovery yields a mismatch.

Per stale node this touches ten lines (itself + eight children + parent)
plus one write — the cost model behind Fig. 14(b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.config import SystemConfig
from repro.core.bitmap import locate_stale_lines
from repro.core.cachetree import CacheTree
from repro.core.index import MultiLayerIndex
from repro.core.synergy import reconstruct_counter_observed
from repro.errors import VerificationError
from repro.mem.layout import MemoryLayout
from repro.mem.nvm import NVM
from repro.schemes.base import RecoveryReport
from repro.tree.geometry import NodeId, TreeGeometry
from repro.tree.sit import SITAuthenticator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.registers import OnChipRegisters


def recover_star(config: SystemConfig, nvm: NVM,
                 registers: "OnChipRegisters",
                 raise_on_failure: bool = False) -> RecoveryReport:
    """Run STAR recovery against a crashed machine's NVM and registers."""
    layout = MemoryLayout.from_config(config)
    geometry = layout.geometry
    auth = SITAuthenticator(config.crypto_key)
    index = MultiLayerIndex(
        geometry.total_nodes, config.star.bitmap_fanout
    )
    stats = nvm.stats
    reads_before = nvm.total_reads()
    writes_before = nvm.total_writes()

    with stats.span("recovery.star") as root_span:
        # phase 1: locate the stale metadata, remembering which RA lines
        # the walk read as non-zero — those are the only index lines that
        # need clearing afterwards
        with stats.span("recovery.locate") as locate_span:
            stale, nonzero_ra = locate_stale_lines(
                index, nvm, registers.index_top_line
            )
            stale_set = set(stale)
            if locate_span is not None:
                locate_span.attrs["lines"] = len(stale)
        stats.observe("recovery.stale_batch", len(stale))

        # phase 2: restore every stale node's counters from child LSBs
        restored: Dict[int, Tuple[int, ...]] = {}
        with stats.span("recovery.restore", lines=len(stale)):
            for line in stale:
                node_id = geometry.node_at(line)
                image, _touched = nvm.read_meta(line)
                restored[line] = _restore_counters(
                    geometry, nvm, node_id, image, stats
                )
                stats.event("recover_line", meta_index=line,
                            level=node_id[0])

        # phase 3: recompute MACs (parents first available), write back
        restored_macs: Dict[int, int] = {}
        with stats.span("recovery.remac", lines=len(stale)):
            for line in stale:
                node_id = geometry.node_at(line)
                parent_counter = _parent_counter(
                    geometry, nvm, registers, restored, stale_set,
                    node_id
                )
                new_image = auth.make_node_image(
                    node_id, restored[line], parent_counter
                )
                nvm.write_meta(line, new_image)
                restored_macs[line] = new_image.mac

        # phase 4: rebuild the cache-tree, verify against the register
        with stats.span("recovery.verify") as verify_span:
            tree = CacheTree(
                config.crypto_key, config.metadata_cache.num_sets,
                config.star.cache_tree_arity,
            )
            root = tree.root_from_entries(sorted(restored_macs.items()))
            verified = root == registers.cache_tree_root
            if verify_span is not None:
                verify_span.attrs["verified"] = verified

        if verified:
            # the restored lines are no longer stale: zero exactly the
            # non-zero RA lines the locate walk visited so a later crash
            # does not claim them again. These are real NVM writes on
            # the recovery critical path (no battery involved), so they
            # go through the counted write_ra — and because the walk
            # only ever reads non-zero lines, the clearing cost scales
            # with the stale-line count, not the index size.
            for key in nonzero_ra:
                nvm.write_ra(key, 0)
            registers.index_top_line = 0
            # the rebooted machine starts with an empty (all-clean)
            # cache; re-arm the root register accordingly so an
            # immediate second crash-recovery cycle verifies trivially
            registers.cache_tree_root = tree.root_from_entries([])
        if root_span is not None:
            root_span.attrs["verified"] = verified

    reads = nvm.total_reads() - reads_before
    writes = nvm.total_writes() - writes_before
    report = RecoveryReport(
        scheme="star",
        stale_lines=len(stale),
        restored_lines=len(restored),
        nvm_reads=reads,
        nvm_writes=writes,
        verified=verified,
        recovery_time_ns=(reads + writes) * config.recovery_line_access_ns,
        restored=restored,
        ra_lines_cleared=len(nonzero_ra) if verified else 0,
    )
    if raise_on_failure and not verified:
        raise VerificationError(
            "cache-tree root mismatch: an attack occurred during recovery"
        )
    return report


def _restore_counters(geometry: TreeGeometry, nvm: NVM, node_id: NodeId,
                      image, stats=None) -> Tuple[int, ...]:
    """Phase-2 reconstruction of one node's eight counters."""
    level, _index = node_id
    children = geometry.children_of(node_id)
    counters: List[int] = []
    for slot in range(geometry.arity):
        stale_counter = image.counters[slot]
        lsbs: Optional[int] = None
        if slot < len(children):
            if level == 0:
                child = nvm.read_data(children[slot])
                if child is not None:
                    lsbs = child.lsbs
            else:
                child_line = geometry.meta_index((level - 1, children[slot]))
                child_image, touched = nvm.read_meta(child_line)
                if touched:
                    lsbs = child_image.lsbs
        if lsbs is None:
            # the child was never persisted, so this counter never moved
            counters.append(stale_counter)
        else:
            counters.append(
                reconstruct_counter_observed(stale_counter, lsbs, stats)
            )
    return tuple(counters)


def _parent_counter(geometry: TreeGeometry, nvm: NVM,
                    registers: "OnChipRegisters",
                    restored: Dict[int, Tuple[int, ...]],
                    stale_set: set, node_id: NodeId) -> int:
    """The parent counter used to recompute a restored node's MAC."""
    if geometry.is_top_level(node_id):
        return registers.sit_root.counters[node_id[1]]
    parent_id = geometry.parent_of(node_id)
    parent_line = geometry.meta_index(parent_id)
    slot = geometry.slot_in_parent(node_id)
    if parent_line in stale_set:
        return restored[parent_line][slot]
    parent_image, _touched = nvm.read_meta(parent_line)
    return parent_image.counters[slot]
