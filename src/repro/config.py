"""System configuration (the paper's Table I, made programmable).

Every structural parameter of the simulated machine lives here: NVM
capacity and PCM timings, the CPU cache hierarchy, the security-metadata
cache in the memory controller, and the STAR-specific parameters (bitmap
lines in ADR, multi-layer index fanout, MAC/LSB bit widths).

Two factory functions cover the common cases:

* :func:`paper_config` — the configuration of Table I (16 GB PCM, 512 KB
  metadata cache, 16 bitmap lines). Structural parameters are exact; the
  simulated *touched* footprint is sparse so this is cheap to hold.
* :func:`small_config` — a scaled-down machine for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

LINE_SIZE = 64
"""Bytes per memory line; everything in the paper is 64B-granular."""

TREE_ARITY = 8
"""SIT fanout: 8 counters per node, 8 children per node."""

COUNTER_BITS = 56
"""Width of each of the eight per-node counters."""

MAC_FIELD_BITS = 64
"""Total MAC field width in a node or data line."""

MAC_BITS = 54
"""Effective MAC width; 54-bit MACs are safe (Morphable Counters)."""

LSB_BITS = MAC_FIELD_BITS - MAC_BITS
"""Spare bits in the MAC field used for the parent-counter LSBs (10)."""

BITMAP_FANOUT = LINE_SIZE * 8
"""Lines covered by one bitmap line: 512 bits -> 512 metadata lines."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int
    ways: int
    line_size: int = LINE_SIZE

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache must have at least one way")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            "cache size must be a multiple of ways * line size",
        )
        _require(
            _is_power_of_two(self.num_sets),
            "number of cache sets must be a power of two",
        )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


@dataclass(frozen=True)
class NVMTimings:
    """PCM latency (ns) and energy (nJ / 64B line) parameters.

    The latency values follow Table I (tRCD/tCL/tCWD/tFAW/tWTR/tWR =
    48/15/13/50/7.5/300 ns). Energy uses the asymmetric read/write values
    common to the PCM literature; all evaluation results that use them are
    reported normalized to the write-back baseline.
    """

    t_rcd_ns: float = 48.0
    t_cl_ns: float = 15.0
    t_cwd_ns: float = 13.0
    t_faw_ns: float = 50.0
    t_wtr_ns: float = 7.5
    t_wr_ns: float = 300.0
    read_energy_nj: float = 0.5
    write_energy_nj: float = 2.5
    static_power_w: float = 0.002
    """Background (peripheral/refresh-free standby) power at sim scale.

    NVMain reports background energy alongside access energy; without it
    a traffic-only model over-attributes energy to write amplification.
    The value is calibrated so background and dynamic energy are of the
    same order for the write-back baseline at the default experiment
    scale, which is where the paper's normalized numbers sit.
    """

    @property
    def read_latency_ns(self) -> float:
        """Array read latency seen by a demand miss."""
        return self.t_rcd_ns + self.t_cl_ns

    @property
    def write_latency_ns(self) -> float:
        """Cell write service time (the long PCM write pulse)."""
        return self.t_wr_ns


@dataclass(frozen=True)
class CPUConfig:
    """A simple in-order multi-core model used for relative IPC."""

    cores: int = 8
    freq_ghz: float = 2.0
    base_cpi: float = 1.0
    write_queue_entries: int = 32
    write_ports: int = 1
    """Parallel PCM banks draining the write-pending queue."""
    sfence_ns: float = 10.0
    """Fixed pipeline cost of the ordering fence itself."""

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class StarConfig:
    """Parameters specific to the STAR mechanisms."""

    adr_bitmap_lines: int = 16
    bitmap_fanout: int = BITMAP_FANOUT
    cache_tree_arity: int = TREE_ARITY
    lsb_bits: int = LSB_BITS
    counter_flush_threshold: int = (1 << LSB_BITS) - 1

    def __post_init__(self) -> None:
        _require(self.adr_bitmap_lines >= 1, "need at least one ADR line")
        _require(self.bitmap_fanout > 1, "bitmap fanout must exceed 1")
        _require(
            0 < self.counter_flush_threshold < (1 << self.lsb_bits),
            "flush threshold must be below the LSB wrap-around",
        )


@dataclass(frozen=True)
class SystemConfig:
    """The full machine: NVM, CPU caches, metadata cache and STAR knobs."""

    memory_bytes: int
    metadata_cache: CacheConfig
    llc: CacheConfig
    l2: CacheConfig = None  # type: ignore[assignment]
    l1: CacheConfig = None  # type: ignore[assignment]
    nvm: NVMTimings = field(default_factory=NVMTimings)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    star: StarConfig = field(default_factory=StarConfig)
    recovery_line_access_ns: float = 100.0
    crypto_key: bytes = b"star-reproduction-key"
    device_timing: bool = False
    """Opt-in bank-level PCM timing (``repro.mem.device``) instead of
    the flat-latency + write-queue model."""
    device_banks: int = 8
    device_row_lines: int = 32

    def __post_init__(self) -> None:
        _require(self.memory_bytes >= LINE_SIZE * TREE_ARITY,
                 "memory must hold at least one counter block of data")
        _require(self.memory_bytes % LINE_SIZE == 0,
                 "memory size must be line aligned")

    @property
    def num_data_lines(self) -> int:
        return self.memory_bytes // LINE_SIZE

    def with_metadata_cache_bytes(self, size_bytes: int) -> "SystemConfig":
        """A copy with a resized metadata cache (for sweeps, Fig. 14)."""
        new_cache = replace(self.metadata_cache, size_bytes=size_bytes)
        return replace(self, metadata_cache=new_cache)

    def with_adr_lines(self, lines: int) -> "SystemConfig":
        """A copy with a different ADR bitmap-line budget (Table II)."""
        return replace(self, star=replace(self.star, adr_bitmap_lines=lines))


def paper_config() -> SystemConfig:
    """The Table I configuration of the paper.

    16 GB PCM main memory, 64 KB/512 KB/4 MB L1/L2/L3, a 512 KB 8-way
    metadata cache in the memory controller and 16 bitmap lines in ADR.
    """
    return SystemConfig(
        memory_bytes=16 * 1024 ** 3,
        metadata_cache=CacheConfig(size_bytes=512 * 1024, ways=8),
        llc=CacheConfig(size_bytes=4 * 1024 ** 2, ways=8),
        l2=CacheConfig(size_bytes=512 * 1024, ways=8),
        l1=CacheConfig(size_bytes=64 * 1024, ways=2),
    )


def sim_config(
    memory_bytes: int = 64 * 1024 ** 2,
    metadata_cache_bytes: int = 64 * 1024,
    llc_bytes: int = 512 * 1024,
    adr_bitmap_lines: int = 16,
    bitmap_fanout: int = 64,
) -> SystemConfig:
    """A scaled machine whose *ratios* match the paper.

    The paper simulates 16 GB of PCM with a 512 KB metadata cache. Holding
    a trace that pressures a 512 KB metadata cache is slow in pure Python,
    so experiments default to a proportionally scaled machine. All
    mechanisms (tree height, bitmap layers, ADR pressure) are derived from
    these sizes, and the reported metrics are ratios, which are preserved
    under scaling.

    ``bitmap_fanout`` scales with the machine: hardware bitmap lines hold
    512 bits, covering 32 KB of metadata each; at 1/256-scale memory a
    64-bit coverage per line reproduces the same ratio of bitmap lines to
    live metadata, hence the same ADR pressure as the paper's Table II.
    """
    return SystemConfig(
        memory_bytes=memory_bytes,
        metadata_cache=CacheConfig(size_bytes=metadata_cache_bytes, ways=8),
        llc=CacheConfig(size_bytes=llc_bytes, ways=8),
        star=StarConfig(
            adr_bitmap_lines=adr_bitmap_lines,
            bitmap_fanout=bitmap_fanout,
        ),
    )


def small_config(
    memory_bytes: int = 1024 * 1024,
    metadata_cache_bytes: int = 4 * 1024,
    llc_bytes: int = 16 * 1024,
    adr_bitmap_lines: int = 4,
) -> SystemConfig:
    """A tiny machine for unit tests: deep evictions with short traces."""
    return SystemConfig(
        memory_bytes=memory_bytes,
        metadata_cache=CacheConfig(size_bytes=metadata_cache_bytes, ways=4),
        llc=CacheConfig(size_bytes=llc_bytes, ways=4),
        star=StarConfig(adr_bitmap_lines=adr_bitmap_lines),
    )
