"""The whole-program pass: project symbol table + call graph.

The per-file rules of PR 4 see one ``FileContext`` at a time, which is
exactly why they miss a counted-access helper called through one level
of indirection, or a scalar-engine field the batch engine never
mirrors. This module parses the full source tree **once** into a
:class:`ProjectContext` — module symbol tables (classes, functions,
imports), a resolved intra-package call graph, per-class attribute
footprints and the class hierarchy — and the engine hands it to every
rule via :meth:`~repro.lint.engine.Rule.begin` before the per-file
walk starts.

Resolution is deliberately static and conservative: only calls that
resolve to a project-local definition become call-graph edges
(``f(...)`` to a module-level def or an imported ``repro.*`` symbol,
``self.m(...)`` to a method of the enclosing class or one of its
project-local bases). Dynamic dispatch through variables, containers
or ``getattr`` is out of scope — a rule built on this graph can have
false *negatives* through such calls, never false positives from
misresolved edges.

Functions are identified by a stable qualified name::

    repro/sim/controller.py::SecureMemoryController.write_data
    repro/lab/lease.py::spec_from_json

which is also what rules print in findings, so a reader can jump to
the definition.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


def qualify(module_path: str, name: str) -> str:
    """The project-wide id of a definition: ``<module>::<qualname>``."""
    return "%s::%s" % (module_path, name)


def module_dotted(module_path: str) -> str:
    """``repro/sim/batch.py`` -> ``repro.sim.batch``."""
    trimmed = module_path
    if trimmed.endswith(".py"):
        trimmed = trimmed[: -len(".py")]
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


class FunctionInfo:
    """One function or method definition, with its body retained."""

    __slots__ = (
        "module_path", "qualname", "name", "node", "params",
        "class_name", "decorators",
    )

    def __init__(self, module_path: str, qualname: str,
                 node: ast.AST, class_name: Optional[str]) -> None:
        self.module_path = module_path
        self.qualname = qualname
        self.name = qualname.rsplit(".", 1)[-1]
        self.node = node
        self.class_name = class_name
        args = node.args  # type: ignore[attr-defined]
        self.params: List[str] = [a.arg for a in args.posonlyargs] + [
            a.arg for a in args.args
        ]
        self.decorators: List[str] = []
        for decorator in node.decorator_list:  # type: ignore[attr-defined]
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            if isinstance(target, ast.Name):
                self.decorators.append(target.id)
            elif isinstance(target, ast.Attribute):
                self.decorators.append(target.attr)

    @property
    def qualified(self) -> str:
        return qualify(self.module_path, self.qualname)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def positional_params(self) -> List[str]:
        """Parameters a caller can bind positionally, ``self`` dropped
        for methods (call sites pass the receiver implicitly)."""
        if self.is_method and "staticmethod" not in self.decorators:
            return self.params[1:]
        return self.params


class ClassInfo:
    """One class definition: bases, methods and attribute footprint."""

    __slots__ = (
        "module_path", "name", "node", "base_names", "methods",
        "self_attrs_written",
    )

    def __init__(self, module_path: str, node: ast.ClassDef) -> None:
        self.module_path = module_path
        self.name = node.name
        self.node = node
        self.base_names: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.base_names.append(base.id)
            elif isinstance(base, ast.Attribute):
                self.base_names.append(base.attr)
        self.methods: Dict[str, FunctionInfo] = {}
        self.self_attrs_written: Set[str] = set()

    @property
    def qualified(self) -> str:
        return qualify(self.module_path, self.name)


class ModuleInfo:
    """One parsed module: imports, top-level defs, classes."""

    __slots__ = ("path", "module_path", "dotted", "imports",
                 "functions", "classes", "tree")

    def __init__(self, path: str, module_path: str) -> None:
        self.path = path
        self.module_path = module_path
        self.dotted = module_dotted(module_path)
        self.tree: Optional[ast.Module] = None
        self.imports: Dict[str, str] = {}
        """Local name -> dotted target (``from repro.x import f`` maps
        ``f`` to ``repro.x.f``; ``import repro.x as y`` maps ``y`` to
        ``repro.x``)."""
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}


class _ModuleCollector(ast.NodeVisitor):
    """Fill a :class:`ModuleInfo` from one parsed tree."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._class_stack: List[ClassInfo] = []

    # ---- imports ------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else \
                alias.name.split(".")[0]
            self.info.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # resolve relative imports against this module's package
            parts = self.info.dotted.split(".")
            parts = parts[: len(parts) - node.level]
            base = ".".join(parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.imports[local] = (
                base + "." + alias.name if base else alias.name
            )

    # ---- definitions --------------------------------------------------
    def _add_function(self, node: ast.AST, name: str) -> None:
        if self._class_stack:
            owner = self._class_stack[-1]
            qualname = "%s.%s" % (owner.name, name)
            fn = FunctionInfo(self.info.module_path, qualname, node,
                              owner.name)
            owner.methods[name] = fn
        else:
            fn = FunctionInfo(self.info.module_path, name, node, None)
            self.info.functions[name] = fn

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._add_function(node, node.name)
        # nested defs are not indexed as call targets (their names are
        # not addressable from other scopes), but self.X writes inside
        # them still count toward the class footprint
        if self._class_stack:
            self._collect_self_writes(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._add_function(node, node.name)
        if self._class_stack:
            self._collect_self_writes(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(self.info.module_path, node)
        self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _collect_self_writes(self, func: ast.AST) -> None:
        owner = self._class_stack[-1]
        for node in ast.walk(func):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                owner.self_attrs_written.add(node.attr)


class ProjectContext:
    """The whole-tree view rules query: symbols, calls, hierarchy."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_dotted: Dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, path: str, module_path: str,
                   tree: ast.Module) -> ModuleInfo:
        info = ModuleInfo(path, module_path)
        info.tree = tree
        collector = _ModuleCollector(info)
        for node in tree.body:
            collector.visit(node)
        self.modules[module_path] = info
        self._by_dotted[info.dotted] = info
        return info

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def module(self, module_path: str) -> Optional[ModuleInfo]:
        return self.modules.get(module_path)

    def module_by_dotted(self, dotted: str) -> Optional[ModuleInfo]:
        return self._by_dotted.get(dotted)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for info in self.modules.values():
            yield from info.functions.values()
            for cls in info.classes.values():
                yield from cls.methods.values()

    def function(self, qualified: str) -> Optional[FunctionInfo]:
        module_path, _, qualname = qualified.partition("::")
        info = self.modules.get(module_path)
        if info is None:
            return None
        if "." in qualname:
            class_name, method = qualname.split(".", 1)
            cls = info.classes.get(class_name)
            return None if cls is None else cls.methods.get(method)
        return info.functions.get(qualname)

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def resolve_base(self, cls: ClassInfo,
                     base_name: str) -> Optional[ClassInfo]:
        """The project-local :class:`ClassInfo` a base name refers to."""
        info = self.modules.get(cls.module_path)
        if info is None:
            return None
        local = info.classes.get(base_name)
        if local is not None and local is not cls:
            return local
        dotted = info.imports.get(base_name)
        if dotted is None:
            return None
        owner_dotted, _, symbol = dotted.rpartition(".")
        owner = self._by_dotted.get(owner_dotted)
        if owner is not None and symbol in owner.classes:
            return owner.classes[symbol]
        # ``import repro.mem.nvm as n; class X(n.NVM)`` resolves the
        # attribute name only; try every module exporting that class
        for candidate in self.modules.values():
            if base_name in candidate.classes and candidate is not info:
                resolved = candidate.classes[base_name]
                if resolved is not cls:
                    return resolved
        return None

    def mro_names(self, cls: ClassInfo,
                  _seen: Optional[Set[str]] = None) -> List[ClassInfo]:
        """``cls`` plus its project-local ancestors (cycle-safe)."""
        if _seen is None:
            _seen = set()
        if cls.qualified in _seen:
            return []
        _seen.add(cls.qualified)
        out = [cls]
        for base_name in cls.base_names:
            base = self.resolve_base(cls, base_name)
            if base is not None:
                out.extend(self.mro_names(base, _seen))
        return out

    def is_subclass_of(self, cls: ClassInfo, module_path: str,
                       class_name: str) -> bool:
        """Whether ``cls`` inherits (transitively) from the named
        project class — itself excluded."""
        for ancestor in self.mro_names(cls)[1:]:
            if (ancestor.module_path == module_path
                    and ancestor.name == class_name):
                return True
        return False

    def subclasses_of(self, module_path: str,
                      class_name: str) -> List[ClassInfo]:
        out = []
        for info in self.modules.values():
            for cls in info.classes.values():
                if self.is_subclass_of(cls, module_path, class_name):
                    out.append(cls)
        return out

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(self, module_path: str, call: ast.Call,
                     enclosing_class: Optional[str] = None
                     ) -> Optional[FunctionInfo]:
        """The project-local callee of ``call``, if statically known.

        Handles ``f(...)`` (local def or ``from repro.x import f``),
        ``mod.f(...)`` (``import repro.x as mod``) and ``self.m(...)``
        (method of the enclosing class or a project-local ancestor).
        """
        info = self.modules.get(module_path)
        if info is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            local = info.functions.get(func.id)
            if local is not None:
                return local
            dotted = info.imports.get(func.id)
            if dotted is None:
                return None
            owner_dotted, _, symbol = dotted.rpartition(".")
            owner = self._by_dotted.get(owner_dotted)
            if owner is None:
                return None
            return owner.functions.get(symbol)
        if isinstance(func, ast.Attribute):
            recv = func.value
            if (isinstance(recv, ast.Name) and recv.id == "self"
                    and enclosing_class is not None):
                cls = info.classes.get(enclosing_class)
                if cls is None:
                    return None
                for ancestor in self.mro_names(cls):
                    method = ancestor.methods.get(func.attr)
                    if method is not None:
                        return method
                return None
            if isinstance(recv, ast.Name):
                dotted = info.imports.get(recv.id)
                if dotted is not None:
                    owner = self._by_dotted.get(dotted)
                    if owner is not None:
                        return owner.functions.get(func.attr)
        return None

    def enclosing_functions(self, module_path: str
                            ) -> List[Tuple[FunctionInfo, ast.AST]]:
        """Every indexed function of a module with its body node."""
        info = self.modules.get(module_path)
        if info is None:
            return []
        out: List[Tuple[FunctionInfo, ast.AST]] = []
        for fn in info.functions.values():
            out.append((fn, fn.node))
        for cls in info.classes.values():
            for fn in cls.methods.values():
                out.append((fn, fn.node))
        return out
