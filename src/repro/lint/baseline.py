"""The checked-in waiver file for ``star-lint --baseline``.

A baseline lets a rule land *before* the tree is clean: known
findings are waived in a reviewed, checked-in ``lint-baseline.json``
instead of sprinkling pragmas through code the PR does not otherwise
touch. Two directions keep it honest:

* a finding matching a waiver is suppressed;
* a waiver matching **no** finding is itself reported (synthetic
  ``STARBASE`` finding at the baseline file), so the file shrinks as
  debt is paid instead of fossilising — the same unused-entry
  direction STAR004 applies to the metric catalogue.

Waivers are deliberately coarse so line churn does not invalidate
them::

    {
      "waivers": [
        {"rule": "STAR008", "path": "repro/obs/events.py",
         "contains": "open(path", "reason": "streaming sink"}
      ]
    }

``path`` matches when the finding's path *ends with* the waiver path
(findings carry checkout-relative paths like ``src/repro/...``);
``contains`` (optional) must be a substring of the finding message
or of the source line it points at. ``reason`` is for the reviewer
and the audit trail; empty reasons are rejected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.lint.engine import Finding

UNUSED_WAIVER_RULE = "STARBASE"


@dataclass(frozen=True)
class Waiver:
    rule: str
    path: str
    contains: str = ""
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        normalized = finding.path.replace("\\", "/")
        if not normalized.endswith(self.path):
            return False
        if self.contains and self.contains not in finding.message:
            return False
        return True


class Baseline:
    def __init__(self, waivers: Sequence[Waiver],
                 origin: str = "lint-baseline.json") -> None:
        self.waivers = list(waivers)
        self.origin = origin

    @classmethod
    def load(cls, path: str) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        waivers = []
        for i, entry in enumerate(payload.get("waivers", [])):
            reason = str(entry.get("reason", "")).strip()
            if not reason:
                raise ValueError(
                    "%s: waiver %d has no reason; baselines must "
                    "say why each finding is waived" % (path, i)
                )
            waivers.append(Waiver(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                contains=str(entry.get("contains", "")),
                reason=reason,
            ))
        return cls(waivers, origin=path)

    def apply(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """(surviving findings, unused-waiver findings).

        Each waiver may absorb any number of findings; a waiver that
        absorbs none comes back as a synthetic finding against the
        baseline file itself so CI can fail on stale debt records.
        """
        used = [False] * len(self.waivers)
        kept: List[Finding] = []
        for finding in findings:
            absorbed = False
            for i, waiver in enumerate(self.waivers):
                if waiver.matches(finding):
                    used[i] = True
                    absorbed = True
            if not absorbed:
                kept.append(finding)
        unused = [
            Finding(
                rule=UNUSED_WAIVER_RULE, path=self.origin,
                line=1, col=0,
                message="unused baseline waiver (%s @ %s%s): the "
                        "finding it covered is gone — delete the "
                        "entry" % (
                            waiver.rule, waiver.path,
                            ", contains=%r" % waiver.contains
                            if waiver.contains else "",
                        ),
            )
            for i, waiver in enumerate(self.waivers) if not used[i]
        ]
        return kept, unused
