"""``star-lint``: run the STAR00x rules over a source tree.

Usage::

    star-lint src/                 # human report, always exits 0
    star-lint src/ --check        # exit 1 when there are findings (CI)
    star-lint src/ --json out.json     # machine-readable report
    star-lint src/ --sarif out.sarif   # GitHub code-scanning report
    star-lint src/ --baseline lint-baseline.json
    star-lint src/ --rules STAR001,STAR003
    star-lint --list-rules        # print the registry (CI smoke)

The default invocation is report-only so the tool can be run while
cleaning a tree; CI enforces with ``--check --baseline``. A baseline
waives known findings without pragmas, and an unused waiver is itself
a finding — see :mod:`repro.lint.baseline`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    LintEngine,
    findings_to_json,
    render_text,
)
from repro.lint.report import findings_to_sarif
from repro.lint.rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-lint",
        description="Domain-aware static analysis for the STAR "
                    "reproduction (rules STAR001..STAR008).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (directories recurse *.py)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit with status 1 when there are findings (CI mode)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write a JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write a SARIF 2.1.0 report ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="waive findings listed in this baseline file; unused "
             "waivers are reported as findings",
    )
    parser.add_argument(
        "--rules", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _emit(payload: str, destination: str) -> None:
    if destination == "-":
        print(payload)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print("%s %s: %s" % (rule.code, rule.name,
                                 rule.description))
        return 0
    if not args.paths:
        parser.error("paths are required unless --list-rules is given")

    if args.rules is not None:
        wanted = {code.strip() for code in args.rules.split(",")}
        known = {rule.code for rule in rules}
        unknown = wanted - known
        if unknown:
            print("unknown rule code(s): %s" % ", ".join(sorted(unknown)),
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    engine = LintEngine(rules)
    findings = engine.run(args.paths)

    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print("bad baseline: %s" % exc, file=sys.stderr)
            return 2
        findings, unused = baseline.apply(findings)
        findings = sorted(
            findings + unused,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )

    if args.json is not None:
        _emit(findings_to_json(findings), args.json)
    if args.sarif is not None:
        _emit(findings_to_sarif(findings, rules), args.sarif)
    if args.json != "-" and args.sarif != "-":
        print(render_text(findings))
    for error in engine.errors:
        print("error: %s" % error, file=sys.stderr)

    failures: List[str] = engine.errors
    if failures:
        return 2
    if args.check and findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
