"""``star-lint``: run the STAR00x rules over a source tree.

Usage::

    star-lint src/                 # human report, always exits 0
    star-lint src/ --check         # exit 1 when there are findings (CI)
    star-lint src/ --json out.json # machine-readable report
    star-lint src/ --rules STAR001,STAR003

The default invocation is report-only so the tool can be run while
cleaning a tree; CI enforces with ``--check``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import (
    LintEngine,
    findings_to_json,
    render_text,
)
from repro.lint.rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-lint",
        description="Domain-aware static analysis for the STAR "
                    "reproduction (rules STAR001..STAR005).",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="files or directories to lint (directories recurse *.py)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit with status 1 when there are findings (CI mode)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write a JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--rules", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    rules = default_rules()
    if args.rules is not None:
        wanted = {code.strip() for code in args.rules.split(",")}
        known = {rule.code for rule in rules}
        unknown = wanted - known
        if unknown:
            print("unknown rule code(s): %s" % ", ".join(sorted(unknown)),
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]

    engine = LintEngine(rules)
    findings = engine.run(args.paths)

    if args.json is not None:
        payload = findings_to_json(findings)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if args.json != "-":
        print(render_text(findings))
    for error in engine.errors:
        print("error: %s" % error, file=sys.stderr)

    failures: List[str] = engine.errors
    if failures:
        return 2
    if args.check and findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
