"""Domain-aware static analysis for the STAR reproduction.

``repro.lint`` walks Python sources with :mod:`ast` and applies the
STAR00x rules (:mod:`repro.lint.rules`): conventions the simulator's
correctness rests on but no general-purpose linter can know about —
counted NVM traffic, paper-mandated bit widths, determinism of sim
paths, metric-catalogue hygiene and the hot-path ``__slots__`` roster.

Run it as ``star-lint src/`` (see :mod:`repro.lint.cli`); the engine and
rule API live in :mod:`repro.lint.engine`.
"""

from repro.lint.engine import (
    FileContext,
    Finding,
    LintEngine,
    Rule,
)

__all__ = ["FileContext", "Finding", "LintEngine", "Rule"]
