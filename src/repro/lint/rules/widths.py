"""STAR002: constants assigned into width-budgeted fields must fit.

The paper fixes field widths in hardware (PAPER.md / Section III-B):
54-bit MACs, 10-bit counter LSBs riding in the MAC field's spare bits,
56-bit counters. The budgets live in ``repro.core.widths.FIELD_WIDTHS``;
this rule const-folds integer expressions that flow into fields of those
names — plain assignments, attribute assignments, annotated assignments
and keyword arguments — and flags values that overflow the budget.

Only statically foldable expressions are judged (literals combined with
``+ - * << ** | & ^``); runtime values are the sanitizer's job
(``repro.sim.sanitize``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.core.widths import FIELD_WIDTHS
from repro.lint.engine import FileContext, Finding, Rule


def _fold(node: ast.expr) -> Optional[int]:
    """Best-effort constant folding of an int-valued expression."""
    if isinstance(node, ast.Constant):
        return node.value if type(node.value) is int else None
    if isinstance(node, ast.UnaryOp):
        operand = _fold(node.operand)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Invert):
            return ~operand
        return None
    if isinstance(node, ast.BinOp):
        left, right = _fold(node.left), _fold(node.right)
        if left is None or right is None:
            return None
        op = node.op
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.LShift):
            return left << right if 0 <= right < 1024 else None
        if isinstance(op, ast.RShift):
            return left >> right if 0 <= right < 1024 else None
        if isinstance(op, ast.Pow):
            return left ** right if 0 <= right < 1024 else None
        if isinstance(op, ast.BitOr):
            return left | right
        if isinstance(op, ast.BitAnd):
            return left & right
        if isinstance(op, ast.BitXor):
            return left ^ right
        return None
    return None


class BitWidthOverflowRule(Rule):
    code = "STAR002"
    name = "bit-width-overflow"
    description = (
        "a constant assigned into a width-budgeted field exceeds the "
        "paper's bit budget"
    )

    def __init__(self, widths: Optional[Dict[str, int]] = None) -> None:
        self.widths = dict(FIELD_WIDTHS if widths is None else widths)

    # ------------------------------------------------------------------
    def _judge(self, ctx: FileContext, field: str, value_node: ast.expr
               ) -> Iterator[Finding]:
        bits = self.widths.get(field)
        if bits is None:
            return
        value = _fold(value_node)
        if value is None:
            return
        if not 0 <= value < (1 << bits):
            yield ctx.finding(
                self.code,
                value_node,
                "%s=%d overflows the %d-bit budget of %r"
                % (field, value, bits, field),
            )

    @staticmethod
    def _target_field(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    field = self._target_field(target)
                    if field is not None:
                        yield from self._judge(ctx, field, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                field = self._target_field(node.target)
                if field is not None:
                    yield from self._judge(ctx, field, node.value)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        yield from self._judge(
                            ctx, keyword.arg, keyword.value
                        )
