"""STAR008: telemetry/lab files must be published atomically.

Readers of the heartbeat plane, the campaign store and the profiler
traces run in *other processes* (star-top, a resuming coordinator, CI
``cmp`` steps). A plain ``open(path, "w")`` exposes them to torn
reads: the PR 7 heartbeat salvage was exactly a half-written JSON file
observed mid-``json.dump``. The repo-wide idiom is write-to-temp then
``os.replace`` — POSIX rename is atomic, so readers see the old file
or the new file, never a prefix. This rule makes the idiom mandatory
under the observability and lab packages.

A finding is an ``open(path, "w"/"wb"/"x"/"xb")`` call (or
``Path.write_text``/``write_bytes``) inside a function in a scoped
module whose body never calls ``os.replace``. Sanctioned shapes:

* functions that do call ``os.replace`` — the tmp-write half of the
  idiom is the very write being inspected;
* paths the *user* chose on the command line (the opened expression
  is rooted at ``args.``): an export the caller pointed at a location
  is theirs to tear, and CLI UX would suffer from mandatory temp
  files next to arbitrary destinations;
* deliberate streaming sinks (an appending event log that is
  explicitly line-framed for salvage) carry a
  ``# lint: disable=STAR008`` with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.engine import FileContext, Finding, Rule

DEFAULT_SCOPES = ("repro/obs/", "repro/lab/")

_WRITE_MODES = frozenset({"w", "wb", "x", "xb", "wt", "xt"})


def _write_mode(call: ast.Call) -> bool:
    """Whether an ``open()`` call opens for (over)writing."""
    mode_expr: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_expr = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_expr = keyword.value
    if mode_expr is None:
        return False  # default "r"
    if (isinstance(mode_expr, ast.Constant)
            and isinstance(mode_expr.value, str)):
        return mode_expr.value in _WRITE_MODES
    return False


def _rooted_at_args(node: ast.expr) -> bool:
    """True when the path expression hangs off an ``args.*`` chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(node, ast.Call):
            node = node.func
            continue
        node = node.value
    return isinstance(node, ast.Name) and node.id == "args"


def _path_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "file":
            return keyword.value
    return None


def _calls_os_replace(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if (isinstance(target, ast.Attribute)
                and target.attr == "replace"
                and isinstance(target.value, ast.Name)
                and target.value.id == "os"):
            return True
        if (isinstance(target, ast.Name)
                and target.id == "replace"):
            return True
    return False


class AtomicPublishRule(Rule):
    code = "STAR008"
    name = "atomic-publish"
    description = (
        "a telemetry/lab file is written in place instead of "
        "tmp-write + os.replace"
    )

    def __init__(self,
                 scopes: Iterable[str] = DEFAULT_SCOPES) -> None:
        self.scopes = tuple(scopes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(self.scopes):
            return
        yield from self._walk(ctx, ctx.tree, enclosing=None)

    def _walk(self, ctx: FileContext, node: ast.AST,
              enclosing: Optional[ast.AST]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                yield from self._walk(ctx, child, enclosing=child)
            else:
                if isinstance(child, ast.Call):
                    finding = self._check_call(ctx, child, enclosing)
                    if finding is not None:
                        yield finding
                yield from self._walk(ctx, child, enclosing)

    def _check_call(self, ctx: FileContext, call: ast.Call,
                    enclosing: Optional[ast.AST]) -> Optional[Finding]:
        func = call.func
        is_open = isinstance(func, ast.Name) and func.id == "open" \
            and _write_mode(call)
        is_write_method = (
            isinstance(func, ast.Attribute)
            and func.attr in ("write_text", "write_bytes")
        )
        if not (is_open or is_write_method):
            return None
        path_expr: Optional[ast.expr]
        if is_open:
            path_expr = _path_argument(call)
        else:
            path_expr = func.value  # type: ignore[union-attr]
        if path_expr is not None and _rooted_at_args(path_expr):
            return None
        if enclosing is not None and _calls_os_replace(enclosing):
            return None
        return ctx.finding(
            self.code, call,
            "non-atomic publish: write to a sibling temp file and "
            "os.replace() it into place so concurrent readers never "
            "observe a torn file",
        )
