"""STAR005: the hot-path memory-layout roster must not drift.

PR 3's perf pass leaned on ``__slots__`` and frozen+slotted dataclasses
for the per-access object churn (node images, cache lines, the LRU, the
write queue, ADR, geometry, metric instruments). Those wins silently
evaporate when a later edit drops the ``__slots__`` declaration or the
``slots=True`` dataclass flag — nothing fails, the simulator just gets
slower until the perf gate trips. This rule pins the roster.

A rostered class satisfies the rule when its body assigns ``__slots__``
or it is decorated ``@dataclass(..., slots=True)``; classes expected to
be immutable images must also carry ``frozen=True``. A rostered class
that disappears from its module is reported too (rename the class →
update the roster, consciously).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule

# module path -> {class name: needs_frozen}
DEFAULT_ROSTER: Dict[str, Dict[str, bool]] = {
    "repro/sim/batch.py": {"EpochEngine": False},
    "repro/tree/node.py": {
        "NodeImage": True,
        "DataLineImage": True,
        "CachedNode": False,
    },
    "repro/tree/geometry.py": {"TreeGeometry": False},
    "repro/tree/sit.py": {"SITAuthenticator": False},
    "repro/mem/cache.py": {
        "CacheLine": False,
        "SetAssociativeCache": False,
    },
    "repro/mem/writequeue.py": {"WritePendingQueue": False},
    "repro/mem/adr.py": {"AdrRegion": False},
    "repro/util/lru.py": {"LRUCache": False},
    "repro/crypto/otp.py": {"CounterModeEngine": False},
    "repro/obs/metrics.py": {
        "Counter": False,
        "Gauge": False,
        "Histogram": False,
    },
}


def _dataclass_flags(node: ast.ClassDef) -> Optional[Tuple[bool, bool]]:
    """(slots, frozen) when decorated with @dataclass, else None."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        slots = frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if not (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    continue
                if keyword.arg == "slots":
                    slots = True
                elif keyword.arg == "frozen":
                    frozen = True
        return slots, frozen
    return None


def _has_slots_assignment(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class HotPathRosterRule(Rule):
    code = "STAR005"
    name = "hot-path-roster"
    description = (
        "a perf-critical class lost its __slots__ / frozen-dataclass "
        "layout"
    )

    def __init__(self,
                 roster: Optional[Dict[str, Dict[str, bool]]] = None
                 ) -> None:
        self.roster = DEFAULT_ROSTER if roster is None else roster

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        expected = self.roster.get(ctx.module_path)
        if not expected:
            return
        seen: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            needs_frozen = expected.get(node.name)
            if needs_frozen is None:
                continue
            seen.add(node.name)
            flags = _dataclass_flags(node)
            if flags is not None:
                slots, frozen = flags
                if not slots:
                    yield ctx.finding(
                        self.code, node,
                        "hot-path dataclass %r must declare slots=True"
                        % node.name,
                    )
                if needs_frozen and not frozen:
                    yield ctx.finding(
                        self.code, node,
                        "image dataclass %r must declare frozen=True"
                        % node.name,
                    )
            elif not _has_slots_assignment(node):
                yield ctx.finding(
                    self.code, node,
                    "hot-path class %r must declare __slots__"
                    % node.name,
                )
        for missing in sorted(set(expected) - seen):
            yield Finding(
                rule=self.code, path=ctx.path, line=1, col=0,
                message="rostered hot-path class %r not found in %s; "
                        "update the STAR005 roster if it moved"
                        % (missing, ctx.module_path),
            )
