"""STAR004: stats-counter hygiene against the metric catalogue.

The telemetry registry auto-creates instruments on first use, so a typo
in a metric name forks a silent, never-read counter. This rule checks
emission sites against ``repro.obs.catalog`` in both directions:

* a literal metric name used at a stats/registry call site but absent
  from the catalogue → finding at the call site;
* a catalogue entry no scanned code ever emits → finding against the
  catalogue (only on full-tree runs — when the scan included the NVM
  and controller modules — so sub-tree invocations don't cry wolf).

Emission sites are recognized by receiver shape (``stats.add(...)``,
``self.stats.observe(...)``, ``registry.counter(...)``) to avoid
confusing dict ``.get`` or unrelated ``.add`` calls. Dynamic names
built with ``%``-formatting are matched against the catalogue's
declared patterns.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule
from repro.obs import catalog

_RECEIVER_NAMES = frozenset({"stats", "registry", "recovery_stats"})
_RECEIVER_ATTRS = frozenset(
    {"stats", "registry", "_stats", "recovery_stats"}
)
_METHODS = frozenset({
    "add", "get", "gauge_set", "observe",
    "counter", "gauge", "histogram",
})
_FULL_SCAN_MARKERS = frozenset({
    "repro/mem/nvm.py", "repro/sim/controller.py",
})


def _receiver_ok(func: ast.Attribute) -> bool:
    recv = func.value
    if isinstance(recv, ast.Name):
        return recv.id in _RECEIVER_NAMES
    if isinstance(recv, ast.Attribute):
        return recv.attr in _RECEIVER_ATTRS
    return False


def _literal_or_template(arg: ast.expr) -> Tuple[Optional[str], bool]:
    """(name, is_template) for the metric-name argument, if static."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, "%" in arg.value
    if (isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Mod)
            and isinstance(arg.left, ast.Constant)
            and isinstance(arg.left.value, str)):
        return arg.left.value, True
    return None, False


class MetricCatalogRule(Rule):
    code = "STAR004"
    name = "metric-catalog"
    description = (
        "metric name not in the repro.obs catalogue, or catalogue entry "
        "never emitted"
    )

    def __init__(self,
                 metrics: Optional[Dict[str, str]] = None,
                 patterns: Optional[List[Tuple[str, str]]] = None,
                 require_full_scan: bool = True) -> None:
        self.metrics = dict(
            catalog.METRICS if metrics is None else metrics
        )
        self.patterns = list(
            catalog.METRIC_PATTERNS if patterns is None else patterns
        )
        self._pattern_regexes = [
            (catalog._pattern_regex(template), template, kind)
            for template, kind in self.patterns
        ]
        self.require_full_scan = require_full_scan
        self._seen_names: Set[str] = set()
        self._seen_templates: Set[str] = set()
        self._scanned_modules: Set[str] = set()
        self._catalog_path = "src/repro/obs/catalog.py"

    # ------------------------------------------------------------------
    def _lookup(self, name: str) -> Optional[str]:
        kind = self.metrics.get(name)
        if kind is not None:
            self._seen_names.add(name)
            return kind
        for regex, template, pattern_kind in self._pattern_regexes:
            if regex.match(name):
                self._seen_templates.add(template)
                return pattern_kind
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        self._scanned_modules.add(ctx.module_path)
        if ctx.module_path == "repro/obs/catalog.py":
            self._catalog_path = ctx.path
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if func.attr not in _METHODS or not _receiver_ok(func):
                continue
            if not node.args:
                continue
            name, is_template = _literal_or_template(node.args[0])
            if name is None:
                continue
            if is_template:
                if name in {t for t, _ in self.patterns}:
                    self._seen_templates.add(name)
                else:
                    yield ctx.finding(
                        self.code,
                        node,
                        "metric template %r is not declared in "
                        "METRIC_PATTERNS (repro.obs.catalog)" % name,
                    )
            elif self._lookup(name) is None:
                yield ctx.finding(
                    self.code,
                    node,
                    "metric %r is not in the repro.obs catalogue; add "
                    "it to METRICS or fix the name" % name,
                )

    def finish(self) -> Iterator[Finding]:
        if (self.require_full_scan
                and not _FULL_SCAN_MARKERS <= self._scanned_modules):
            return
        anchor = Finding(
            rule=self.code, path=self._catalog_path, line=1, col=0,
            message="",
        )
        for name in sorted(set(self.metrics) - self._seen_names):
            yield Finding(
                rule=self.code, path=anchor.path, line=1, col=0,
                message="catalogued metric %r is never emitted by the "
                        "scanned code" % name,
            )
        declared = {t for t, _ in self.patterns}
        for template in sorted(declared - self._seen_templates):
            yield Finding(
                rule=self.code, path=anchor.path, line=1, col=0,
                message="catalogued metric pattern %r is never emitted "
                        "by the scanned code" % template,
            )
