"""The STAR00x rule set.

Each module holds one rule class; :func:`default_rules` builds the
registry the CLI and CI run with.
"""

from typing import List

from repro.lint.engine import Rule
from repro.lint.rules.atomic_publish import AtomicPublishRule
from repro.lint.rules.determinism import NondeterminismRule
from repro.lint.rules.fencing import LeaseFencingRule
from repro.lint.rules.hotpath import HotPathRosterRule
from repro.lint.rules.metrics import MetricCatalogRule
from repro.lint.rules.nvm_access import UncountedNvmAccessRule
from repro.lint.rules.parity import BatchParityRule
from repro.lint.rules.widths import BitWidthOverflowRule

__all__ = [
    "AtomicPublishRule",
    "BatchParityRule",
    "BitWidthOverflowRule",
    "HotPathRosterRule",
    "LeaseFencingRule",
    "MetricCatalogRule",
    "NondeterminismRule",
    "UncountedNvmAccessRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    return [
        UncountedNvmAccessRule(),
        BitWidthOverflowRule(),
        NondeterminismRule(),
        MetricCatalogRule(),
        HotPathRosterRule(),
        BatchParityRule(),
        LeaseFencingRule(),
        AtomicPublishRule(),
    ]
