"""STAR003: simulation paths must be deterministic.

Fuzz campaigns (PR 2) replay cases bit-identically across processes,
the perf gate (PR 3) compares committed scores, the lab store
(PR 6) content-addresses results by spec, and the farm (PR 7) merges
worker stores assuming spec-pure payloads, so anything under
``repro/sim``, ``repro/core``, ``repro/fuzz`` or ``repro/lab``
(including ``lab/farm.py`` and ``lab/lease.py``) must not consult
global randomness or wall clocks, and must not let set iteration
order leak into traces. The lab's single sanctioned wall-clock seam
is ``repro/lab/clock.py`` (file-level pragma); all other lab timing —
scheduler timeouts, lease deadlines, heartbeats — goes through an
injected ``Clock``. Flagged:

* calls through the module-level ``random.*`` API (seeded
  ``random.Random(...)`` instances stay allowed — that is how workloads
  and campaigns derive their determinism),
* wall-clock reads: ``time.time/.._ns``, ``perf_counter``,
  ``monotonic``, ``datetime.now/utcnow``,
* iterating a bare ``set`` display / ``set(...)`` call / set
  comprehension in ``for`` statements and comprehensions (order is
  hash-randomized across runs; sort first).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule

_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})
_TIME_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_DEFAULT_SCOPES: Tuple[str, ...] = (
    "repro/sim/", "repro/core/", "repro/fuzz/", "repro/lab/",
)


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class NondeterminismRule(Rule):
    code = "STAR003"
    name = "nondeterminism"
    description = (
        "global randomness, wall clocks or unordered set iteration in a "
        "deterministic simulation path"
    )

    def __init__(self, scopes: Iterable[str] = _DEFAULT_SCOPES) -> None:
        self.scopes = tuple(scopes)

    def _in_scope(self, ctx: FileContext) -> bool:
        return any(ctx.module_path.startswith(s) for s in self.scopes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(ctx, generator.iter)

    def _check_call(self, ctx: FileContext, node: ast.Call
                    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        recv = func.value
        if not isinstance(recv, ast.Name):
            return
        if recv.id == "random" and func.attr not in _ALLOWED_RANDOM_ATTRS:
            yield ctx.finding(
                self.code,
                node,
                "module-level random.%s() is process-global state; use a "
                "seeded random.Random instance" % func.attr,
            )
        elif recv.id == "time" and func.attr in _TIME_ATTRS:
            yield ctx.finding(
                self.code,
                node,
                "wall-clock read time.%s() in a simulation path breaks "
                "replay determinism" % func.attr,
            )
        elif recv.id == "datetime" and func.attr in _DATETIME_ATTRS:
            yield ctx.finding(
                self.code,
                node,
                "datetime.%s() in a simulation path breaks replay "
                "determinism" % func.attr,
            )

    def _check_iteration(self, ctx: FileContext, iter_node: ast.expr
                         ) -> Iterator[Finding]:
        if _is_set_expression(iter_node):
            yield ctx.finding(
                self.code,
                iter_node,
                "iterating a set has hash-randomized order; iterate "
                "sorted(...) instead",
            )
