"""STAR006: batch/scalar parity drift.

PR 8's batched epoch pipeline (``repro/sim/batch.py``) re-implements
the scalar controller's hot path and is pinned bit-identical by
``tests/test_batch_parity.py`` — but that suite only fails *after*
someone notices divergent results. The structural hazard is earlier:
the scalar controller grows a field (a new histogram, a new register)
and the batch engine silently never mirrors it. This rule turns the
mirroring contract into a static check.

Mechanics: from the :class:`~repro.lint.project.ProjectContext`, take
the attribute footprint of the scalar controller class — every
``self.<attr>`` its methods read or write, minus its own method names
— and require each field to either appear as an attribute name
somewhere in the batch module (it is bound, read or mirrored there) or
be listed in the batch module's explicit module-level exemption
roster::

    SCALAR_PARITY_EXEMPT = frozenset({"config", "layout", ...})

A field in neither place is a drift finding at its first use in the
scalar controller. The reverse direction keeps the roster honest: a
rostered name that *is* referenced in the batch module, or that the
scalar controller no longer has, is an unused-exemption finding at the
roster. Matching is by attribute name, which errs toward false
negatives (any mention in batch.py satisfies it), never false
positives — the parity suite remains the semantic backstop.

Both sides are configurable, so the self-test fixtures stage a
synthetic controller/batch pair under fake ``repro/sim/`` paths and
exercise the rule without depending on the live tree staying dirty.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule
from repro.lint.project import ClassInfo, ModuleInfo, ProjectContext

DEFAULT_SCALAR = ("repro/sim/controller.py", "SecureMemoryController")
DEFAULT_BATCH = "repro/sim/batch.py"
ROSTER_NAME = "SCALAR_PARITY_EXEMPT"


def _class_field_footprint(cls: ClassInfo) -> Dict[str, int]:
    """``self.<attr>`` -> first line, excluding methods and dunders."""
    methods = set(cls.methods)
    out: Dict[str, int] = {}
    for node in ast.walk(cls.node):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr not in methods
                and not node.attr.startswith("__")):
            if node.attr not in out or node.lineno < out[node.attr]:
                out[node.attr] = node.lineno
    return out


def _attribute_names(tree: ast.AST) -> Set[str]:
    return {node.attr for node in ast.walk(tree)
            if isinstance(node, ast.Attribute)}


def _roster(info: ModuleInfo) -> Optional[Tuple[Set[str], int]]:
    """The module-level exemption roster literal, with its line."""
    if info.tree is None:
        return None
    for stmt in info.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == ROSTER_NAME
                   for t in stmt.targets):
            continue
        value = stmt.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("frozenset", "set")
                and value.args):
            value = value.args[0]
        names: Set[str] = set()
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            for element in value.elts:
                if (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    names.add(element.value)
        return names, stmt.lineno
    return None


class BatchParityRule(Rule):
    code = "STAR006"
    name = "batch-scalar-parity"
    description = (
        "a scalar hot-path field is neither mirrored by the batch "
        "engine nor exempted"
    )

    def __init__(self,
                 scalar: Tuple[str, str] = DEFAULT_SCALAR,
                 batch_module: str = DEFAULT_BATCH) -> None:
        self.scalar_module, self.scalar_class = scalar
        self.batch_module = batch_module
        self._project: Optional[ProjectContext] = None

    def begin(self, project: ProjectContext) -> None:
        self._project = project

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def finish(self) -> Iterator[Finding]:
        project = self._project
        if project is None:
            return
        scalar = project.module(self.scalar_module)
        batch = project.module(self.batch_module)
        if scalar is None or batch is None or batch.tree is None:
            # half the pair in scope: nothing to cross-reference
            return
        cls = scalar.classes.get(self.scalar_class)
        if cls is None:
            yield Finding(
                rule=self.code, path=scalar.path, line=1, col=0,
                message="scalar controller class %r not found in %s; "
                        "update the STAR006 configuration if it moved"
                        % (self.scalar_class, self.scalar_module),
            )
            return
        fields = _class_field_footprint(cls)
        mirrored = _attribute_names(batch.tree)
        roster_entry = _roster(batch)
        exempt: Set[str] = set()
        roster_line = 1
        if roster_entry is not None:
            exempt, roster_line = roster_entry

        for attr in sorted(set(fields) - mirrored - exempt):
            yield Finding(
                rule=self.code, path=scalar.path,
                line=fields[attr], col=0,
                message="scalar hot-path field %r is not mirrored in "
                        "%s; mirror it in the batch engine or add it "
                        "to %s with a comment saying why batch "
                        "execution cannot touch it"
                        % (attr, self.batch_module, ROSTER_NAME),
            )
        for attr in sorted(exempt & mirrored):
            yield Finding(
                rule=self.code, path=batch.path,
                line=roster_line, col=0,
                message="parity exemption %r is unused: the batch "
                        "engine references that attribute; drop it "
                        "from %s" % (attr, ROSTER_NAME),
            )
        for attr in sorted(exempt - set(fields)):
            yield Finding(
                rule=self.code, path=batch.path,
                line=roster_line, col=0,
                message="parity exemption %r is stale: the scalar "
                        "controller has no such field; drop it from "
                        "%s" % (attr, ROSTER_NAME),
            )
