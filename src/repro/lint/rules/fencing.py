"""STAR007: lease-board mutations must be fenced.

The farm's correctness under SIGKILLed workers (PR 7) rests on two
invariants of ``repro/lab/lease.py``: every multi-statement mutation
of the ``leases`` table happens inside an explicit ``BEGIN IMMEDIATE``
transaction (claims from separate processes race on one SQLite file),
and every owner-scoped mutation goes through the fence-checked helper
(``_fenced_update``) so a zombie worker's stale token is rejected
instead of overwriting the thief's progress. Today those invariants
live only in tests; this rule pins them structurally.

A finding is any ``execute``/``executemany`` call whose SQL literal
mutates the ``leases`` table (``UPDATE``/``INSERT``/``DELETE``/
``REPLACE`` mentioning the table) from a lease-protocol module,
unless the enclosing function either

* is on the sanctioned-helper roster (``_fenced_update`` — the fence
  predicate *is* its WHERE clause), or
* opens a transaction itself (its body calls ``self._begin()``), with
  the mutation's commit/rollback discipline left to review.

SQL built outside a literal (f-strings aside from the
``_fenced_update`` SET interpolation, string variables) cannot be
classified and is conservatively ignored — the rule errs toward false
negatives, and the farm smoke tests remain the behavioural backstop.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterable, Iterator, Optional

from repro.lint.engine import FileContext, Finding, Rule

#: Exact module paths, plus ``/``-terminated prefixes covering whole
#: packages — ``repro/lab/net/`` keeps the HTTP lease server honest:
#: its verbs must execute through the board's fenced/transactional
#: methods, never through raw SQL of their own.
DEFAULT_MODULES = (
    "repro/lab/lease.py",
    "repro/lab/farm.py",
    "repro/lab/net/",
)
DEFAULT_HELPERS = frozenset({"_fenced_update"})

_MUTATION = re.compile(
    r"^\s*(UPDATE|INSERT|DELETE|REPLACE)\b", re.IGNORECASE)
_TABLE = re.compile(r"\bleases\b", re.IGNORECASE)


def _sql_literal(node: ast.expr) -> Optional[str]:
    """The SQL text of an argument, when statically known.

    String constants and the ``"... %s ..." % args`` /
    ``"...".format(...)`` / f-string shapes used to interpolate SET
    clauses all resolve to their template text (placeholders dropped),
    which is enough to classify the statement kind and target table.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return _sql_literal(node.left)
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"):
        return _sql_literal(node.func.value)
    if isinstance(node, ast.JoinedStr):
        parts = [v.value for v in node.values
                 if isinstance(v, ast.Constant)
                 and isinstance(v.value, str)]
        return "".join(parts) if parts else None
    return None


def _calls_begin(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_begin"):
            return True
    return False


class LeaseFencingRule(Rule):
    code = "STAR007"
    name = "lease-fencing"
    description = (
        "a lease-board mutation bypasses the fenced helpers / "
        "BEGIN IMMEDIATE transactions"
    )

    def __init__(self,
                 modules: Iterable[str] = DEFAULT_MODULES,
                 helpers: FrozenSet[str] = DEFAULT_HELPERS) -> None:
        self.modules = frozenset(modules)
        self.helpers = helpers

    def _in_scope(self, module_path: str) -> bool:
        for entry in self.modules:
            if entry.endswith("/"):
                if module_path.startswith(entry):
                    return True
            elif module_path == entry:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx.module_path):
            return
        yield from self._walk(ctx, ctx.tree, enclosing=None)

    def _walk(self, ctx: FileContext, node: ast.AST,
              enclosing: Optional[ast.AST]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                yield from self._walk(ctx, child, enclosing=child)
            else:
                if isinstance(child, ast.Call):
                    finding = self._check_call(ctx, child, enclosing)
                    if finding is not None:
                        yield finding
                yield from self._walk(ctx, child, enclosing)

    def _check_call(self, ctx: FileContext, call: ast.Call,
                    enclosing: Optional[ast.AST]) -> Optional[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("execute", "executemany")):
            return None
        if not call.args:
            return None
        sql = _sql_literal(call.args[0])
        if sql is None:
            return None
        if not (_MUTATION.match(sql) and _TABLE.search(sql)):
            return None
        if enclosing is not None:
            name = getattr(enclosing, "name", "")
            if name in self.helpers:
                return None
            if _calls_begin(enclosing):
                return None
        return ctx.finding(
            self.code, call,
            "mutation of the lease board outside a BEGIN IMMEDIATE "
            "transaction; route it through a fenced helper or open "
            "the transaction with self._begin() and commit/rollback",
        )
