"""STAR001: every NVM touch must be counted.

All write-traffic and recovery-cost figures are computed from the NVM's
per-region stat counters (``repro.mem.nvm``), so reaching around the
counted ``read_*``/``write_*`` API — e.g. iterating ``nvm._meta``
directly — silently removes traffic from the results. That is exactly
the bug class PR 3 fixed by hand; this rule machine-detects it.

Heuristic: an attribute access ``<recv>._data/_meta/_ra/_st`` is flagged
when the receiver is NVM-shaped — a name or attribute called ``nvm`` (or
ending in ``nvm``). The NVM class itself (``repro/mem/nvm.py``) is the
counted API and is exempt; the sanctioned uncounted accessors it exports
(``peek_*``, ``flush_*``, ``tamper_*``, ``data_lines``, ``meta_lines``,
``st_slots``, ``*_is_touched``) are the escape hatch for oracles,
battery flushes and attackers. The batched epoch engine
(``repro/sim/batch.py``) is the second counted implementation of the
same API — it binds the region dicts *and* their traffic counters
locally and bumps both together, with scalar parity enforced by
``tests/test_batch_parity.py`` — so it shares the exemption.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Finding, Rule

_REGIONS = frozenset({"_data", "_meta", "_ra", "_st"})


def _is_nvm_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "nvm" or node.id.endswith("nvm")
    if isinstance(node, ast.Attribute):
        return node.attr == "nvm" or node.attr.endswith("nvm")
    return False


class UncountedNvmAccessRule(Rule):
    code = "STAR001"
    name = "uncounted-nvm-access"
    description = (
        "direct access to NVM region internals bypasses the counted "
        "traffic API"
    )

    def __init__(self,
                 exempt_modules: Iterable[str] = (
                     "repro/mem/nvm.py", "repro/sim/batch.py",
                 )) -> None:
        self.exempt_modules = frozenset(exempt_modules)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module_path in self.exempt_modules:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in _REGIONS and _is_nvm_receiver(node.value):
                yield ctx.finding(
                    self.code,
                    node,
                    "uncounted access to NVM internals (%r); use the "
                    "counted read_*/write_* API or a sanctioned "
                    "accessor (peek_*, data_lines(), meta_lines(), ...)"
                    % node.attr,
                )
