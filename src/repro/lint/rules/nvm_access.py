"""STAR001: every NVM touch must be counted.

All write-traffic and recovery-cost figures are computed from the NVM's
per-region stat counters (``repro.mem.nvm``), so reaching around the
counted ``read_*``/``write_*`` API — e.g. iterating ``nvm._meta``
directly — silently removes traffic from the results. That is exactly
the bug class PR 3 fixed by hand; this rule machine-detects it.

Three detectors, from syntactic to whole-program:

1. **Direct access** (the PR 4 heuristic, kept): an attribute access
   ``<recv>._data/_meta/_ra/_st`` where the receiver is NVM-shaped —
   a name or attribute called ``nvm`` (or ending in ``nvm``).
2. **Inherited access**: ``self._data`` (and friends) inside a method
   of a project-local ``NVM`` subclass. The receiver is ``self``, so
   the name heuristic is blind to it, but the class hierarchy in the
   :class:`~repro.lint.project.ProjectContext` is not.
3. **Helper indirection**: a call-graph effect propagation. Any
   function parameter whose body (transitively, through further
   project-local calls) reaches a region attribute carries a
   region-access effect; a call site that binds an NVM-shaped argument
   to an effectful parameter is the uncounted access, reported where
   the NVM value flows in. This kills the receiver-name false
   negative: ``def scan(mem): return len(mem._data)`` plus
   ``scan(machine.nvm)`` is now a finding at the call.

The NVM class itself (``repro/mem/nvm.py``) is the counted API and is
exempt; the sanctioned uncounted accessors it exports (``peek_*``,
``flush_*``, ``tamper_*``, ``data_lines``, ``meta_lines``,
``st_slots``, ``*_is_touched``) are the escape hatch for oracles,
battery flushes and attackers. The batched epoch engine
(``repro/sim/batch.py``) is the second counted implementation of the
same API — it binds the region dicts *and* their traffic counters
locally and bumps both together, with scalar parity enforced by
``tests/test_batch_parity.py`` — so it shares the exemption.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule
from repro.lint.project import FunctionInfo, ProjectContext

_REGIONS = frozenset({"_data", "_meta", "_ra", "_st"})

# the counted API lives here; its subclass detection keys off this class
_NVM_MODULE = "repro/mem/nvm.py"
_NVM_CLASS = "NVM"

# qualified-function -> {positional param index -> regions reached}
_Effects = Dict[str, Dict[int, Set[str]]]


def _is_nvm_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "nvm" or node.id.endswith("nvm")
    if isinstance(node, ast.Attribute):
        return node.attr == "nvm" or node.attr.endswith("nvm")
    return False


def _param_effects(fn: FunctionInfo) -> Dict[int, Set[str]]:
    """Direct region touches on ``fn``'s bindable parameters."""
    params = fn.positional_params
    index = {name: i for i, name in enumerate(params)}
    out: Dict[int, Set[str]] = {}
    for node in ast.walk(fn.node):
        if (isinstance(node, ast.Attribute) and node.attr in _REGIONS
                and isinstance(node.value, ast.Name)
                and node.value.id in index):
            out.setdefault(index[node.value.id], set()).add(node.attr)
    return out


def compute_region_effects(project: ProjectContext) -> _Effects:
    """Fixpoint: which parameters reach NVM region internals.

    Seeded with direct ``param._region`` touches, then propagated
    backwards through resolved call sites: if ``f`` passes its own
    parameter ``p`` into an effectful position of ``g``, then ``f.p``
    inherits ``g``'s effect. Iterates to a fixpoint (the effect
    lattice is finite and grows monotonically, so this terminates).
    """
    effects: _Effects = {}
    for fn in project.iter_functions():
        direct = _param_effects(fn)
        if direct:
            effects[fn.qualified] = direct

    changed = True
    while changed:
        changed = False
        for fn in project.iter_functions():
            index = {name: i for i, name
                     in enumerate(fn.positional_params)}
            if not index:
                continue
            for call in ast.walk(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = project.resolve_call(
                    fn.module_path, call, fn.class_name)
                if callee is None:
                    continue
                callee_effects = effects.get(callee.qualified)
                if not callee_effects:
                    continue
                for arg_index, arg in _bound_args(callee, call):
                    regions = callee_effects.get(arg_index)
                    if (not regions or not isinstance(arg, ast.Name)
                            or arg.id not in index):
                        continue
                    mine = effects.setdefault(
                        fn.qualified, {}
                    ).setdefault(index[arg.id], set())
                    if not regions <= mine:
                        mine |= regions
                        changed = True
    return effects


def _bound_args(callee: FunctionInfo,
                call: ast.Call) -> Iterator[Tuple[int, ast.expr]]:
    """(positional index in callee, argument expr) for each binding
    this call makes that we can resolve statically."""
    params = callee.positional_params
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            yield i, arg
    index = {name: i for i, name in enumerate(params)}
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in index:
            yield index[keyword.arg], keyword.value


class UncountedNvmAccessRule(Rule):
    code = "STAR001"
    name = "uncounted-nvm-access"
    description = (
        "direct access to NVM region internals bypasses the counted "
        "traffic API"
    )

    def __init__(self,
                 exempt_modules: Iterable[str] = (
                     "repro/mem/nvm.py", "repro/sim/batch.py",
                 )) -> None:
        self.exempt_modules = frozenset(exempt_modules)
        self._project: Optional[ProjectContext] = None
        self._effects: _Effects = {}
        self._nvm_subclasses: Set[str] = set()
        """Qualified names of project-local NVM subclasses."""

    def begin(self, project: ProjectContext) -> None:
        self._project = project
        self._effects = compute_region_effects(project)
        self._nvm_subclasses = {
            cls.qualified
            for cls in project.subclasses_of(_NVM_MODULE, _NVM_CLASS)
        }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module_path in self.exempt_modules:
            return
        yield from self._direct_accesses(ctx)
        if self._project is not None:
            yield from self._inherited_accesses(ctx)
            yield from self._effectful_calls(ctx)

    # ------------------------------------------------------------------
    # detector 1: receiver-name heuristic
    # ------------------------------------------------------------------
    def _direct_accesses(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in _REGIONS and _is_nvm_receiver(node.value):
                yield ctx.finding(
                    self.code,
                    node,
                    "uncounted access to NVM internals (%r); use the "
                    "counted read_*/write_* API or a sanctioned "
                    "accessor (peek_*, data_lines(), meta_lines(), ...)"
                    % node.attr,
                )

    # ------------------------------------------------------------------
    # detector 2: self.<region> in NVM subclasses
    # ------------------------------------------------------------------
    def _inherited_accesses(self, ctx: FileContext) -> Iterator[Finding]:
        assert self._project is not None
        info = self._project.module(ctx.module_path)
        if info is None:
            return
        for cls in info.classes.values():
            if cls.qualified not in self._nvm_subclasses:
                continue
            for node in ast.walk(cls.node):
                if (isinstance(node, ast.Attribute)
                        and node.attr in _REGIONS
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    yield ctx.finding(
                        self.code,
                        node,
                        "NVM subclass %r reaches region %r through "
                        "self, bypassing the counted API; add a "
                        "counted accessor to the NVM base instead"
                        % (cls.name, node.attr),
                    )

    # ------------------------------------------------------------------
    # detector 3: NVM flowing into effectful helper parameters
    # ------------------------------------------------------------------
    def _effectful_calls(self, ctx: FileContext) -> Iterator[Finding]:
        assert self._project is not None
        for fn, body in self._project.enclosing_functions(
                ctx.module_path):
            for call in ast.walk(body):
                if not isinstance(call, ast.Call):
                    continue
                yield from self._check_call(ctx, fn, call)
        # module-level calls (no enclosing function)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for call in ast.walk(stmt):
                if isinstance(call, ast.Call):
                    yield from self._check_call(ctx, None, call)

    def _check_call(self, ctx: FileContext,
                    caller: Optional[FunctionInfo],
                    call: ast.Call) -> Iterator[Finding]:
        assert self._project is not None
        callee = self._project.resolve_call(
            ctx.module_path, call,
            caller.class_name if caller is not None else None,
        )
        if callee is None or callee.module_path in self.exempt_modules:
            return
        callee_effects = self._effects.get(callee.qualified)
        if not callee_effects:
            return
        for arg_index, arg in _bound_args(callee, call):
            regions = callee_effects.get(arg_index)
            if not regions or not _is_nvm_receiver(arg):
                continue
            params = callee.positional_params
            param = params[arg_index] if arg_index < len(params) \
                else "?"
            yield ctx.finding(
                self.code,
                call,
                "passes NVM to %s() whose parameter %r reaches region "
                "internals (%s) uncounted; route through the counted "
                "read_*/write_* API instead"
                % (callee.name, param,
                   ", ".join(sorted(regions))),
            )
