"""SARIF 2.1.0 reporter for ``star-lint --sarif``.

SARIF (Static Analysis Results Interchange Format) is what GitHub's
code-scanning ingestion understands, so emitting it from the CI lint
job turns findings into review annotations on the PR diff instead of
a log line someone has to scroll for.

Only the required subset of the schema is produced — ``version``,
one ``run`` with a ``tool.driver`` (name, rule metadata) and one
``result`` per finding with a ``physicalLocation``. Paths are
emitted repo-relative with forward slashes, as the spec's
``artifactLocation.uri`` requires.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "star-lint"
TOOL_URI = "https://github.com/star-repro/star-repro"


def _artifact_uri(path: str) -> str:
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def finding_to_sarif_result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(finding.path),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        # SARIF columns are 1-based; Finding cols are
                        # 0-based AST offsets
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def sarif_result_to_finding(result: Dict[str, object]) -> Finding:
    """The inverse mapping (exercised by the round-trip tests)."""
    locations = result["locations"]  # type: ignore[index]
    physical = locations[0]["physicalLocation"]  # type: ignore[index]
    region = physical["region"]
    return Finding(
        rule=str(result["ruleId"]),
        path=str(physical["artifactLocation"]["uri"]),
        line=int(region["startLine"]),
        col=int(region["startColumn"]) - 1,
        message=str(result["message"]["text"]),  # type: ignore[index]
    )


def sarif_report(findings: Sequence[Finding],
                 rules: Sequence[Rule] = ()) -> Dict[str, object]:
    """The full SARIF log object for one run."""
    driver: Dict[str, object] = {
        "name": TOOL_NAME,
        "informationUri": TOOL_URI,
        "rules": [
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
            }
            for rule in rules
        ],
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    finding_to_sarif_result(f) for f in findings
                ],
            }
        ],
    }


def findings_to_sarif(findings: Sequence[Finding],
                      rules: Sequence[Rule] = ()) -> str:
    return json.dumps(sarif_report(findings, rules), indent=2)


def findings_from_sarif(text: str) -> List[Finding]:
    payload = json.loads(text)
    out: List[Finding] = []
    for run in payload["runs"]:
        for result in run["results"]:
            out.append(sarif_result_to_finding(result))
    return out
