"""The lint engine: project pass, file walker, pragmas, reporters.

The run is two-phase. Phase one parses every file into a
:class:`FileContext` and folds each tree into a
:class:`~repro.lint.project.ProjectContext` (symbol table, call graph,
class hierarchy); each rule then gets :meth:`Rule.begin` with that
whole-program view. Phase two walks the files: a :class:`Rule`
inspects one parsed file at a time through its :class:`FileContext`
(which carries ``ctx.project``) and yields :class:`Finding` objects;
rules that need whole-tree state (STAR004's unused-catalogue
direction) accumulate it across :meth:`Rule.check` calls and emit the
remainder from :meth:`Rule.finish`. ``finish()`` findings go through
the same pragma suppression as per-file ones, keyed by the finding's
path.

Suppression follows the familiar trailing-pragma style::

    machine.nvm._meta  # lint: disable=STAR001
    # lint: disable-file=STAR003   (anywhere in the file, whole file)

Reporters: :func:`render_text` for humans, ``Finding.to_dict`` /
:func:`findings_to_json` for machines (consumed by the CI job and the
round-trip test).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.project import ProjectContext

_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
        )


class FileContext:
    """One parsed source file, as seen by the rules."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines: List[str] = source.splitlines()
        self.module_path = _module_path(path)
        self.project: Optional[ProjectContext] = None
        """The whole-program view; set by the engine before checks run.
        ``None`` only when a context is built by hand in tests."""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    # ------------------------------------------------------------------
    # pragma suppression
    # ------------------------------------------------------------------
    def disabled_rules(self, line: int) -> Set[str]:
        """Rules suppressed on ``line`` (1-based) via a trailing pragma."""
        if not 1 <= line <= len(self.lines):
            return set()
        match = _PRAGMA.search(self.lines[line - 1])
        if match is None:
            return set()
        return {code.strip() for code in match.group(1).split(",")}

    def file_disabled_rules(self) -> Set[str]:
        disabled: Set[str] = set()
        for text in self.lines:
            match = _FILE_PRAGMA.search(text)
            if match is not None:
                disabled |= {
                    code.strip() for code in match.group(1).split(",")
                }
        return disabled

    def is_suppressed(self, finding: Finding) -> bool:
        return (
            finding.rule in self.disabled_rules(finding.line)
            or finding.rule in self.file_disabled_rules()
        )


def _module_path(path: str) -> str:
    """Normalize a file path to its ``repro/...`` suffix.

    Rules scope themselves by package (``repro/sim/...``); anchoring at
    the last ``repro/`` component makes that work for ``src/repro/x.py``
    checkouts and for test fixtures staged under a tmp dir alike.
    """
    normalized = path.replace("\\", "/")
    marker = "repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return normalized[index:]
    return normalized.rsplit("/", 1)[-1]


class Rule:
    """Base class: subclasses set ``code``/``name`` and yield findings."""

    code = "STAR000"
    name = "base-rule"
    description = ""

    def begin(self, project: ProjectContext) -> None:
        """Called once per run, before any :meth:`check`, with the
        whole-program view. Per-file rules ignore it."""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finish(self) -> Iterable[Finding]:
        """Whole-tree findings, after every file has been checked."""
        return ()


class LintEngine:
    """Parses the tree, runs the project pass, applies rules."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self.errors: List[str] = []
        """Files that could not be parsed (reported, not fatal)."""

    # ------------------------------------------------------------------
    # walking
    # ------------------------------------------------------------------
    def run(self, paths: Iterable[str]) -> List[Finding]:
        contexts: List[FileContext] = []
        project = ProjectContext()
        for path in self._python_files(paths):
            ctx = self._parse(path)
            if ctx is None:
                continue
            ctx.project = project
            project.add_module(ctx.path, ctx.module_path, ctx.tree)
            contexts.append(ctx)
        for rule in self.rules:
            rule.begin(project)

        by_path = {ctx.path: ctx for ctx in contexts}
        findings: List[Finding] = []
        for ctx in contexts:
            for rule in self.rules:
                for finding in rule.check(ctx):
                    if not ctx.is_suppressed(finding):
                        findings.append(finding)
        for rule in self.rules:
            for finding in rule.finish():
                owner = by_path.get(finding.path)
                if owner is None or not owner.is_suppressed(finding):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def run_file(self, path: str) -> List[Finding]:
        """Single-file convenience wrapper over :meth:`run` (the
        project view then contains just that one module)."""
        return [f for f in self.run([path]) if f.path == path]

    def _parse(self, path: str) -> Optional[FileContext]:
        try:
            source = Path(path).read_text(encoding="utf-8")
            return FileContext(path, source)
        except (OSError, SyntaxError, ValueError) as exc:
            self.errors.append("%s: %s" % (path, exc))
            return None

    @staticmethod
    def _python_files(paths: Iterable[str]) -> Iterator[str]:
        for entry in paths:
            root = Path(entry)
            if root.is_dir():
                yield from sorted(
                    str(p) for p in root.rglob("*.py")
                )
            else:
                yield str(root)


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    """The human reporter: one ``path:line:col CODE message`` per line."""
    if not findings:
        return "clean: no findings"
    out = [
        "%s:%d:%d %s %s"
        % (f.path, f.line, f.col, f.rule, f.message)
        for f in findings
    ]
    per_rule: Dict[str, int] = {}
    for f in findings:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    summary = ", ".join(
        "%s: %d" % (rule, count) for rule, count in sorted(per_rule.items())
    )
    out.append("%d finding(s) (%s)" % (len(findings), summary))
    return "\n".join(out)


def findings_to_json(findings: Sequence[Finding]) -> str:
    """The machine reporter (``star-lint --json``)."""
    return json.dumps(
        {"findings": [f.to_dict() for f in findings]}, indent=2
    )


def findings_from_json(text: str) -> List[Finding]:
    payload = json.loads(text)
    return [Finding.from_dict(item) for item in payload["findings"]]
