"""The metric catalogue: every stat name the simulator may emit.

The telemetry registry (PR 1) auto-creates instruments on first use,
which keeps call sites terse but means a typo in a metric name silently
forks a new, never-read counter instead of failing. This module is the
closed list of sanctioned names; the STAR004 lint rule checks both
directions against it (names used but not catalogued, and catalogue
entries no code emits).

``METRICS`` maps exact names to their instrument kind. Families whose
names are minted at runtime (per-level, per-scheme, per-attack) are
declared once in ``METRIC_PATTERNS`` using printf placeholders:
``%s`` matches one dot-free name segment, ``%d`` matches digits.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

METRICS: Dict[str, str] = {
    "adr.accesses": "counter",
    "adr.cold_misses": "counter",
    "adr.hits": "counter",
    "adr.misses": "counter",
    "adr.resident_lines": "gauge",
    "adr.spills": "counter",
    "anubis.st_writes": "counter",
    "bitmap.mark_fresh": "counter",
    "bitmap.mark_stale": "counter",
    "bmt.block_persists": "counter",
    "bmt.data_reads": "counter",
    "bmt.data_writes": "counter",
    "bmt.minor_overflows": "counter",
    "bmt.reencryption_writes": "counter",
    "bmt.tree_level_persists": "counter",
    "cpu.llc_writebacks": "counter",
    "cpu.read_hits": "counter",
    "cpu.read_misses": "counter",
    "cpu.write_hits": "counter",
    "cpu.write_misses": "counter",
    "ctrl.cascade_depth": "histogram",
    "ctrl.data_reads": "counter",
    "ctrl.data_writes": "counter",
    "ctrl.force_flushes": "counter",
    "ctrl.meta_evictions": "counter",
    "ctrl.meta_persists": "counter",
    "ctrl.root_child_persists": "counter",
    "ctrl.verifications": "counter",
    "fuzz.cases": "counter",
    "fuzz.failures": "counter",
    "fuzz.tamper_applied": "counter",
    "fuzz.violations": "counter",
    "lab.campaign.wall_s": "gauge",
    "lab.farm.cells": "gauge",
    "lab.farm.cells_done": "counter",
    "lab.farm.cells_failed": "counter",
    "lab.farm.cells_requeued": "counter",
    "lab.farm.done": "gauge",
    "lab.farm.failed": "gauge",
    "lab.farm.lease_renewals": "counter",
    "lab.farm.leased": "gauge",
    "lab.farm.leases_claimed": "counter",
    "lab.farm.leases_stolen": "counter",
    "lab.farm.merged_records": "counter",
    "lab.farm.pending": "gauge",
    "lab.farm.results_shipped": "counter",
    "lab.farm.stale_fences": "counter",
    "lab.farm.wall_s": "gauge",
    "lab.job.wall_ms": "histogram",
    "lab.jobs.completed": "counter",
    "lab.jobs.failed": "counter",
    "lab.jobs.resumed": "counter",
    "lab.jobs.retried": "counter",
    "lab.jobs.scheduled": "counter",
    "lab.jobs.timeouts": "counter",
    "lab.net.duplicates": "counter",
    "lab.net.errors": "counter",
    "lab.net.rejects": "counter",
    "lab.net.requests": "counter",
    "lab.net.retries": "counter",
    "lab.net.upload_bytes": "counter",
    "lab.store.hits": "counter",
    "lab.store.misses": "counter",
    "lab.store.puts": "counter",
    "lab.store.quarantined": "counter",
    "live.heartbeats_corrupt": "gauge",
    "live.heartbeats_written": "counter",
    "live.snapshot_age_s": "gauge",
    "live.workers": "gauge",
    "live.workers_stale": "gauge",
    "meta_cache.hits": "counter",
    "meta_cache.misses": "counter",
    "nvm.data_lines_touched": "gauge",
    "nvm.data_reads": "counter",
    "nvm.data_writes": "counter",
    "nvm.meta_lines_touched": "gauge",
    "nvm.meta_reads": "counter",
    "nvm.meta_writes": "counter",
    "nvm.ra_lines_touched": "gauge",
    "nvm.ra_reads": "counter",
    "nvm.ra_writes": "counter",
    "nvm.st_reads": "counter",
    "nvm.st_slots_touched": "gauge",
    "nvm.st_writes": "counter",
    "phoenix.periodic_persists": "counter",
    "profile.spans": "counter",
    "phoenix.probe_distance": "histogram",
    "phoenix.st_writes": "counter",
    "recovery.stale_batch": "histogram",
    "sanitize.checks": "counter",
    "sit.persist_level": "histogram",
    "supermem.coalesced_writes": "counter",
    "synergy.lsb_wraps": "counter",
    "synergy.reconstruct_drift": "histogram",
    "synergy.reconstructions": "counter",
    "wearlevel.gap_moves": "counter",
    "wpq.full_stalls": "counter",
    "wpq.occupancy": "histogram",
}

METRIC_PATTERNS: List[Tuple[str, str]] = [
    # (printf template, kind)
    ("%s.resident_lines", "gauge"),
    ("bitmap.line_updates.l%d", "counter"),
    ("fuzz.attack.%s", "counter"),
    ("fuzz.detected.%s", "counter"),
    ("fuzz.scheme.%s", "counter"),
    ("fuzz.workload.%s", "counter"),
    ("sit.level%d.writes", "counter"),
]


def _pattern_regex(template: str) -> "re.Pattern[str]":
    parts = re.split(r"(%[sd])", template)
    out = []
    for part in parts:
        if part == "%s":
            out.append(r"[^.]+")
        elif part == "%d":
            out.append(r"\d+")
        else:
            out.append(re.escape(part))
    return re.compile("".join(out) + r"\Z")


_COMPILED: List[Tuple["re.Pattern[str]", str, str]] = [
    (_pattern_regex(template), template, kind)
    for template, kind in METRIC_PATTERNS
]


def lookup(name: str) -> Optional[str]:
    """The instrument kind for a concrete metric name, else ``None``."""
    kind = METRICS.get(name)
    if kind is not None:
        return kind
    for regex, _template, pattern_kind in _COMPILED:
        if regex.match(name):
            return pattern_kind
    return None


def matching_template(name: str) -> Optional[str]:
    """Which ``METRIC_PATTERNS`` template a concrete name falls under."""
    for regex, template, _kind in _COMPILED:
        if regex.match(name):
            return template
    return None
