"""Terminal rendering of telemetry snapshots.

All functions take the plain-dict snapshot produced by
:func:`repro.obs.export.telemetry_snapshot`, so they work equally on a
live run and on a JSON dump loaded from disk (``star-stats`` uses both
paths).
"""

from __future__ import annotations

from typing import Dict, List, Optional

BAR_WIDTH = 32


def _bar(count: int, peak: int, width: int = BAR_WIDTH) -> str:
    if peak <= 0:
        return ""
    length = max(1, round(width * count / peak)) if count else 0
    return "#" * length


def render_counters(counters: Dict[str, int],
                    prefix: Optional[str] = None) -> str:
    """Aligned ``name value`` lines, optionally one subsystem only."""
    names = sorted(
        name for name in counters
        if prefix is None or name.startswith(prefix)
    )
    if not names:
        return "(no counters%s)" % (
            " matching %r" % prefix if prefix else ""
        )
    pad = max(len(name) for name in names)
    return "\n".join(
        "%-*s %d" % (pad, name, counters[name]) for name in names
    )


def render_gauges(gauges: Dict[str, dict]) -> str:
    if not gauges:
        return "(no gauges)"
    pad = max(len(name) for name in gauges)
    return "\n".join(
        "%-*s %g (high %g)"
        % (pad, name, gauges[name]["value"], gauges[name]["high"])
        for name in sorted(gauges)
    )


def render_histogram(name: str, histogram: dict) -> str:
    """One histogram as a labelled ASCII bar chart."""
    header = "%s  n=%d mean=%.3g min=%g max=%g" % (
        name, histogram["count"], histogram["mean"],
        histogram["min"] if histogram["min"] is not None else 0,
        histogram["max"] if histogram["max"] is not None else 0,
    )
    buckets = histogram.get("buckets") or []
    if not buckets:
        return header + "\n  (empty)"
    peak = max(count for _upper, count in buckets)
    lines = [header]
    for upper, count in buckets:
        lines.append(
            "  le %-10g %7d %s" % (upper, count, _bar(count, peak))
        )
    return "\n".join(lines)


def render_histograms(histograms: Dict[str, dict],
                      prefix: Optional[str] = None) -> str:
    names = sorted(
        name for name in histograms
        if prefix is None or name.startswith(prefix)
    )
    if not names:
        return "(no histograms)"
    return "\n\n".join(
        render_histogram(name, histograms[name]) for name in names
    )


def render_span_tree(spans: List[dict]) -> str:
    """The span forest as an indented tree with per-phase timings."""
    if not spans:
        return "(no spans)"
    lines: List[str] = []

    def walk(span: dict, indent: int) -> None:
        attrs = span.get("attrs") or {}
        detail = " ".join(
            "%s=%s" % (key, attrs[key]) for key in sorted(attrs)
        )
        error = span.get("error")
        lines.append("%s%-*s %9.3f ms%s%s" % (
            "  " * indent,
            max(1, 40 - 2 * indent), span["name"],
            span["duration_s"] * 1e3,
            "  " + detail if detail else "",
            "  [error: %s]" % error if error else "",
        ))
        for child in span.get("children") or []:
            walk(child, indent + 1)

    for root in spans:
        walk(root, 0)
    return "\n".join(lines)


def render_events(events: dict, limit: int = 20) -> str:
    """The tail of the event log, one line per event."""
    entries = events.get("entries") or []
    dropped = events.get("dropped", 0)
    lines: List[str] = []
    if dropped:
        lines.append("(%d older events dropped from the ring)" % dropped)
    shown = entries[-limit:] if limit else entries
    if len(entries) > len(shown):
        lines.append("(showing last %d of %d retained)"
                     % (len(shown), len(entries)))
    for event in shown:
        fields = " ".join(
            "%s=%s" % (key, event[key])
            for key in sorted(event)
            if key not in ("seq", "t", "kind")
        )
        lines.append("#%-6d %10.6fs %-14s %s" % (
            event["seq"], event["t"], event["kind"], fields
        ))
    if not lines:
        return "(no events)"
    return "\n".join(lines)


def render_snapshot(snapshot: dict, prefix: Optional[str] = None,
                    events_limit: int = 20) -> str:
    """A full pretty-printed telemetry report (``star-stats`` body)."""
    sections = [
        ("counters", render_counters(
            snapshot.get("counters", {}), prefix
        )),
        ("gauges", render_gauges(snapshot.get("gauges", {}))),
        ("histograms", render_histograms(
            snapshot.get("histograms", {}), prefix
        )),
        ("spans", render_span_tree(snapshot.get("spans", []))),
        ("events", render_events(
            snapshot.get("events", {}), events_limit
        )),
    ]
    out: List[str] = []
    for title, body in sections:
        out.append("== %s %s" % (title, "=" * max(1, 60 - len(title))))
        out.append(body)
        out.append("")
    return "\n".join(out).rstrip() + "\n"
