"""The metric registry: counters, gauges and log-scale histograms.

One :class:`MetricRegistry` instance is shared by every component of a
simulated machine (via the :class:`~repro.util.stats.Stats` facade that
the existing code already threads everywhere). Counters keep the flat
``subsystem.event`` namespace the seed used; gauges track instantaneous
levels (cache occupancy, touched NVM lines); histograms record
distributions (persist cascade depth, write-queue occupancy, recovery
batch sizes) in power-of-two buckets so that heavy-tailed simulator
quantities stay cheap to collect and compact to export.

The registry also owns the machine's :class:`~repro.obs.tracing.SpanTracer`
and :class:`~repro.obs.events.EventLog` so that one object is the full
telemetry hub; disabling it (``registry.enabled = False``) turns every
distribution/span/event call into a no-op while counters — which the
figure reproductions depend on — keep counting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.events import EventLog
from repro.obs.tracing import SpanTracer


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """An instantaneous level, with a high-watermark."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high:
            self.high = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return "Gauge(%s=%r, high=%r)" % (self.name, self.value, self.high)


def bucket_exponent(value: float) -> Optional[int]:
    """The power-of-two bucket a value falls into.

    A value ``v`` lands in the smallest bucket whose upper bound
    ``2**e`` satisfies ``v <= 2**e``; values ``<= 0`` land in the
    dedicated zero bucket (``None``).

    >>> bucket_exponent(1)
    0
    >>> bucket_exponent(2)
    1
    >>> bucket_exponent(3)
    2
    >>> bucket_exponent(0) is None
    True
    """
    if value <= 0:
        return None
    if isinstance(value, int):
        return (value - 1).bit_length()
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exp
    return exponent - 1 if mantissa == 0.5 else exponent


class Histogram:
    """A log-scale (power-of-two buckets) histogram.

    Buckets have upper bounds ``..., 0.5, 1, 2, 4, 8, ...`` plus a
    dedicated bucket for values ``<= 0``; only touched buckets are
    stored, so a histogram over cascade depths costs a handful of dict
    entries no matter how many observations it absorbs.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets",
                 "_zero")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._zero = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # int fast path inlined: observe sits on the simulator's write
        # path (WPQ occupancy, persist levels), so skip the call
        if type(value) is int and value > 0:
            exponent = (value - 1).bit_length()
        else:
            exponent = bucket_exponent(value)
            if exponent is None:
                self._zero += 1
                return
        self._buckets[exponent] = self._buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` per touched bucket, ascending.

        The zero bucket reports an upper bound of ``0.0``.
        """
        out: List[Tuple[float, int]] = []
        if self._zero:
            out.append((0.0, self._zero))
        for exponent in sorted(self._buckets):
            out.append((float(2.0 ** exponent), self._buckets[exponent]))
        return out

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ascending,
        ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, count in self.bucket_counts():
            running += count
            out.append((upper, running))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket where the
        cumulative count first reaches ``q * count``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        threshold = q * self.count
        for upper, cumulative in self.cumulative_buckets():
            if cumulative >= threshold:
                return upper if upper != math.inf else float(self.max)
        return float(self.max)  # pragma: no cover - inf bucket catches

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            mine, theirs = getattr(self, bound), getattr(other, bound)
            if theirs is not None and (
                mine is None
                or (bound == "min" and theirs < mine)
                or (bound == "max" and theirs > mine)
            ):
                setattr(self, bound, theirs)
        self._zero += other._zero
        for exponent, count in other._buckets.items():
            self._buckets[exponent] = (
                self._buckets.get(exponent, 0) + count
            )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [list(pair) for pair in self.bucket_counts()],
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` snapshot.

        Bucket upper bounds are exact powers of two, so the exponent
        keys reconstruct losslessly; ``from_dict(to_dict())`` round-
        trips. This is how cross-process heartbeat snapshots rehydrate
        into a mergeable registry (:mod:`repro.obs.live`).
        """
        histogram = cls(name)
        histogram.count = int(payload.get("count", 0))
        histogram.total = float(payload.get("sum", 0.0))
        histogram.min = payload.get("min")
        histogram.max = payload.get("max")
        for upper, count in payload.get("buckets", []):
            if upper <= 0:
                histogram._zero = int(count)
            else:
                exponent = bucket_exponent(float(upper))
                assert exponent is not None
                histogram._buckets[exponent] = int(count)
        return histogram

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%.3g)" % (
            self.name, self.count, self.mean
        )


class MetricRegistry:
    """The telemetry hub: metrics + span tracer + event log."""

    def __init__(self, enabled: bool = True,
                 event_capacity: int = 4096) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.tracer = SpanTracer(enabled=enabled)
        self.events = EventLog(capacity=event_capacity, enabled=enabled)

    # ------------------------------------------------------------------
    # instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    # iteration / snapshots
    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def gauges(self) -> Iterator[Tuple[str, Gauge]]:
        for name in sorted(self._gauges):
            yield name, self._gauges[name]

    def histograms(self) -> Iterator[Tuple[str, Histogram]]:
        for name in sorted(self._histograms):
            yield name, self._histograms[name]

    def counter_values(self) -> Dict[str, int]:
        """Plain-dict copy of every counter (the seed ``Stats`` view)."""
        return {
            name: counter.value
            for name, counter in self._counters.items()
        }

    def merge(self, other: "MetricRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counters and histograms add; gauges take the other registry's
        latest value (and the max of the high-watermarks). Spans and
        events are adopted wholesale.
        """
        for name, value in other._counters.items():
            self.counter(name).value += value.value
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            mine.value = gauge.value
            mine.high = max(mine.high, gauge.high)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)
        self.tracer.adopt(other.tracer.roots)
        self.events.adopt(other.events)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.tracer.reset()
        self.events.reset()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges)
            + len(self._histograms)
        )
