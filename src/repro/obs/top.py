"""``star-top``: the live campaign dashboard.

Point it at a running campaign's telemetry directory (or the store that
holds one) and it renders a refreshing terminal view of the merged
worker registries: cells done / total, per-worker throughput and
liveness, retry and store hit/miss counters, and an ETA extrapolated
from the campaign journal's checkpoint history.

Examples::

    # watch a lab campaign published with star-lab run --telemetry
    star-top --store .starlab

    # watch a fuzzing campaign
    star-top --telemetry /tmp/fuzz-telemetry

    # watch a farm: coordinator + every worker pool's heartbeats
    star-top --farm .starlab/farm --store .starlab

    # one-shot snapshot (scripts, CI)
    star-top --store .starlab --once

    # expose /metrics (Prometheus text) and /status (JSON) read-only
    star-top --store .starlab --serve 9099

Everything here is read-only: star-top never writes into the store or
the telemetry directory, so it can watch a campaign owned by another
process without perturbing it.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, ClassVar, Dict, List, Optional, Tuple, Union

from repro.lab.clock import Clock
from repro.obs.export import to_prometheus_text
from repro.obs.live import LiveAggregate, aggregate_heartbeats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-top",
        description="Live dashboard over a campaign's telemetry "
                    "directory (see star-lab run --telemetry and "
                    "star-fuzz run --telemetry).",
    )
    parser.add_argument("--store", default=None,
                        help="star-lab store root; telemetry defaults "
                             "to <store>/telemetry and campaign "
                             "journals are read for totals/ETA")
    parser.add_argument("--telemetry", default=None, metavar="DIR",
                        help="telemetry directory (overrides --store)")
    parser.add_argument("--farm", default=None, metavar="DIR",
                        help="star-lab farm directory; watches "
                             "<farm>/telemetry (coordinator plus "
                             "every worker pool)")
    parser.add_argument("--campaign", default=None, metavar="IDPREFIX",
                        help="journal to track (default: the running "
                             "one, else the newest)")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="refresh interval (default 1.0)")
    parser.add_argument("--stale-after", type=float, default=10.0,
                        metavar="SECONDS",
                        help="mark workers stale after this many "
                             "seconds without a heartbeat (default 10)")
    parser.add_argument("--once", action="store_true",
                        help="render one snapshot and exit")
    parser.add_argument("--iterations", type=int, default=None,
                        help="render N refreshes then exit "
                             "(default: until interrupted)")
    parser.add_argument("--serve", type=int, default=None,
                        metavar="PORT",
                        help="also expose read-only /metrics "
                             "(Prometheus text) and /status (JSON) on "
                             "this port (0 = ephemeral)")
    return parser


# ----------------------------------------------------------------------
# status assembly (pure, testable)
# ----------------------------------------------------------------------
def _pick_journal(journals: List[Dict],
                  id_prefix: Optional[str]) -> Optional[Dict]:
    """The journal star-top tracks: an explicit prefix match, else the
    single running campaign, else the last one in id order."""
    if id_prefix is not None:
        matches = [journal for journal in journals
                   if journal.get("campaign_id", "").startswith(id_prefix)]
        return matches[0] if len(matches) == 1 else None
    running = [journal for journal in journals
               if journal.get("status") == "running"]
    if len(running) == 1:
        return running[0]
    return journals[-1] if journals else None


def _read_farm_manifest(farm_path: Path) -> Optional[Dict]:
    """The farm's ``farm.json``, or ``None`` (absent, corrupt, racy
    mid-replace read — star-top never fails over a manifest)."""
    try:
        with open(farm_path / "farm.json") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return None
    return manifest if isinstance(manifest, dict) else None


def build_status(telemetry_dir: Union[str, Path],
                 store_path: Optional[Union[str, Path]] = None,
                 campaign: Optional[str] = None,
                 now_wall: Optional[float] = None,
                 stale_after_s: float = 10.0,
                 farm_path: Optional[Union[str, Path]] = None) -> Dict:
    """Assemble the full dashboard state as one JSON-ready dict.

    This is what ``/status`` serves and what the renderer consumes, so
    tests can assert on it without a terminal or an HTTP server.
    """
    if now_wall is None:
        now_wall = Clock().wall()
    aggregate = aggregate_heartbeats(
        telemetry_dir, now_wall=now_wall, stale_after_s=stale_after_s
    )
    status: Dict = {
        "now_wall_s": now_wall,
        "telemetry_dir": str(telemetry_dir),
        "campaign": None,
        "farm": None,
        "throughput_cps": None,
        "eta_s": None,
        "stale": False,
        "corrupt_heartbeats": aggregate.corrupt,
        "workers": [
            {
                "worker": view.worker,
                "seq": view.seq,
                "age_s": round(view.age_s, 3),
                "stale": view.stale,
                "progress": view.progress,
            }
            for view in aggregate.workers
        ],
        "metrics": {
            "counters": dict(aggregate.registry.counters()),
            "gauges": {
                name: {"value": gauge.value, "high": gauge.high}
                for name, gauge in aggregate.registry.gauges()
            },
        },
    }
    if farm_path is not None:
        manifest = _read_farm_manifest(Path(farm_path))
        if manifest is not None:
            status["farm"] = {
                "name": manifest.get("name"),
                "cells": manifest.get("cells"),
                "transport": manifest.get("transport",
                                          {"kind": "file"}),
            }
    if store_path is not None:
        from repro.lab.scheduler import checkpoint_rates
        from repro.lab.store import ResultStore

        store = ResultStore(store_path)
        try:
            from repro.lab.scheduler import read_journals

            journal = _pick_journal(read_journals(store), campaign)
        finally:
            store.close()
        if journal is not None:
            throughput, eta, stale = checkpoint_rates(
                journal, now_wall=now_wall, stale_after_s=stale_after_s
            )
            status["campaign"] = {
                "campaign_id": journal.get("campaign_id"),
                "name": journal.get("name"),
                "status": journal.get("status"),
                "counts": journal.get("counts", {}),
            }
            status["throughput_cps"] = throughput
            status["eta_s"] = eta
            status["stale"] = stale
    return status


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value: object, pattern: str, empty: str = "-") -> str:
    return empty if value is None else pattern % value


def render_dashboard(status: Dict) -> str:
    """The terminal view of one :func:`build_status` snapshot."""
    lines = ["star-top — %s" % status["telemetry_dir"]]
    farm = status.get("farm")
    if farm:
        transport = farm.get("transport") or {}
        where = (transport.get("url") or transport.get("board")
                 or "?")
        lines.append("farm: transport %s %s"
                     % (transport.get("kind", "file"), where))
    campaign = status.get("campaign")
    if campaign:
        counts = campaign.get("counts", {})
        done = counts.get("resumed", 0) + counts.get("completed", 0)
        flags = " STALE" if status.get("stale") else ""
        lines.append(
            "campaign %s (%s): %s%s  cells %d/%d  failed %d  "
            "rate %s  eta %s"
            % (str(campaign.get("campaign_id", "?"))[:12],
               campaign.get("name", "?"), campaign.get("status", "?"),
               flags, done, counts.get("total", 0),
               counts.get("failed", 0),
               _fmt(status.get("throughput_cps"), "%.2f/s"),
               _fmt(status.get("eta_s"), "%.0fs"))
        )
    counters = status["metrics"]["counters"]
    interesting = [
        ("stored", "lab.jobs.completed"),
        ("retried", "lab.jobs.retried"),
        ("hits", "lab.store.hits"),
        ("misses", "lab.store.misses"),
        ("cases", "fuzz.cases"),
        ("failures", "fuzz.failures"),
        ("beats", "live.heartbeats_written"),
        ("claimed", "lab.farm.leases_claimed"),
        ("stolen", "lab.farm.leases_stolen"),
        ("farm_done", "lab.farm.cells_done"),
        ("farm_failed", "lab.farm.cells_failed"),
        ("merged", "lab.farm.merged_records"),
        ("shipped", "lab.farm.results_shipped"),
        ("net_req", "lab.net.requests"),
        ("net_retry", "lab.net.retries"),
        ("net_reject", "lab.net.rejects"),
        ("net_dup", "lab.net.duplicates"),
        ("net_err", "lab.net.errors"),
    ]
    cells = ["%s %d" % (label, counters[name])
             for label, name in interesting if name in counters]
    if cells:
        lines.append("counters: " + "  ".join(cells))
    corrupt = status.get("corrupt_heartbeats", 0)
    lines.append("workers (%d, %d stale%s):"
                 % (len(status["workers"]),
                    sum(1 for w in status["workers"] if w["stale"]),
                    (", %d corrupt heartbeats" % corrupt)
                    if corrupt else ""))
    for worker in status["workers"]:
        progress = worker.get("progress") or {}
        detail = " ".join(
            "%s=%s" % (key, progress[key]) for key in sorted(progress)
        )
        lines.append(
            "  %-12s seq %-6d age %6.1fs%s  %s"
            % (worker["worker"], worker["seq"], worker["age_s"],
               " STALE" if worker["stale"] else "      ", detail)
        )
    if not status["workers"]:
        lines.append("  (no heartbeats yet)")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the read-only HTTP endpoint
# ----------------------------------------------------------------------
class _Endpoint(BaseHTTPRequestHandler):
    """Serves /metrics (Prometheus text) and /status (JSON)."""

    # set by serve(): a zero-argument callable returning
    # (status dict, LiveAggregate)
    source: ClassVar[Callable[[], Tuple[Dict, LiveAggregate]]]

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        status, aggregate = type(self).source()
        if self.path.split("?")[0] == "/metrics":
            body = to_prometheus_text(aggregate.registry).encode()
            content_type = "text/plain; version=0.0.4"
        elif self.path.split("?")[0] == "/status":
            body = (json.dumps(status, indent=2, sort_keys=True)
                    + "\n").encode()
            content_type = "application/json"
        else:
            self.send_error(404, "try /metrics or /status")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str,
                    *args: object) -> None:  # noqa: A002
        pass  # a dashboard should not spam the terminal it draws on


def serve(port: int,
          snapshot: Callable[[], Tuple[Dict, LiveAggregate]],
          ) -> ThreadingHTTPServer:
    """Start the endpoint on a daemon thread; returns the server.

    ``snapshot`` is a zero-argument callable producing a fresh
    ``(status, aggregate)`` pair per request — the endpoint never
    caches, so a scrape always sees the latest heartbeat files.
    """
    handler = type("_BoundEndpoint", (_Endpoint,),
                   {"source": staticmethod(snapshot)})
    server = ThreadingHTTPServer(("127.0.0.1", port), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


# ----------------------------------------------------------------------
# main loop
# ----------------------------------------------------------------------
def _resolve_telemetry(args: argparse.Namespace) -> Optional[Path]:
    if args.telemetry is not None:
        return Path(args.telemetry)
    if getattr(args, "farm", None) is not None:
        return Path(args.farm) / "telemetry"
    if args.store is not None:
        return Path(args.store) / "telemetry"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = _resolve_telemetry(args)
    if telemetry is None:
        print("star-top: pass --telemetry DIR or --store ROOT",
              file=sys.stderr)
        return 2
    clock = Clock()

    def snapshot() -> Tuple[Dict, LiveAggregate]:
        now_wall = clock.wall()
        status = build_status(
            telemetry, store_path=args.store, campaign=args.campaign,
            now_wall=now_wall, stale_after_s=args.stale_after,
            farm_path=args.farm,
        )
        aggregate = aggregate_heartbeats(
            telemetry, now_wall=now_wall,
            stale_after_s=args.stale_after,
        )
        return status, aggregate

    server = None
    if args.serve is not None:
        server = serve(args.serve, snapshot)
        print("star-top: serving /metrics and /status on "
              "http://127.0.0.1:%d" % server.server_address[1])

    iterations = 1 if args.once else args.iterations
    rendered = 0
    try:
        while True:
            status, _ = snapshot()
            output = render_dashboard(status)
            if not args.once and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(output)
            sys.stdout.flush()
            rendered += 1
            if iterations is not None and rendered >= iterations:
                break
            clock.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:
        pass
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
