"""Cross-process telemetry shipping: heartbeats + parent aggregation.

The lab scheduler's spawn workers and the fuzzer's pool workers are
opaque while a campaign executes — their metric registries live in
other processes and only surface (if at all) when the campaign ends.
This module is the live plane underneath ``star-top``:

* :class:`HeartbeatWriter` — each participating process periodically
  publishes one small JSONL snapshot (a liveness record plus an
  optional metrics record) into a shared per-campaign ``telemetry/``
  directory. Publication is atomic (write temp file, ``os.replace``),
  so a reader never sees a torn snapshot, and a crashed worker simply
  stops refreshing its file.
* :func:`scan_heartbeats` / :func:`aggregate_heartbeats` — the
  parent-side reader: collect every worker's latest snapshot, rebuild
  each shipped registry (:func:`registry_from_snapshot`), merge them
  into one campaign-wide :class:`~repro.obs.metrics.MetricRegistry`,
  flag workers whose snapshot has gone stale, and count files a dead
  worker left zero-byte or half-written (``live.heartbeats_corrupt``)
  instead of silently skipping them.

Timestamps use epoch seconds through the sanctioned
:class:`repro.lab.clock.Clock` seam (``clock.wall()``) because
``perf_counter`` zero points are not comparable across processes.
Heartbeat files are advisory observability state: they live under the
store root but are never read by ``star-lab export``, so kill/resume
campaigns stay bit-identical to serial runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import Histogram, MetricRegistry
from repro.util.stats import Stats

if TYPE_CHECKING:
    from repro.lab.clock import Clock

PathLike = Union[str, Path]

SNAPSHOT_VERSION = 1


def registry_snapshot(registry: MetricRegistry) -> Dict:
    """The mergeable (counters/gauges/histograms) slice of a registry.

    Spans and events are deliberately excluded: they are bulky, and the
    live plane aggregates *metrics*; event tails ship through the
    flight recorder instead (:mod:`repro.obs.flight`).
    """
    return {
        "counters": dict(registry.counters()),
        "gauges": {
            name: {"value": gauge.value, "high": gauge.high}
            for name, gauge in registry.gauges()
        },
        "histograms": {
            name: histogram.to_dict()
            for name, histogram in registry.histograms()
        },
    }


def registry_from_snapshot(payload: Dict) -> MetricRegistry:
    """Rehydrate a :func:`registry_snapshot` into a live registry."""
    registry = MetricRegistry(enabled=True)
    for name, value in payload.get("counters", {}).items():
        registry.counter(name).value = int(value)
    for name, levels in payload.get("gauges", {}).items():
        gauge = registry.gauge(name)
        gauge.value = levels.get("value", 0.0)
        gauge.high = levels.get("high", gauge.value)
    for name, histogram in payload.get("histograms", {}).items():
        registry._histograms[name] = Histogram.from_dict(name, histogram)
    return registry


class HeartbeatWriter:
    """Atomically publish one process's liveness + metrics snapshot.

    Each writer owns one file, ``<directory>/<worker>.jsonl``, holding
    the *latest* snapshot only (two JSON lines: a ``heartbeat`` record
    and, when a registry is supplied, a ``metrics`` record). ``write``
    is throttled to one publication per ``interval_s`` unless forced,
    so workers can call it after every unit of work without turning
    telemetry into an I/O workload.
    """

    def __init__(self, directory: PathLike, worker: str,
                 clock: Optional["Clock"] = None,
                 interval_s: float = 1.0,
                 stats: Optional[Stats] = None) -> None:
        if clock is None:
            from repro.lab.clock import Clock

            clock = Clock()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.worker = worker
        self.clock = clock
        self.interval_s = interval_s
        self.stats = stats
        self.seq = 0
        self._last_wall: Optional[float] = None

    @property
    def path(self) -> Path:
        return self.directory / (self.worker + ".jsonl")

    def write(self, registry: Optional[MetricRegistry] = None,
              progress: Optional[Dict] = None,
              force: bool = False) -> bool:
        """Publish a snapshot; ``False`` when throttled away."""
        wall = self.clock.wall()
        if (not force and self._last_wall is not None
                and wall - self._last_wall < self.interval_s):
            return False
        self._last_wall = wall
        lines = [json.dumps({
            "type": "heartbeat",
            "version": SNAPSHOT_VERSION,
            "worker": self.worker,
            "seq": self.seq,
            "wall_s": wall,
            "progress": progress or {},
        }, sort_keys=True)]
        if registry is not None:
            lines.append(json.dumps(
                {"type": "metrics",
                 "metrics": registry_snapshot(registry)},
                sort_keys=True, default=str,
            ))
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        os.replace(tmp, self.path)
        self.seq += 1
        if self.stats is not None:
            self.stats.add("live.heartbeats_written")
        return True


def scan_heartbeats(directory: PathLike) -> Tuple[List[Dict], int]:
    """Every worker's latest snapshot, plus a damaged-file count.

    Publication is atomic per file, but a worker can die at any
    instant: SIGKILL between creating its temp file and ``os.replace``
    leaves a zero-byte or half-line ``.jsonl`` behind on some
    filesystems, and a torn final write leaves a heartbeat line
    followed by a truncated metrics line. None of that may take the
    dashboard down — but it must not be *silent* either (a farm whose
    telemetry is rotting looks identical to a healthy idle farm
    otherwise). Damaged files therefore count into the second return
    value, which :func:`aggregate_heartbeats` surfaces as the
    ``live.heartbeats_corrupt`` gauge. A file whose heartbeat line
    survived still contributes its snapshot (liveness is best-effort)
    while counting as damaged.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return [], 0
    snapshots: List[Dict] = []
    corrupt = 0
    for path in sorted(directory.glob("*.jsonl")):
        try:
            with open(path) as handle:
                content = handle.read()
        except OSError:
            corrupt += 1
            continue
        if not content.strip():
            corrupt += 1  # zero-byte: died mid-publication
            continue
        heartbeat: Optional[Dict] = None
        metrics: Optional[Dict] = None
        damaged = False
        for line in content.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                damaged = True  # half-written trailing line
                break
            if not isinstance(record, dict):
                damaged = True
                break
            if record.get("type") == "heartbeat":
                heartbeat = record
            elif record.get("type") == "metrics":
                metrics = record.get("metrics")
        if heartbeat is None:
            corrupt += 1
            continue
        if damaged:
            corrupt += 1
        heartbeat["metrics"] = metrics
        snapshots.append(heartbeat)
    return snapshots, corrupt


def read_heartbeats(directory: PathLike) -> List[Dict]:
    """Every worker's readable snapshot (compatibility shim over
    :func:`scan_heartbeats` for callers that don't track damage)."""
    return scan_heartbeats(directory)[0]


@dataclass
class WorkerView:
    """One worker's liveness as the aggregator sees it."""

    worker: str
    seq: int
    wall_s: float
    age_s: float
    stale: bool
    progress: Dict = field(default_factory=dict)


@dataclass
class LiveAggregate:
    """The campaign-wide merged view ``star-top`` renders."""

    registry: MetricRegistry
    workers: List[WorkerView]
    corrupt: int = 0

    @property
    def stale_workers(self) -> List[WorkerView]:
        return [view for view in self.workers if view.stale]


def aggregate_heartbeats(directory: PathLike, now_wall: float,
                         stale_after_s: float = 10.0) -> LiveAggregate:
    """Merge every worker snapshot into one registry + liveness list.

    Counters and histograms add across workers; gauges keep the last
    writer's value with a max'd high-watermark (the
    :meth:`MetricRegistry.merge` contract). The aggregate also carries
    its own ``live.*`` gauges so the merged registry is self-describing
    when exported over ``/metrics``.
    """
    registry = MetricRegistry(enabled=True)
    workers: List[WorkerView] = []
    max_age = 0.0
    snapshots, corrupt = scan_heartbeats(directory)
    for snapshot in snapshots:
        age = max(0.0, now_wall - float(snapshot.get("wall_s", 0.0)))
        max_age = max(max_age, age)
        workers.append(WorkerView(
            worker=str(snapshot.get("worker", "?")),
            seq=int(snapshot.get("seq", 0)),
            wall_s=float(snapshot.get("wall_s", 0.0)),
            age_s=age,
            stale=age > stale_after_s,
            progress=snapshot.get("progress") or {},
        ))
        if snapshot.get("metrics"):
            registry.merge(registry_from_snapshot(snapshot["metrics"]))
    stale = sum(1 for view in workers if view.stale)
    registry.gauge("live.workers").set(float(len(workers)))
    registry.gauge("live.workers_stale").set(float(stale))
    registry.gauge("live.snapshot_age_s").set(max_age)
    registry.gauge("live.heartbeats_corrupt").set(float(corrupt))
    return LiveAggregate(registry=registry, workers=workers,
                         corrupt=corrupt)
