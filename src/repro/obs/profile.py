"""The simulator phase profiler: deterministic spans, Chrome traces.

``Machine(profile=True)`` installs a :class:`PhaseProfiler` that wraps
the simulator's phase boundaries — the controller write/read paths,
tree verify (node fetch) and update (persist cascades), WPQ drain
barriers, ADR/bitmap maintenance, and recovery — exactly the way the
write sanitizers wrap the write paths: closures around the original
bound methods, installed only when asked for, so the default hot path
stays untouched and the perf gate is unaffected.

Timestamps are the crux. The profiler's primary clock is the
**op counter** — cumulative NVM line accesses (reads + writes) sampled
from the machine's traffic counters — which is a pure function of the
workload, so two same-seed runs emit bit-identical traces and traces
can be diffed in CI. Wall-clock time is *optional* and flows only
through the sanctioned :class:`repro.lab.clock.Clock` seam (STAR003);
when a clock is supplied its readings land in each event's ``args``,
never in ``ts``/``dur``, so the trace skeleton stays deterministic.

Export targets:

* :meth:`PhaseProfiler.to_chrome_trace` — Chrome trace-event JSON
  (complete ``"ph": "X"`` events), loadable in Perfetto / chrome
  tracing; ``ts``/``dur`` are op counts presented as microseconds,
* :meth:`PhaseProfiler.aggregate` — per-phase totals (count, ops, NVM
  reads/writes) behind ``star-stats --trace``'s table.
"""

from __future__ import annotations

import json
import os
from functools import wraps
from typing import TYPE_CHECKING, Dict, List, Optional, Union

if TYPE_CHECKING:
    from pathlib import Path

    from repro.lab.clock import Clock
    from repro.sim.machine import Machine

PHASE_CAPACITY = 100_000
"""Recorded-span cap; beyond it spans are counted but dropped."""


class PhaseProfiler:
    """Wraps one machine's phase boundaries with dual-timestamp spans."""

    def __init__(self, machine: "Machine",
                 clock: Optional["Clock"] = None,
                 capacity: int = PHASE_CAPACITY) -> None:
        self.machine = machine
        self.clock = clock
        self.capacity = capacity
        self.spans: List[Dict] = []
        self.dropped = 0
        self._depth = 0
        self._base = 0
        self._wrapped_schemes: set = set()
        self.install()

    # ------------------------------------------------------------------
    # the deterministic op clock
    # ------------------------------------------------------------------
    def _raw(self) -> int:
        nvm = self.machine.nvm
        return nvm.total_reads() + nvm.total_writes()

    def _sample(self) -> int:
        """Cumulative NVM accesses, continuous across registry swaps."""
        return self._base + self._raw()

    # ------------------------------------------------------------------
    # wiring (the sanitizer pattern: wrap bound methods in place)
    # ------------------------------------------------------------------
    def install(self) -> None:
        machine = self.machine
        controller = machine.controller
        self._wrap(controller, "write_data", "ctrl.write_data")
        self._wrap(controller, "read_data", "ctrl.read_data")
        self._wrap(controller, "_get_node", "tree.verify")
        self._wrap(controller, "_persist_node", "tree.update")
        self._wrap(machine.timing, "persist_barrier", "wpq.drain")
        self._wrap_recover()
        self.rewire_scheme()

    def rewire_scheme(self) -> None:
        """(Re-)wrap scheme-owned structures after ``scheme.attach``.

        Recovery re-attaches the scheme, which rebuilds STAR's bitmap
        manager (and its ADR region), so the machine calls this again
        after every :meth:`Machine.recover` — same contract as
        :meth:`repro.sim.sanitize.Sanitizer.rewire_scheme`.
        """
        bitmap = getattr(self.machine.scheme, "bitmap", None)
        if bitmap is None or id(bitmap) in self._wrapped_schemes:
            return
        self._wrapped_schemes.add(id(bitmap))
        self._wrap(bitmap, "mark_stale", "bitmap.maintain")
        self._wrap(bitmap, "mark_fresh", "bitmap.maintain")
        # AdrRegion is __slots__-ed; wrap the manager's line-load front
        # door (register or ADR, spilling to the RA) instead
        self._wrap(bitmap, "_load", "adr.load")

    def _wrap(self, obj: object, name: str, phase: str) -> None:
        inner = getattr(obj, name)

        @wraps(inner)
        def timed(*args: object, **kwargs: object) -> object:
            start = self._sample()
            wall0 = None if self.clock is None else self.clock.now()
            self._depth += 1
            try:
                return inner(*args, **kwargs)
            finally:
                self._depth -= 1
                self._record(phase, start, self._sample(), wall0)

        setattr(obj, name, timed)

    def _wrap_recover(self) -> None:
        """Recovery traffic lands in a *fresh* registry, so the generic
        start/end sampling would see the run counters freeze. Re-base
        the op clock onto the recovery registry for the duration, then
        fold the recovery traffic back in so the clock stays monotonic
        on machines that keep running after a recover."""
        machine = self.machine
        inner = machine.recover

        @wraps(inner)
        def timed_recover(*args: object, **kwargs: object) -> object:
            start = self._sample()
            wall0 = None if self.clock is None else self.clock.now()
            previous = machine.recovery_stats
            self._base = start  # recovery registry counts from zero
            self._depth += 1
            try:
                return inner(*args, **kwargs)
            finally:
                self._depth -= 1
                delta = 0
                recovery = machine.recovery_stats
                if recovery is not None and recovery is not previous:
                    registry = recovery.registry
                    delta = sum(
                        value
                        for name, value in registry.counters()
                        if name.startswith("nvm.")
                        and (name.endswith("_reads")
                             or name.endswith("_writes"))
                    )
                # run counters did not move during recovery; re-base so
                # sample() == start + delta from here on
                self._base = start + delta - self._raw()
                self._record("recovery", start, start + delta, wall0)
                self.rewire_scheme()

        machine.recover = timed_recover

    # ------------------------------------------------------------------
    # recording / export
    # ------------------------------------------------------------------
    def _record(self, phase: str, start: int, end: int,
                wall0: Optional[float]) -> None:
        stats = self.machine.stats
        stats.add("profile.spans")
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        span = {
            "name": phase,
            "ts": start,
            "dur": max(0, end - start),
            "depth": self._depth,
        }
        if wall0 is not None:
            span["wall_ms"] = (self.clock.now() - wall0) * 1000.0
        self.spans.append(span)

    def to_chrome_trace(self) -> Dict:
        """Chrome trace-event JSON (Perfetto-loadable).

        ``ts``/``dur`` carry the deterministic op counter (presented in
        the format's microsecond unit); optional wall-clock durations
        ride in ``args`` so the skeleton is bit-identical across
        same-seed runs. Events are sorted by ``(ts, -dur)`` so parents
        precede their children at equal start points.
        """
        events = []
        for span in sorted(self.spans,
                           key=lambda s: (s["ts"], -s["dur"],
                                          s["depth"])):
            args: Dict = {"ops": span["dur"]}
            if "wall_ms" in span:
                args["wall_ms"] = round(span["wall_ms"], 6)
            events.append({
                "name": span["name"],
                "cat": "sim",
                "ph": "X",
                "ts": span["ts"],
                "dur": span["dur"],
                "pid": 0,
                "tid": 0,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "nvm-op-counter",
                "dropped": self.dropped,
            },
        }

    def write_chrome_trace(self, path: Union[str, "Path"]) -> None:
        # tmp-write + os.replace: trace consumers (the CI cmp step,
        # a browser pointed at a live run directory) must never see a
        # torn JSON prefix
        tmp = "%s.tmp" % path
        with open(tmp, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def aggregate(self) -> Dict[str, Dict]:
        """Per-phase totals: span count and op-counter volume.

        Nested spans are *inclusive* (a ``tree.update`` inside
        ``ctrl.write_data`` counts its ops toward both), matching how
        flame views read.
        """
        table: Dict[str, Dict] = {}
        for span in self.spans:
            row = table.setdefault(
                span["name"],
                {"count": 0, "ops": 0, "wall_ms": 0.0},
            )
            row["count"] += 1
            row["ops"] += span["dur"]
            row["wall_ms"] += span.get("wall_ms", 0.0)
        return {name: table[name] for name in sorted(table)}


def render_phase_table(aggregate: Dict[str, Dict]) -> str:
    """A fixed-width per-phase table for ``star-stats --trace``."""
    if not aggregate:
        return "(no phases recorded)"
    width = max(len(name) for name in aggregate)
    lines = ["%-*s %10s %12s %12s"
             % (width, "phase", "count", "ops", "wall_ms")]
    for name, row in aggregate.items():
        lines.append(
            "%-*s %10d %12d %12.3f"
            % (width, name, row["count"], row["ops"], row["wall_ms"])
        )
    return "\n".join(lines)


def install_profiler(machine: "Machine",
                     clock: Optional["Clock"] = None,
                     capacity: int = PHASE_CAPACITY) -> PhaseProfiler:
    """Attach a :class:`PhaseProfiler` to ``machine`` and return it."""
    return PhaseProfiler(machine, clock=clock, capacity=capacity)
