"""A bounded, causally ordered structured event log.

Components emit events at the interesting state transitions of a run —
``meta_evict``, ``force_flush``, ``ra_spill``, ``crash``,
``recover_line`` — with arbitrary keyword fields. Events carry a
monotonically increasing sequence number (causal order survives ring
wraparound) and a :func:`time.perf_counter` timestamp relative to the
log's creation.

The in-memory store is a ring buffer (``collections.deque`` with
``maxlen``): old events fall off, a ``dropped`` counter records how
many. An opt-in file sink streams every event as one JSON line the
moment it is emitted, so a crashed process still leaves a complete
JSONL trail; without a sink the log costs one deque append per event.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, IO, List, Optional


class EventLog:
    """Ring-buffered structured events with an optional JSONL sink."""

    def __init__(self, capacity: int = 4096,
                 enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("event-log capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.seq = 0
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self._sink: Optional[IO[str]] = None
        self._sink_owned = False
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: object) -> None:
        """Record one event; no-op while disabled."""
        if not self.enabled:
            return
        seq = self.seq
        event = {
            "seq": seq,
            "t": time.perf_counter() - self._t0,
            "kind": kind,
            **fields,
        }
        self.seq = seq + 1
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, default=str) + "\n")

    # ------------------------------------------------------------------
    # the JSONL file sink (opt-in)
    # ------------------------------------------------------------------
    def open_sink(self, path: str) -> None:
        """Stream every subsequent event to ``path`` as JSON lines."""
        self.close_sink()
        self._sink = open(path, "w")
        self._sink_owned = True

    def attach_sink(self, handle: IO[str]) -> None:
        """Stream to an already open text handle (caller closes it)."""
        self.close_sink()
        self._sink = handle
        self._sink_owned = False

    def close_sink(self) -> None:
        if self._sink is not None and self._sink_owned:
            self._sink.close()
        self._sink = None
        self._sink_owned = False

    @property
    def sink(self) -> Optional[IO[str]]:
        """The attached sink handle, if any (for sink sharing)."""
        return self._sink

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring."""
        return self.seq - len(self._ring)

    def events(self) -> List[dict]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int) -> List[dict]:
        """The ``n`` most recent events, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def to_jsonl(self) -> str:
        """The retained events as a JSONL document."""
        return "".join(
            json.dumps(event, default=str) + "\n" for event in self._ring
        )

    def adopt(self, other: "EventLog") -> None:
        """Append another log's retained events (keeping their order,
        re-sequencing into this log's numbering)."""
        for event in other.events():
            fields = {
                key: value for key, value in event.items()
                if key not in ("seq", "t")
            }
            kind = fields.pop("kind")
            self.emit(kind, **fields)

    def reset(self) -> None:
        self._ring.clear()
        self.seq = 0
        self._t0 = time.perf_counter()
