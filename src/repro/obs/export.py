"""Exporters: JSON snapshot and Prometheus text exposition format.

The JSON snapshot is the canonical machine-readable dump (it is what
``RunResult.extras["telemetry"]`` carries and what ``star-stats
--json`` writes). The Prometheus exporter renders the registry in the
text exposition format — ``_total`` counters, gauges, and cumulative
``_bucket{le="..."}`` histogram series — with the original dotted
metric name preserved in the HELP line (escaped per the format's
rules). :func:`parse_prometheus_text` is the matching reader used by
the round-trip tests and by anything that wants to scrape a dump back.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset.

    >>> sanitize_metric_name("nvm.data_writes")
    'nvm_data_writes'
    >>> sanitize_metric_name("9lives")
    '_9lives'
    """
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_help(text: str) -> str:
    """Escape a HELP string: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value: backslash, double-quote and newline."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricRegistry,
                       namespace: str = "star") -> str:
    """Render the registry in the Prometheus text exposition format."""
    prefix = sanitize_metric_name(namespace) + "_" if namespace else ""
    lines: List[str] = []
    for name, value in registry.counters():
        metric = prefix + sanitize_metric_name(name) + "_total"
        lines.append("# HELP %s counter %s" % (metric, escape_help(name)))
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %d" % (metric, value))
    for name, gauge in registry.gauges():
        metric = prefix + sanitize_metric_name(name)
        lines.append("# HELP %s gauge %s" % (metric, escape_help(name)))
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %s" % (metric, _format_number(gauge.value)))
        lines.append("%s{watermark=\"high\"} %s"
                     % (metric, _format_number(gauge.high)))
    for name, histogram in registry.histograms():
        metric = prefix + sanitize_metric_name(name)
        lines.append("# HELP %s histogram %s"
                     % (metric, escape_help(name)))
        lines.append("# TYPE %s histogram" % metric)
        for upper, cumulative in histogram.cumulative_buckets():
            lines.append(
                '%s_bucket{le="%s"} %d'
                % (metric, escape_label_value(_format_number(upper)),
                   cumulative)
            )
        lines.append("%s_sum %s"
                     % (metric, _format_number(float(histogram.total))))
        lines.append("%s_count %d" % (metric, histogram.count))
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$'
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ESCAPE_SEQUENCE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label_value(text: str) -> str:
    r"""Invert :func:`escape_label_value` with one left-to-right pass.

    Sequential ``str.replace`` calls are *not* an inverse: the literal
    two-character value ``\n`` (backslash, letter n) escapes to the
    three characters ``\\n``, but a replace-``\n``-first pipeline finds
    the trailing two characters and yields backslash + newline — the
    backslash pair was consumed half-and-half by two different passes.
    Scanning escape sequences left to right consumes each backslash
    exactly once. Unknown escape sequences pass through verbatim,
    matching the Prometheus text-format reference parsers.
    """

    def _one(match: "re.Match[str]") -> str:
        char = match.group(1)
        return _UNESCAPE_MAP.get(char, match.group(0))

    return _ESCAPE_SEQUENCE.sub(_one, text)


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back into ``(name, labels) -> value``.

    Labels are a sorted tuple of ``(key, value)`` pairs. HELP/TYPE
    comment lines are skipped. This is the inverse the exporter tests
    round-trip through.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError("unparseable exposition line: %r" % line)
        labels: List[Tuple[str, str]] = []
        if match.group("labels"):
            for key, value in _LABEL.findall(match.group("labels")):
                labels.append((key, _unescape_label_value(value)))
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return samples


def telemetry_snapshot(registry: MetricRegistry,
                       events_limit: Optional[int] = None) -> dict:
    """The full registry as one JSON-ready dict."""
    events = registry.events
    retained = (
        events.events() if events_limit is None
        else events.tail(events_limit)
    )
    return {
        "counters": dict(registry.counters()),
        "gauges": {
            name: {"value": gauge.value, "high": gauge.high}
            for name, gauge in registry.gauges()
        },
        "histograms": {
            name: histogram.to_dict()
            for name, histogram in registry.histograms()
        },
        "spans": registry.tracer.to_list(),
        "events": {
            "dropped": events.dropped,
            "entries": retained,
        },
    }


def to_json(registry: MetricRegistry, indent: int = 2) -> str:
    """The telemetry snapshot as a JSON document."""
    return json.dumps(
        telemetry_snapshot(registry), indent=indent, default=str
    )
