"""The flight recorder: an always-on event-log tail for failures.

Fuzz cases run on ``Machine(telemetry=False)`` — histograms, spans and
events are all disabled so campaigns stay fast. That throws away
exactly the evidence a failure investigation wants: the last few
``force_flush`` / ``meta_evict`` / ``ra_spill`` / ``crash`` events
before the oracle fired. The flight recorder re-arms *only* the
ring-buffered event log on an otherwise dark machine (one deque append
per event — the cheapest instrument in the registry) and extracts its
tail when a case fails, so every failure-corpus record and minimized
artifact ships with the events leading up to the verdict.

Determinism contract: extracted events drop the wall-clock ``t`` field
(sequence numbers carry causal order), so a case's ``events_tail`` is
byte-identical whether the case ran serially or in a spawn-pool worker
— the fuzzer's serial-vs-parallel identity tests keep holding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.util.stats import Stats

if TYPE_CHECKING:
    from repro.sim.machine import Machine

TAIL_EVENTS = 64
"""How many trailing events failure artifacts carry by default."""


def arm_flight_recorder(stats: Stats) -> None:
    """Enable just the event log on a telemetry-disabled ``Stats``.

    ``Stats(enabled=False)`` rebinds ``stats.event`` to a no-op at
    construction; arming flips the underlying :class:`EventLog` on and
    rebinds ``stats.event`` to its ``emit``. Every component reads
    ``stats.event`` per call (attribute lookup, not a captured
    reference), so arming takes effect machine-wide immediately.
    Histograms, spans and gauges stay disabled.
    """
    events = stats.registry.events
    events.enabled = True
    stats.event = events.emit  # type: ignore[method-assign]


def strip_wall_clock(events: List[Dict]) -> List[Dict]:
    """Drop the per-process ``t`` timestamp from extracted events."""
    return [
        {key: value for key, value in event.items() if key != "t"}
        for event in events
    ]


def flight_tail(machine: "Machine",
                limit: int = TAIL_EVENTS) -> List[Dict]:
    """The last ``limit`` events across a machine's run + recovery logs.

    Recovery events land in a separate registry
    (:attr:`Machine.recovery_stats`); recovery happens after the run,
    so its retained events are appended after the run log's and the
    combined tail is taken. Each event is tagged with the ``phase`` it
    came from.
    """
    combined: List[Dict] = []
    for phase, stats in (("run", machine.stats),
                         ("recovery", machine.recovery_stats)):
        if stats is None:
            continue
        for event in strip_wall_clock(stats.registry.events.events()):
            event["phase"] = phase
            combined.append(event)
    if limit <= 0:
        return combined
    return combined[-limit:]
