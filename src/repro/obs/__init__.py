"""Observability: metric registry, span tracing, structured event log.

The telemetry substrate every simulator layer reports into:

* :class:`MetricRegistry` — counters (the seed's flat ``Stats``
  namespace now lives here), gauges, and log-scale histograms;
* :class:`SpanTracer` — nested, exception-aware phase timing
  (``with tracer.span("recovery.rebuild", lines=n): ...``);
* :class:`EventLog` — a bounded ring of causally ordered structured
  events (``meta_evict``, ``force_flush``, ``ra_spill``, ``crash``,
  ``recover_line``) with an opt-in JSONL file sink;
* exporters (:func:`telemetry_snapshot`, :func:`to_json`,
  :func:`to_prometheus_text`) and terminal renderers
  (:mod:`repro.obs.render`, behind the ``star-stats`` tool).

Every :class:`~repro.util.stats.Stats` instance owns one registry, so
any component holding the machine's stats object can record
distributions, spans and events without new plumbing. See
``docs/observability.md`` for the metric-name catalogue and span
conventions.
"""

from repro.obs.events import EventLog
from repro.obs.export import (
    escape_help,
    escape_label_value,
    parse_prometheus_text,
    sanitize_metric_name,
    telemetry_snapshot,
    to_json,
    to_prometheus_text,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_exponent,
)
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Span",
    "SpanTracer",
    "bucket_exponent",
    "escape_help",
    "escape_label_value",
    "parse_prometheus_text",
    "sanitize_metric_name",
    "telemetry_snapshot",
    "to_json",
    "to_prometheus_text",
]
