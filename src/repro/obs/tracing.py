"""A lightweight span tracer for nested simulator phases.

Usage::

    with tracer.span("recovery.rebuild", lines=n):
        ...

Spans time their body with :func:`time.perf_counter`, nest into a
structured tree (children attach to the innermost open span), record
attributes given as keyword arguments, and — when the body raises — tag
the span with the exception type before re-raising, so a crashed phase
is visible in the tree exactly where it unwound.

The tracer keeps a bounded list of completed root spans; overflow drops
the oldest roots and counts them, so long grid runs cannot grow without
bound.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Span:
    """One timed phase: name, attributes, children, outcome."""

    __slots__ = ("name", "attrs", "children", "start_s", "duration_s",
                 "error")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.start_s = 0.0
        self.duration_s = 0.0
        self.error: Optional[str] = None

    def to_dict(self) -> dict:
        record: dict = {
            "name": self.name,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.error is not None:
            record["error"] = self.error
        if self.children:
            record["children"] = [
                child.to_dict() for child in self.children
            ]
        return record

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return "Span(%s, %.3gms, children=%d%s)" % (
            self.name, self.duration_s * 1e3, len(self.children),
            ", error=%s" % self.error if self.error else "",
        )


class SpanTracer:
    """Builds a tree of timed spans via a context manager."""

    def __init__(self, enabled: bool = True,
                 max_roots: int = 256) -> None:
        self.enabled = enabled
        self.max_roots = max_roots
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str,
             **attrs: object) -> Iterator[Optional[Span]]:
        """Open a span; nesting and timing are automatic."""
        if not self.enabled:
            yield None
            return
        span = Span(name, attrs)
        self._stack.append(span)
        span.start_s = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.error = type(exc).__name__
            raise
        finally:
            span.duration_s = time.perf_counter() - span.start_s
            self._stack.pop()
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self._adopt_root(span)

    def _adopt_root(self, span: Span) -> None:
        self.roots.append(span)
        overflow = len(self.roots) - self.max_roots
        if overflow > 0:
            del self.roots[:overflow]
            self.dropped_roots += overflow

    def adopt(self, spans: List[Span]) -> None:
        """Attach completed root spans recorded by another tracer."""
        for span in spans:
            self._adopt_root(span)

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def to_list(self) -> List[dict]:
        return [span.to_dict() for span in self.roots]

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self.dropped_roots = 0
