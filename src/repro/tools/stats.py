"""``star-stats``: run one workload and pretty-print its telemetry.

The observability companion of ``star-run``: where that tool reports
the headline figures (IPC, write traffic, recovery cost), this one
dumps the full telemetry of a run — every counter (filterable by
subsystem prefix), the gauges and log-scale histograms, the recovery
span tree with per-phase timings, and the tail of the structured event
log — and exports them as JSON, Prometheus text, or JSONL events.

Examples::

    star-stats                                  # star + hash, crash+recover
    star-stats --scheme anubis --prefix nvm.    # one subsystem's counters
    star-stats --no-crash --workload btree      # runtime telemetry only
    star-stats --json t.json --prom t.prom --events t.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.config import sim_config
from repro.obs.export import (
    telemetry_snapshot,
    to_prometheus_text,
)
from repro.obs.render import render_snapshot
from repro.schemes import SIT_SCHEMES
from repro.sim.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS, make_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-stats",
        description="Run one workload and pretty-print the telemetry "
                    "(metrics, histograms, span tree, event log).",
    )
    parser.add_argument("--workload", choices=ALL_WORKLOADS,
                        default="hash")
    parser.add_argument("--scheme", choices=sorted(SIT_SCHEMES),
                        default="star")
    parser.add_argument("--operations", type=int, default=500)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--memory-mb", type=int, default=64)
    parser.add_argument("--cache-kb", type=int, default=64,
                        help="metadata cache size")
    parser.add_argument("--crash", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="crash at the end and run recovery "
                             "(default: on; the span tree comes from "
                             "the recovery phases)")
    parser.add_argument("--prefix", default=None, metavar="SUBSYSTEM.",
                        help="only counters/histograms with this name "
                             "prefix (e.g. 'nvm.' or 'ctrl.')")
    parser.add_argument("--events-tail", type=int, default=20,
                        metavar="N", help="show the last N events "
                        "(default 20; 0 = all retained)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full telemetry snapshot as JSON")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="write the metrics in Prometheus text "
                             "exposition format")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="stream the event log to PATH as JSONL "
                             "while the run executes")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="profile the run's simulator phases and "
                             "write Chrome trace-event JSON (load in "
                             "Perfetto / chrome://tracing); also "
                             "prints the per-phase aggregate table")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = sim_config(
        memory_bytes=args.memory_mb * 1024 ** 2,
        metadata_cache_bytes=args.cache_kb * 1024,
    )
    machine = Machine(config, scheme=args.scheme,
                      profile=bool(args.trace))
    if args.events:
        machine.stats.registry.events.open_sink(args.events)
    workload = make_workload(
        args.workload, config.num_data_lines,
        operations=args.operations, seed=args.seed,
    )
    machine.run(workload.ops())
    if args.crash:
        machine.crash()
        machine.recover()
    machine.stats.registry.events.close_sink()

    snapshot = telemetry_snapshot(machine.stats.registry)
    if args.prefix:
        # Stats.prefixed gives one subsystem's counters, name-sorted
        snapshot["counters"] = machine.stats.prefixed(args.prefix)
    print("telemetry: %s under %s (%d ops%s)" % (
        args.workload, args.scheme, args.operations,
        ", crash+recover" if args.crash else "",
    ))
    print()
    print(render_snapshot(snapshot, prefix=args.prefix,
                          events_limit=args.events_tail))
    if machine.recovery_stats is not None:
        recovery_snapshot = telemetry_snapshot(
            machine.recovery_stats.registry
        )
        print("== recovery " + "=" * 52)
        print(render_snapshot(recovery_snapshot,
                              prefix=args.prefix,
                              events_limit=args.events_tail))

    if args.json:
        payload = {"run": snapshot}
        if machine.recovery_stats is not None:
            payload["recovery"] = telemetry_snapshot(
                machine.recovery_stats.registry
            )
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print("wrote %s" % args.json)
    if args.prom:
        text = to_prometheus_text(machine.stats.registry)
        if machine.recovery_stats is not None:
            text += to_prometheus_text(
                machine.recovery_stats.registry,
                namespace="star_recovery",
            )
        with open(args.prom, "w") as handle:
            handle.write(text)
        print("wrote %s" % args.prom)
    if args.events:
        print("wrote %s" % args.events)
    if args.trace:
        from repro.obs.profile import render_phase_table

        machine.profiler.write_chrome_trace(args.trace)
        print()
        print(render_phase_table(machine.profiler.aggregate()))
        print("wrote %s" % args.trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
