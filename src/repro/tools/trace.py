"""``star-trace``: generate, inspect and convert workload traces.

Examples::

    star-trace generate --workload btree --operations 500 -o b.trace
    star-trace generate --workload hash --threads 4 -o h.trace.gz
    star-trace info b.trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.workloads.capture import load_trace, save_trace
from repro.workloads.registry import (
    ALL_WORKLOADS,
    make_threaded_trace,
    make_workload,
)
from repro.workloads.trace import OpKind, count_kinds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="star-trace",
        description="Generate and inspect memory-reference traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="emit a workload's trace to a file"
    )
    generate.add_argument("--workload", choices=ALL_WORKLOADS,
                          required=True)
    generate.add_argument("--operations", type=int, default=1000)
    generate.add_argument("--lines", type=int, default=1024 * 1024,
                          help="data lines in the address space")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--threads", type=int, default=1)
    generate.add_argument("-o", "--output", required=True)

    info = commands.add_parser(
        "info", help="summarize a trace file"
    )
    info.add_argument("path")
    return parser


def _generate(args) -> int:
    if args.threads > 1:
        ops = make_threaded_trace(
            args.workload, args.lines, threads=args.threads,
            operations=args.operations, seed=args.seed,
        )
    else:
        ops = make_workload(
            args.workload, args.lines,
            operations=args.operations, seed=args.seed,
        ).ops()
    header = "workload=%s operations=%d seed=%d threads=%d lines=%d" % (
        args.workload, args.operations, args.seed, args.threads,
        args.lines,
    )
    count = save_trace(ops, args.output, header=header)
    print("wrote %d ops to %s" % (count, args.output))
    return 0


def _info(args) -> int:
    ops = list(load_trace(args.path))
    if not ops:
        print("empty trace")
        return 1
    kinds = count_kinds(ops)
    touched = {op.addr for op in ops if op.kind is not OpKind.PERSIST}
    instructions = sum(op.instructions for op in ops)
    print("trace: %s" % args.path)
    print("  ops           %d" % len(ops))
    print("  reads         %d" % kinds[OpKind.READ])
    print("  writes        %d" % kinds[OpKind.WRITE])
    print("  persists      %d" % kinds[OpKind.PERSIST])
    print("  instructions  %d" % instructions)
    print("  unique lines  %d" % len(touched))
    print("  address range [%d, %d]" % (min(touched), max(touched)))
    footprint_kb = len(touched) * 64 / 1024
    print("  footprint     %.1f KB" % footprint_kb)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _generate(args)
    return _info(args)


if __name__ == "__main__":
    sys.exit(main())
