"""Command-line tools: ``star-run``, ``star-stats`` and ``star-trace``.

(The evaluation-reproduction CLI ``star-bench`` lives in
:mod:`repro.bench.cli`; ``star-stats`` pretty-prints a run's telemetry
— metrics, histograms, span tree, event log — from :mod:`repro.obs`.)
"""
