"""Command-line tools: ``star-run`` and ``star-trace``.

(The evaluation-reproduction CLI ``star-bench`` lives in
:mod:`repro.bench.cli`.)
"""
