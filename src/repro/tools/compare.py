"""``star-compare``: diff two ``star-bench --json`` result dumps.

Reproduction hygiene: before accepting a change that touches the
simulator, rerun the suite and compare against the archived baseline::

    star-bench --json before.json
    ...change...
    star-bench --json after.json
    star-compare before.json after.json --tolerance 0.02

Either side may also be a *lab store root* (see ``star-lab``): a
directory argument is opened as a :class:`repro.lab.store.ResultStore`
and every stored cell becomes one pseudo-experiment of flattened
metric/value rows, so two campaigns — or a campaign before/after a
simulator change — diff with the same machinery::

    star-compare .starlab-before .starlab-after
    star-compare .starlab@1f0c .starlab-other@1f0c   # spec-hash prefix

Exit status 0 means every shared numeric cell agrees within the
relative tolerance; 1 lists the drifted cells. New/removed experiments
or rows are reported but are not failures by themselves (use
``--strict`` to make them so).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple


def _flatten(payload: dict, prefix: str = "") -> Dict[str, object]:
    """Nested payload dicts as dotted scalar keys (lists skipped)."""
    flat: Dict[str, object] = {}
    for key in sorted(payload):
        value = payload[key]
        name = "%s.%s" % (prefix, key) if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten(value, name))
        elif isinstance(value, (int, float, str, bool)):
            flat[name] = value
    return flat


def _split_lab_ref(path: str) -> Optional[Tuple[str, str]]:
    """``(root, hash_prefix)`` if *path* names a lab store, else None."""
    root, _, prefix = path.partition("@")
    if os.path.isdir(root):
        return root, prefix
    return None


def load_lab_results(root: str, prefix: str = "") -> Dict[str, dict]:
    """Lab store cells as one pseudo-experiment per stored spec."""
    from repro.lab.store import ResultStore

    store = ResultStore(root)
    results: Dict[str, dict] = {}
    for record in store.records(prefix):
        spec = record.spec
        name = "%s:%s/%s@%s #%s" % (
            spec.get("kind", "?"), spec.get("scheme", "?"),
            spec.get("workload", "?"), spec.get("seed", "?"),
            record.spec_hash[:12],
        )
        flat = _flatten(record.payload)
        results[name] = {
            "experiment": name,
            "columns": ["metric", "value"],
            "rows": [
                {"metric": metric, "value": value}
                for metric, value in sorted(flat.items())
            ],
        }
    return results


def load_results(path: str) -> Dict[str, dict]:
    lab_ref = _split_lab_ref(path)
    if lab_ref is not None:
        return load_lab_results(*lab_ref)
    with open(path) as handle:
        payload = json.load(handle)
    return {entry["experiment"]: entry for entry in payload}


def _row_key(row: dict, columns: List[str]) -> str:
    return str(row.get(columns[0], "?")) if columns else "?"


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def compare_results(before: Dict[str, dict], after: Dict[str, dict],
                    tolerance: float) -> Tuple[List[str], List[str]]:
    """Returns (drifts, structural notes)."""
    drifts: List[str] = []
    notes: List[str] = []
    for name in sorted(set(before) | set(after)):
        if name not in before:
            notes.append("experiment %s only in the new results" % name)
            continue
        if name not in after:
            notes.append("experiment %s disappeared" % name)
            continue
        old, new = before[name], after[name]
        columns = old.get("columns", [])
        old_rows = {
            _row_key(row, columns): row for row in old.get("rows", [])
        }
        new_rows = {
            _row_key(row, columns): row for row in new.get("rows", [])
        }
        for key in sorted(set(old_rows) | set(new_rows)):
            if key not in old_rows or key not in new_rows:
                notes.append("%s: row %r only on one side" % (name, key))
                continue
            for column in columns:
                old_value = _numeric(old_rows[key].get(column))
                new_value = _numeric(new_rows[key].get(column))
                if old_value is None or new_value is None:
                    continue
                scale = max(abs(old_value), abs(new_value), 1e-12)
                if abs(new_value - old_value) / scale > tolerance:
                    drifts.append(
                        "%s [%s] %s: %.6g -> %.6g"
                        % (name, key, column, old_value, new_value)
                    )
    return drifts, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="star-compare",
        description="Diff two star-bench --json result dumps or "
                    "star-lab store roots (PATH or PATH@HASHPREFIX).",
    )
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance (default 2%%)")
    parser.add_argument("--strict", action="store_true",
                        help="structural differences also fail")
    args = parser.parse_args(argv)

    drifts, notes = compare_results(
        load_results(args.before), load_results(args.after),
        args.tolerance,
    )
    for note in notes:
        print("note:", note)
    for drift in drifts:
        print("DRIFT:", drift)
    if not drifts and not (args.strict and notes):
        print("results agree within %.1f%% tolerance"
              % (args.tolerance * 100))
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
